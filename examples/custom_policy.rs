//! Writing your own ALE policy (§4: "a pluggable policy … can collect
//! various profiling information and statistics, and can use this
//! information to guide its decisions").
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```
//!
//! This example implements a small but genuinely adaptive policy from
//! scratch — a *success-rate throttle*: try HTM aggressively while it is
//! working, and back off (cheaply, without the full learning machinery of
//! [`AdaptivePolicy`]) when the recent success rate collapses. It then
//! races the custom policy against the built-ins on a workload whose HTM
//! friendliness differs per critical section.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ale_core::policy::{AttemptPlan, ExecRecord, ModeCaps, Policy};
use ale_core::{scope, Ale, AleConfig, CsOptions, ExecMode, Granule, LockMeta, StaticPolicy};
use ale_htm::HtmCell;
use ale_sync::SpinLock;
use ale_vtime::{Platform, Rng, Sim};

/// Per-granule state: a sliding window of recent HTM outcomes packed into
/// one atomic (successes in the low half, attempts in the high half).
#[derive(Default)]
struct Window {
    packed: AtomicU64,
}

impl Window {
    fn record(&self, success: bool) {
        let add = 1u64 << 32 | success as u64;
        let w = self.packed.fetch_add(add, Ordering::Relaxed) + add;
        // Periodically halve both counters so old history fades.
        if w >> 32 >= 256 {
            let succ = (w & 0xFFFF_FFFF) / 2;
            let att = (w >> 32) / 2;
            self.packed.store(att << 32 | succ, Ordering::Relaxed);
        }
    }

    fn success_rate(&self) -> f64 {
        let w = self.packed.load(Ordering::Relaxed);
        let att = w >> 32;
        if att < 16 {
            return 1.0; // optimistic until we have data
        }
        (w & 0xFFFF_FFFF) as f64 / att as f64
    }
}

/// Try HTM hard while it works; give up fast when it stops working.
struct ThrottlePolicy;

impl Policy for ThrottlePolicy {
    fn name(&self) -> String {
        "Throttle".into()
    }

    fn make_lock_state(&self) -> Box<dyn Any + Send + Sync> {
        Box::new(())
    }

    fn make_granule_state(&self) -> Box<dyn Any + Send + Sync> {
        Box::new(Window::default())
    }

    fn plan(&self, _m: &LockMeta, g: &Granule, caps: ModeCaps, _rng: &mut Rng) -> AttemptPlan {
        let window = g.policy_state.downcast_ref::<Window>().unwrap();
        let rate = window.success_rate();
        let x = if !caps.htm {
            0
        } else if rate > 0.5 {
            6 // HTM is paying: retry generously
        } else if rate > 0.1 {
            2
        } else {
            0 // hopeless: go straight to SWOpt/Lock
        };
        AttemptPlan {
            htm_attempts: x,
            swopt_attempts: if caps.swopt { 10 } else { 0 },
            use_grouping: false,
            measure: false,
        }
    }

    fn on_complete(&self, _m: &LockMeta, g: &Granule, rec: &ExecRecord, _rng: &mut Rng) {
        if rec.htm_attempts > 0 {
            let window = g.policy_state.downcast_ref::<Window>().unwrap();
            window.record(rec.mode == Some(ExecMode::Htm));
        }
    }

    fn describe_granule(&self, _m: &LockMeta, g: &Granule) -> String {
        let w = g.policy_state.downcast_ref::<Window>().unwrap();
        format!("recent HTM success rate {:.0} %", w.success_rate() * 100.0)
    }
}

/// Workload: one HTM-friendly critical section (tiny) and one HTM-hostile
/// one (overflows the write budget every time).
fn run(ale: &Arc<Ale>, platform: &Platform) -> f64 {
    let lock = ale.new_lock("mixed", SpinLock::new());
    let small = HtmCell::new(0u64);
    let big: Vec<HtmCell<u64>> = (0..64).map(|_| HtmCell::new(0)).collect();
    let (lock, small, big) = (&lock, &small, &big);
    let ops = 1_500u64;
    let report = Sim::new(platform.clone(), 8).with_seed(3).run(|lane| {
        let mut rng = lane.rng().clone();
        for _ in 0..ops {
            if rng.gen_ratio(7, 10) {
                lock.cs_plain(scope!("small_cs"), CsOptions::new(), |_| {
                    small.set(small.get() + 1);
                });
            } else {
                lock.cs_plain(scope!("big_cs"), CsOptions::new(), |_| {
                    for c in big {
                        c.set(c.get() + 1);
                    }
                });
            }
        }
    });
    report.throughput(ops * 8) / 1e6
}

fn main() {
    // Haswell-like HTM, but with a small write budget so `big_cs` always
    // dies of capacity.
    let mut platform = Platform::haswell();
    platform.htm.as_mut().unwrap().max_write_set = 32;

    println!("workload: 70 % HTM-friendly CS, 30 % capacity-overflowing CS\n");
    for (name, ale) in [
        (
            "Static-HL-6 (tuned for the small CS)",
            Ale::new(
                AleConfig::new(platform.clone()).without_swopt(),
                StaticPolicy::new(6, 0),
            ),
        ),
        (
            "Throttle (this example's custom policy)",
            Ale::new(
                AleConfig::new(platform.clone()).without_swopt(),
                ThrottlePolicy,
            ),
        ),
    ] {
        let mops = run(&ale, &platform);
        println!("  {name:<42} {mops:>7.3} M ops/s");
        for lockrep in &ale.report().locks {
            for g in &lockrep.granules {
                if !g.policy.is_empty() {
                    println!("      {:<18} {}", g.context, g.policy);
                }
            }
        }
        println!();
    }
    println!(
        "The throttle learns per granule: the small critical section keeps a big\n\
         HTM budget while the overflowing one stops attempting HTM entirely —\n\
         without any of the built-in adaptive policy's machinery."
    );
}
