//! The paper's HashMap microbenchmark (§3, §5), runnable at the command
//! line: compare execution-mode configurations across workload mixes and
//! simulated platforms.
//!
//! ```sh
//! cargo run --release --example hashmap_workloads -- [platform] [threads]
//! # e.g.
//! cargo run --release --example hashmap_workloads -- haswell 8
//! cargo run --release --example hashmap_workloads -- t2 64
//! ```

use ale_bench::{run_hashmap, HashMapWorkload, Variant};
use ale_vtime::{Platform, PlatformKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let platform = args
        .next()
        .and_then(|s| PlatformKind::parse(&s))
        .map(|k| k.platform())
        .unwrap_or_else(Platform::haswell);
    let threads: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .clamp(1, platform.logical_threads() as usize);

    println!(
        "HashMap microbenchmark on simulated `{}` ({} threads)\n",
        platform.kind.name(),
        threads
    );

    let key_space = 16 * 1024;
    let mixes = [
        HashMapWorkload::read_only(key_space),
        HashMapWorkload::read_heavy(key_space),
        HashMapWorkload::mutate_heavy(key_space),
    ];

    for mix in &mixes {
        println!("— workload {} (insert/remove/get %) —", mix.label());
        for variant in Variant::figure_set(&platform) {
            let r = run_hashmap(
                platform.clone(),
                variant,
                threads,
                mix,
                3_000,
                if variant.is_ale() { 1_000 } else { 100 },
                7,
            );
            let extra = r
                .report
                .as_ref()
                .and_then(|rep| rep.lock("tblLock"))
                .map(|l| {
                    let htm: u64 = l.granules.iter().map(|g| g.successes[0]).sum();
                    let sw: u64 = l.granules.iter().map(|g| g.successes[1]).sum();
                    let lk: u64 = l.granules.iter().map(|g| g.successes[2]).sum();
                    format!("   [successes HTM/SWOpt/Lock: {htm}/{sw}/{lk}]")
                })
                .unwrap_or_default();
            println!("  {:<18} {:>8.3} M ops/s{extra}", r.variant, r.mops);
        }
        println!();
    }
    println!("(Throughput is measured in deterministic virtual time; see DESIGN.md.)");
}
