//! Watch the adaptive policy learn (§4.2) and read the library's
//! statistics report (§3.4).
//!
//! ```sh
//! cargo run --release --example adaptive_report -- [platform]
//! ```
//!
//! Runs a mixed HashMap workload on simulated hardware while printing the
//! lock's learning stage as it advances through the mode progressions
//! (Lock → SL → HL → All → custom), then dumps the full per-granule report
//! and where the policy landed.

use std::sync::Arc;

use ale_core::{AdaptivePolicy, Ale, AleConfig};
use ale_hashmap::{AleHashMap, MapConfig};
use ale_vtime::{Platform, PlatformKind, Sim};

fn main() {
    let platform = std::env::args()
        .nth(1)
        .and_then(|s| PlatformKind::parse(&s))
        .map(|k| k.platform())
        .unwrap_or_else(Platform::haswell);
    println!(
        "Adaptive learning demo on simulated `{}` (8 threads, 20/20/60 mix)\n",
        platform.kind.name()
    );

    let ale: Arc<Ale> = Ale::new(
        AleConfig::new(platform.clone()).with_seed(2024),
        AdaptivePolicy::new(),
    );
    let map: AleHashMap<u64> = AleHashMap::new(&ale, MapConfig::new(4096));
    for k in (0..16_384u64).step_by(2) {
        map.insert(k, k);
    }
    ale.reset_statistics(); // don't let setup traffic pollute learning

    let threads = 8.min(platform.logical_threads() as usize);
    let map_ref = &map;
    let ale_ref = &ale;
    let mut last_stage = String::new();
    for round in 0..14 {
        Sim::new(platform.clone(), threads)
            .with_seed(round as u64)
            .with_slack(300)
            .run(|lane| {
                let mut rng = lane.rng().clone();
                for _ in 0..1_000 {
                    let k = rng.gen_range(16_384);
                    match rng.gen_range(10) {
                        0..=1 => {
                            map_ref.insert(k, k);
                        }
                        2..=3 => {
                            map_ref.remove(k);
                        }
                        _ => {
                            let mut v = 0;
                            let _ = map_ref.get(k, &mut v);
                        }
                    }
                }
            });
        let report = ale_ref.report();
        let stage = report
            .lock("tblLock")
            .map(|l| l.policy.clone())
            .unwrap_or_default();
        if stage != last_stage {
            println!("after {:>6} ops: {stage}", (round + 1) * 1_000 * threads);
            last_stage = stage.clone();
        }
        if stage.starts_with("final") {
            break;
        }
    }

    println!("\n=== final report (§3.4) ===\n");
    println!("{}", ale.report());
}
