//! The Kyoto Cabinet `wicked` benchmark (§5, Figure 5): nested critical
//! sections (database RW-lock + slot locks) under a random mixed workload,
//! comparing Kyoto's hand-tuned `trylockspin` idiom with ALE elision.
//!
//! ```sh
//! cargo run --release --example kyoto_wicked -- [platform] [threads] [--nomutate]
//! # e.g.
//! cargo run --release --example kyoto_wicked -- t2 32
//! cargo run --release --example kyoto_wicked -- haswell 8 --nomutate
//! ```

use ale_bench::{run_kyoto, Variant};
use ale_core::ExecMode;
use ale_kyoto::WickedConfig;
use ale_vtime::{Platform, PlatformKind};

fn main() {
    let mut platform = Platform::haswell();
    let mut threads = 8usize;
    let mut nomutate = false;
    for a in std::env::args().skip(1) {
        if a == "--nomutate" {
            nomutate = true;
        } else if let Some(k) = PlatformKind::parse(&a) {
            platform = k.platform();
        } else if let Ok(t) = a.parse() {
            threads = t;
        }
    }
    threads = threads.clamp(1, platform.logical_threads() as usize);

    let cfg = if nomutate {
        WickedConfig::nomutate(16 * 1024)
    } else {
        WickedConfig {
            key_space: 16 * 1024,
            count_permille: 0,
            ..Default::default()
        }
    };
    println!(
        "Kyoto wicked{} on simulated `{}` ({} threads)\n",
        if nomutate { " (nomutate)" } else { "" },
        platform.kind.name(),
        threads
    );

    for variant in Variant::figure_set(&platform) {
        let r = run_kyoto(
            platform.clone(),
            variant,
            threads,
            &cfg,
            2_000,
            if variant.is_ale() { 1_000 } else { 100 },
            13,
        );
        println!("  {:<18} {:>8.3} M ops/s", r.variant, r.mops);
        if nomutate {
            if let Some(rep) = &r.report {
                if let Some(get) = rep
                    .lock("mlock")
                    .and_then(|l| l.granules.iter().find(|g| g.context.contains("get")))
                {
                    println!(
                        "                      (lookups completing via SWOpt: {:.0} %)",
                        get.mode_share(ExecMode::SwOpt).min(1.0) * 100.0
                    );
                }
            }
        }
    }
    println!(
        "\nThe paper's §5 statistic: on T2-2 nomutate, ~42 % of lookups miss and\n\
         complete purely optimistically — no lock touched at all. Run with\n\
         `t2 8 --nomutate` to reproduce it."
    );
}
