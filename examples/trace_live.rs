//! Live tracing: run a contended HashMap workload with the event rings
//! enabled, then drain and inspect the merged stream.
//!
//! ```sh
//! cargo run --release --example trace_live
//! ```
//!
//! This is the observability layer end to end: `ale_trace::configure`
//! turns the sampling gate on, every lane's critical sections emit
//! fixed-size records into per-thread rings as the simulated run executes,
//! and `ale_trace::drain` merges the rings into one stream totally ordered
//! by `(vtime, lane, seq)`. The tail of the stream is printed as JSONL
//! (one event per line — pipe it to `jq` for ad-hoc queries) alongside the
//! Prometheus-style metrics snapshot the same run produced.

use ale_bench::{run_hashmap, HashMapWorkload, Variant};
use ale_trace::TraceConfig;
use ale_vtime::Platform;

const TAIL: usize = 24;

fn main() {
    // Full sampling, and a ring deep enough that this run drops nothing.
    ale_trace::configure(&TraceConfig::enabled().with_ring_capacity(1 << 16));

    let workload = HashMapWorkload::read_heavy(16 * 1024);
    let result = run_hashmap(
        Platform::haswell(),
        Variant::AdaptiveAll,
        8,
        &workload,
        2_000,
        750,
        42,
    );

    let drained = ale_trace::drain();
    ale_trace::reset();

    println!(
        "run: {:.2} Mops/s over {} ops ({} ns virtual makespan)",
        result.mops, result.total_ops, result.makespan_ns
    );
    println!(
        "trace: {} event(s) merged, {} dropped, stream digest {:016x}\n",
        drained.events.len(),
        drained.dropped,
        drained.digest()
    );

    let jsonl = drained.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    let skipped = lines.len().saturating_sub(TAIL);
    if skipped > 0 {
        println!("… {skipped} earlier event(s) elided …");
    }
    for line in lines.iter().skip(skipped) {
        println!("{line}");
    }

    if let Some(report) = &result.report {
        println!("\n--- metrics snapshot (Prometheus text format) ---");
        print!("{}", report.to_prometheus());
    }
}
