//! Quickstart: protect a tiny data structure with one ALE-enabled lock and
//! watch the three execution modes in action.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's §3 walkthrough in miniature: a critical section
//! with a SWOpt path (validated by a `SeqVersion`), a mutating critical
//! section whose conflicting region is bracketed, and the library report
//! showing which modes ran.

use ale_repro::prelude::*;

/// A pair of counters whose sum must stay constant — transfers move value
/// between them. The classic probe for lock-elision correctness.
struct Accounts {
    lock: AleLock<SpinLock>,
    ver: SeqVersion,
    a: HtmCell<u64>,
    b: HtmCell<u64>,
}

impl Accounts {
    fn new(ale: &std::sync::Arc<Ale>) -> Self {
        Accounts {
            lock: ale.new_lock("accounts", SpinLock::new()),
            ver: SeqVersion::new(),
            a: HtmCell::new(500),
            b: HtmCell::new(500),
        }
    }

    /// Read-only critical section with a SWOpt path: runs without the lock
    /// whenever the policy decides optimism pays.
    fn total(&self) -> u64 {
        self.lock.cs(
            scope!("Accounts::total"),
            CsOptions::new().with_swopt().non_conflicting(),
            |cs| {
                if cs.is_swopt() {
                    // Optimistic: snapshot the version, read, re-validate
                    // before using anything (§3.2's rule of thumb).
                    let snap = self.ver.read(true);
                    let x = self.a.get();
                    let y = self.b.get();
                    if !self.ver.validate(snap) {
                        return CsOutcome::SwOptFail; // interference: retry
                    }
                    CsOutcome::Done(x + y)
                } else {
                    // HTM or Lock mode: plain reads are already safe.
                    CsOutcome::Done(self.a.get() + self.b.get())
                }
            },
        )
    }

    /// Mutating critical section: the write is a *conflicting region* for
    /// SWOpt readers, so it is bracketed by version bumps — except when
    /// `COULD_SWOPT_BE_RUNNING` proves nobody could observe it (§3.3).
    fn transfer(&self, amount: u64) {
        self.lock
            .cs_plain(scope!("Accounts::transfer"), CsOptions::new(), |cs| {
                let x = self.a.get();
                if x < amount {
                    return;
                }
                let y = self.b.get();
                let bump = cs.could_swopt_be_running();
                if bump {
                    self.ver.begin_conflicting_action();
                }
                self.a.set(x - amount);
                self.b.set(y + amount);
                if bump {
                    self.ver.end_conflicting_action();
                }
            });
    }
}

fn main() {
    // A simulated 8-thread Haswell with Intel-TSX-style HTM. Swap in
    // Platform::t2() to see the library cope without HTM at all.
    let platform = Platform::haswell();

    // Static policy: up to 3 HTM attempts, then up to 8 SWOpt attempts,
    // then take the lock. (Try AdaptivePolicy::new() instead!)
    let ale = Ale::new(AleConfig::new(platform.clone()), StaticPolicy::new(3, 8));
    let accounts = Accounts::new(&ale);

    // Run 4 simulated threads: one mutator, three readers.
    let report = Sim::new(platform, 4).with_seed(42).run(|lane| {
        if lane.id() == 0 {
            for _ in 0..2_000 {
                accounts.transfer(1);
            }
        } else {
            for _ in 0..2_000 {
                assert_eq!(accounts.total(), 1000, "sum invariant violated!");
            }
        }
    });

    println!(
        "simulated makespan: {:.3} ms (virtual time)",
        report.makespan_ns as f64 / 1e6
    );
    println!(
        "throughput: {:.2} M ops/s across 4 simulated threads\n",
        report.throughput(8_000) / 1e6
    );
    println!("{}", ale.report());
    println!("Things to try:");
    println!("  * AdaptivePolicy::new() instead of the static policy");
    println!("  * Platform::t2() (no HTM) or Platform::rock() (fragile HTM)");
    println!("  * AleConfig::new(..).without_swopt() to see pure TLE");
}
