//! Whole-system integration: several ALE-enabled structures sharing one
//! library instance and one simulation, with nesting across them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ale_hashmap::{AleHashMap, MapConfig};
use ale_kyoto::{AleCacheDb, DbConfig, KyotoDb};
use ale_repro::prelude::*;

#[test]
fn hashmap_and_cachedb_share_one_library() {
    let platform = Platform::haswell();
    let ale: Arc<Ale> = Ale::new(
        AleConfig::new(platform.clone()).with_seed(5),
        StaticPolicy::new(3, 8),
    );
    let map: AleHashMap<u64> = AleHashMap::new(&ale, MapConfig::new(128));
    let db = AleCacheDb::new(
        &ale,
        DbConfig {
            buckets_per_slot: 64,
            capacity_per_slot: 4096,
            payload_cells: 0,
        },
    );
    let (map, db) = (&map, &db);

    let checks = AtomicU64::new(0);
    Sim::new(platform, 6).with_seed(6).run(|lane| {
        let mut rng = lane.rng().clone();
        for _ in 0..400 {
            let k = rng.gen_range(256);
            match rng.gen_range(6) {
                0 => {
                    // Cross-structure "transaction-of-operations": keep the
                    // map and db in sync for key k (not atomic across
                    // structures — each op is individually linearizable).
                    map.insert(k, k * 3);
                    db.set(k, k * 3);
                }
                1 => {
                    map.remove(k);
                    db.remove(k);
                }
                _ => {
                    let mut v = 0;
                    if map.get(k, &mut v) {
                        assert_eq!(v, k * 3);
                        checks.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(v) = db.get(k) {
                        assert_eq!(v, k * 3);
                    }
                }
            }
        }
    });
    assert!(checks.load(Ordering::Relaxed) > 0);

    // One report covers every lock: tblLock, mlock, and the 16 slot locks.
    let report = ale.report();
    assert!(report.lock("tblLock").is_some());
    assert!(report.lock("mlock").is_some());
    assert!(report.lock("slot00").is_some());
    let rendered = report.to_string();
    assert!(rendered.contains("HashMap::get"));
    assert!(rendered.contains("CacheDb::get"));
}

#[test]
fn cross_lock_nesting_composes() {
    // A critical section on lock A nests a HashMap op (lock B) — exercising
    // cross-lock nesting through a real data structure.
    let platform = Platform::testbed();
    let ale: Arc<Ale> = Ale::new(
        AleConfig::new(platform.clone()).with_seed(8),
        StaticPolicy::new(3, 8),
    );
    let outer = ale.new_lock("journal", SpinLock::new());
    let map: AleHashMap<u64> = AleHashMap::new(&ale, MapConfig::new(64));
    let journal_len = HtmCell::new(0u64);
    let (outer, map, journal_len) = (&outer, &map, &journal_len);

    Sim::new(platform, 4).with_seed(9).run(|lane| {
        let mut rng = lane.rng().clone();
        for _ in 0..250 {
            let k = rng.gen_range(128);
            outer.cs_plain(scope!("journal::append"), CsOptions::new(), |_| {
                // Nested: if the outer ran in HTM mode this flattens into
                // the same transaction; in Lock mode it elides separately.
                map.insert(k, k + 1);
                journal_len.set(journal_len.get() + 1);
            });
        }
    });
    assert_eq!(journal_len.get(), 4 * 250);
    let mut v = 0;
    for k in 0..128 {
        if map.get(k, &mut v) {
            assert_eq!(v, k + 1);
        }
    }
    // The outer lock's granule recorded the executions.
    let report = ale.report();
    assert_eq!(report.lock("journal").unwrap().total_executions(), 1000);
}

#[test]
fn report_csv_roundtrip_for_full_stack() {
    let platform = Platform::t2();
    let ale: Arc<Ale> = Ale::new(
        AleConfig::new(platform).with_seed(3),
        StaticPolicy::new(0, 8),
    );
    let map: AleHashMap<u64> = AleHashMap::new(&ale, MapConfig::new(64));
    for k in 0..100 {
        map.insert(k, k);
    }
    let mut v = 0;
    for k in 0..200 {
        let _ = map.get(k, &mut v);
    }
    let csv = ale.report().to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert!(lines[0].starts_with("lock,context"));
    assert!(lines.len() >= 3, "{csv}");
    // Every data row has the same number of fields as the header.
    let fields = lines[0].split(',').count();
    for l in &lines[1..] {
        assert_eq!(l.split(',').count(), fields, "ragged CSV row: {l}");
    }
}
