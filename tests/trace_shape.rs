//! Satellite: the observability layer's cost contract, asserted on a
//! figure-shaped run.
//!
//! Two claims ride on ale-trace being "always-on":
//!
//! 1. **Enabled tracing is cheap.** With full sampling, a fig2-style cell
//!    (read-heavy HashMap, Haswell, 8 threads) must stay within 5 % of the
//!    untraced throughput — the modelled emit cost is a handful of stores,
//!    not a lock.
//! 2. **Disabled tracing is free.** A run executed after tracing was
//!    enabled and reset must be *bit-identical* (same virtual makespan,
//!    same op count) to one where tracing never existed: the disabled emit
//!    path takes no ticks, draws no randomness, allocates nothing.
//!
//! Both tests flip process-global trace state, so they serialise on
//! [`ale_trace::test_serial`].

use ale_bench::{run_hashmap, HashMapWorkload, RunResult, Variant};
use ale_trace::TraceConfig;
use ale_vtime::Platform;

/// One fig2-style cell: read-heavy mix, Haswell, 8 threads, static HL.
fn fig2_cell() -> RunResult {
    let w = HashMapWorkload::read_heavy(16 * 1024);
    run_hashmap(
        Platform::haswell(),
        Variant::StaticHl(5),
        8,
        &w,
        2_000,
        750,
        99,
    )
}

#[test]
fn tracing_overhead_within_five_percent() {
    let _g = ale_trace::test_serial();
    ale_trace::reset();
    let base = fig2_cell();

    ale_trace::configure(&TraceConfig::enabled().with_ring_capacity(1 << 16));
    let traced = fig2_cell();
    let drained = ale_trace::drain();
    ale_trace::reset();

    assert!(
        !drained.events.is_empty(),
        "an enabled figure run must record events"
    );
    assert_eq!(drained.dropped, 0, "the test ring must be deep enough");
    assert!(
        traced.mops > base.mops * 0.95,
        "full-sampling tracing must cost < 5 % throughput: \
         {:.3} Mops/s untraced vs {:.3} Mops/s traced",
        base.mops,
        traced.mops
    );
}

#[test]
fn disabled_tracing_leaves_runs_bit_identical() {
    let _g = ale_trace::test_serial();
    ale_trace::reset();
    let before = fig2_cell();

    // Enable, run (populating rings and the intern table), then reset.
    ale_trace::configure(&TraceConfig::enabled());
    fig2_cell();
    ale_trace::reset();

    let after = fig2_cell();
    assert_eq!(
        (before.makespan_ns, before.total_ops),
        (after.makespan_ns, after.total_ops),
        "a disabled-trace run must be bit-identical whether or not tracing \
         ever ran in this process"
    );
}
