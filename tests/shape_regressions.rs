//! Cross-crate shape regressions: the paper's qualitative claims, asserted.
//!
//! These are miniature versions of the figures (small op budgets) that
//! check *who wins and by roughly what factor* — the reproduction's
//! success criterion — so a regression in any layer (HTM emulation, locks,
//! driver, policies, simulator) that bends a curve fails loudly here.

use ale_bench::{run_hashmap, run_kyoto, HashMapWorkload, Variant};
use ale_kyoto::WickedConfig;
use ale_vtime::Platform;

fn mops_hashmap(platform: Platform, variant: Variant, threads: usize, w: &HashMapWorkload) -> f64 {
    let warm = if variant.is_ale() {
        6_000 / threads as u64
    } else {
        100
    };
    run_hashmap(platform, variant, threads, w, 2_000, warm, 99).mops
}

/// §5: TLE scales on HTM platforms while the plain lock stays flat.
#[test]
fn tle_scales_where_lock_does_not() {
    let w = HashMapWorkload::read_heavy(16 * 1024);
    let lock1 = mops_hashmap(Platform::haswell(), Variant::Instrumented, 1, &w);
    let lock8 = mops_hashmap(Platform::haswell(), Variant::Instrumented, 8, &w);
    let hl1 = mops_hashmap(Platform::haswell(), Variant::StaticHl(5), 1, &w);
    let hl8 = mops_hashmap(Platform::haswell(), Variant::StaticHl(5), 8, &w);
    assert!(
        lock8 < lock1 * 2.0,
        "a single lock must not scale: {lock1} -> {lock8}"
    );
    assert!(
        hl8 > hl1 * 4.0,
        "TLE must scale with threads: {hl1} -> {hl8}"
    );
    assert!(
        hl8 > lock8 * 3.0,
        "TLE must beat the lock at 8 threads: {hl8} vs {lock8}"
    );
}

/// §2: optimistic software execution is highly scalable for read-heavy
/// workloads even with no HTM at all (T2-2).
#[test]
fn swopt_scales_without_htm() {
    let w = HashMapWorkload::read_heavy(16 * 1024);
    let sl1 = mops_hashmap(Platform::t2(), Variant::StaticSl(10), 1, &w);
    let sl32 = mops_hashmap(Platform::t2(), Variant::StaticSl(10), 32, &w);
    let lock32 = mops_hashmap(Platform::t2(), Variant::Instrumented, 32, &w);
    assert!(sl32 > sl1 * 6.0, "SWOpt must scale: {sl1} -> {sl32}");
    assert!(
        sl32 > lock32 * 4.0,
        "SWOpt must beat the lock: {sl32} vs {lock32}"
    );
}

/// §2: SWOpt is "less effective with more frequent mutating operations" —
/// the HTM-vs-SWOpt gap must widen with the mutation rate.
#[test]
fn mutation_hurts_swopt_more_than_htm() {
    // HL's advantage over SL must *widen* as the mutation rate grows.
    let read_heavy = HashMapWorkload::read_heavy(16 * 1024);
    let mutate_heavy = HashMapWorkload::mutate_heavy(16 * 1024);
    // Measured at 4 threads = the full-core count (at 8, SMT cost scaling
    // compresses the contrast; the figure grids still show it there).
    let gap_read = mops_hashmap(Platform::haswell(), Variant::StaticHl(5), 4, &read_heavy)
        / mops_hashmap(Platform::haswell(), Variant::StaticSl(10), 4, &read_heavy);
    let gap_mutate = mops_hashmap(Platform::haswell(), Variant::StaticHl(5), 4, &mutate_heavy)
        / mops_hashmap(Platform::haswell(), Variant::StaticSl(10), 4, &mutate_heavy);
    assert!(
        gap_mutate > gap_read * 1.15,
        "mutation must hurt SWOpt more than HTM: HL/SL gap {gap_read:.2} (read-heavy) \
         vs {gap_mutate:.2} (mutate-heavy)"
    );
}

/// §1/§5: the adaptive policy is competitive with the best static policy
/// without tuning — on both an HTM platform and a non-HTM platform.
#[test]
fn adaptive_is_competitive_with_best_static() {
    let w = HashMapWorkload::read_heavy(16 * 1024);
    for (platform, statics, adaptive) in [
        (
            Platform::haswell(),
            vec![
                Variant::StaticHl(5),
                Variant::StaticSl(10),
                Variant::StaticAll(5, 10),
            ],
            Variant::AdaptiveAll,
        ),
        (
            Platform::t2(),
            vec![Variant::StaticSl(10)],
            Variant::AdaptiveSl,
        ),
    ] {
        let best_static = statics
            .iter()
            .map(|&v| mops_hashmap(platform.clone(), v, 8, &w))
            .fold(0.0f64, f64::max);
        let adaptive = mops_hashmap(platform.clone(), adaptive, 8, &w);
        assert!(
            adaptive > best_static * 0.75,
            "{}: adaptive {adaptive:.2} must be within 25 % of best static {best_static:.2}",
            platform.kind.name()
        );
    }
}

/// §3.1: instrumentation overhead is a constant factor, not a scalability
/// loss — Instrumented tracks Uninstrumented within ~2.5×.
#[test]
fn instrumentation_overhead_is_bounded() {
    let w = HashMapWorkload::read_heavy(16 * 1024);
    for t in [1usize, 8] {
        let base = mops_hashmap(Platform::haswell(), Variant::Uninstrumented, t, &w);
        let instr = mops_hashmap(Platform::haswell(), Variant::Instrumented, t, &w);
        assert!(
            instr > base / 2.5,
            "t={t}: instrumented {instr:.2} vs uninstrumented {base:.2}"
        );
    }
}

/// §5 (Figure 5): on T2-2, elision beats Kyoto's hand-tuned trylockspin at
/// scale, while trylockspin wins at one thread (no elision overhead).
#[test]
fn kyoto_crossover_matches_paper() {
    let cfg = WickedConfig {
        key_space: 8 * 1024,
        count_permille: 0,
        ..Default::default()
    };
    let base1 = run_kyoto(
        Platform::t2(),
        Variant::Uninstrumented,
        1,
        &cfg,
        1_500,
        100,
        3,
    )
    .mops;
    let sl1 = run_kyoto(
        Platform::t2(),
        Variant::StaticSl(10),
        1,
        &cfg,
        1_500,
        800,
        3,
    )
    .mops;
    let base32 = run_kyoto(
        Platform::t2(),
        Variant::Uninstrumented,
        32,
        &cfg,
        500,
        100,
        3,
    )
    .mops;
    let sl32 = run_kyoto(Platform::t2(), Variant::StaticSl(10), 32, &cfg, 500, 200, 3).mops;
    assert!(
        base1 > sl1,
        "1 thread: trylockspin should win ({base1:.2} vs {sl1:.2})"
    );
    assert!(
        sl32 > base32 * 1.2,
        "32 threads: elision should win ({sl32:.2} vs {base32:.2})"
    );
}

/// §5: on Rock's fragile best-effort HTM the adaptive policy learns a small
/// X — it does not burn dozens of doomed retries.
#[test]
fn adaptive_learns_small_x_on_rock() {
    let w = HashMapWorkload::mutate_heavy(16 * 1024);
    let r = run_hashmap(
        Platform::rock(),
        Variant::AdaptiveHl,
        8,
        &w,
        1_500,
        1_500,
        21,
    );
    let rep = r.report.expect("adaptive run has a report");
    let lock = rep.lock("tblLock").unwrap();
    assert!(
        lock.policy.starts_with("final"),
        "must converge: {}",
        lock.policy
    );
    for g in &lock.granules {
        if let Some(x) = g
            .policy
            .strip_prefix("HL X=")
            .and_then(|s| s.parse::<u32>().ok())
        {
            assert!(
                x <= 8,
                "learned X must stay small on Rock: {} -> {}",
                g.context,
                g.policy
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Golden CSV shapes: the figure generators' actual output artifacts
// ---------------------------------------------------------------------------

/// One parsed `platform,mix,variant,threads,mops` row.
struct CsvRow {
    platform: String,
    mix: String,
    variant: String,
    threads: usize,
    mops: f64,
}

fn parse_figure_csv(csv: &str) -> Vec<CsvRow> {
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("platform,mix,variant,threads,mops"),
        "figure CSV header changed"
    );
    lines
        .map(|l| {
            let f: Vec<&str> = l.split(',').collect();
            assert_eq!(f.len(), 5, "malformed row: {l}");
            CsvRow {
                platform: f[0].into(),
                mix: f[1].into(),
                variant: f[2].into(),
                threads: f[3].parse().expect("threads"),
                mops: f[4].parse().expect("mops"),
            }
        })
        .collect()
}

fn mops_at(
    rows: &[CsvRow],
    platform: &str,
    mix_prefix: &str,
    variant: &str,
    threads: usize,
) -> f64 {
    rows.iter()
        .find(|r| {
            r.platform == platform
                && r.mix.starts_with(mix_prefix)
                && r.variant == variant
                && r.threads == threads
        })
        .unwrap_or_else(|| panic!("missing row {platform}/{mix_prefix}*/{variant}/t={threads}"))
        .mops
}

/// Figure 2's CSV (quick grid): the emitted artifact itself must carry the
/// paper's qualitative shape — a complete grid of positive throughputs, a
/// flat lock curve, and TLE scaling past the lock at full cores.
#[test]
fn fig2_csv_golden_shape() {
    let table = ale_bench::figures::fig2(ale_bench::figures::FigOpts {
        quick: true,
        ..Default::default()
    });
    assert_eq!(table.id, "fig2_hashmap_haswell");
    let rows = parse_figure_csv(&table.to_csv());
    // Grid completeness: 3 mixes x 6 variants x threads {1, 4, 8}.
    assert_eq!(rows.len(), 3 * 6 * 3, "fig2 quick grid changed shape");
    for r in &rows {
        assert_eq!(r.platform, "haswell");
        assert!(
            r.mops.is_finite() && r.mops > 0.0,
            "non-physical throughput in {}/{}/t={}",
            r.mix,
            r.variant,
            r.threads
        );
    }
    // The single lock must not scale; TLE must, and must win at 8 threads.
    let lock1 = mops_at(&rows, "haswell", "2i/2r", "Instrumented", 1);
    let lock8 = mops_at(&rows, "haswell", "2i/2r", "Instrumented", 8);
    let hl1 = mops_at(&rows, "haswell", "2i/2r", "Static-HL-5", 1);
    let hl8 = mops_at(&rows, "haswell", "2i/2r", "Static-HL-5", 8);
    assert!(
        lock8 < lock1 * 2.0,
        "lock curve must stay flat: {lock1} -> {lock8}"
    );
    assert!(hl8 > hl1 * 3.0, "TLE curve must rise: {hl1} -> {hl8}");
    assert!(hl8 > lock8 * 2.0, "TLE must beat the lock at 8 threads");
}

/// Figure 5's CSV (quick grid): both platforms present, and the T2-2
/// crossover — hand-tuned trylockspin wins at one thread, elision wins at
/// scale — visible in the emitted rows.
#[test]
fn fig5_csv_golden_shape() {
    let table = ale_bench::figures::fig5(ale_bench::figures::FigOpts {
        quick: true,
        ..Default::default()
    });
    assert_eq!(table.id, "fig5_kyoto_wicked");
    let rows = parse_figure_csv(&table.to_csv());
    for r in &rows {
        assert_eq!(r.mix, "wicked");
        assert!(
            r.mops.is_finite() && r.mops > 0.0,
            "non-physical throughput in {}/{}/t={}",
            r.platform,
            r.variant,
            r.threads
        );
    }
    // Grid completeness: haswell (6 variants x {1,4,8}) + t2 (4 variants x
    // {1,4,8,16,32,64}).
    assert_eq!(
        rows.iter().filter(|r| r.platform == "haswell").count(),
        6 * 3
    );
    assert_eq!(rows.iter().filter(|r| r.platform == "t2").count(), 4 * 6);
    // T2-2 crossover (the paper's Figure 5 story).
    let base1 = mops_at(&rows, "t2", "wicked", "Uninstrumented", 1);
    let sl1 = mops_at(&rows, "t2", "wicked", "Static-SL-10", 1);
    let base64 = mops_at(&rows, "t2", "wicked", "Uninstrumented", 64);
    let sl64 = mops_at(&rows, "t2", "wicked", "Static-SL-10", 64);
    assert!(
        base1 > sl1,
        "1 thread: trylockspin wins ({base1:.2} vs {sl1:.2})"
    );
    assert!(
        sl64 > base64 * 1.2,
        "64 threads: elision wins ({sl64:.2} vs {base64:.2})"
    );
    // Haswell: hardware elision must beat the plain lock at full cores.
    let hsw_lock8 = mops_at(&rows, "haswell", "wicked", "Instrumented", 8);
    let hsw_hl8 = mops_at(&rows, "haswell", "wicked", "Static-HL-5", 8);
    assert!(
        hsw_hl8 > hsw_lock8 * 1.5,
        "haswell t=8: HTM elision must beat the lock ({hsw_hl8:.2} vs {hsw_lock8:.2})"
    );
}

/// Resilience (DESIGN §10): with the abort-storm circuit breaker, the
/// runtime survives an injected storm at fallback speed and restores HTM
/// once it passes — recovering to within 10 % of pre-storm throughput
/// inside the bounded recovery phase. The breaker-less control pays the
/// full doomed retry budget for the storm's whole duration.
#[test]
fn storm_breaker_recovers_throughput() {
    use ale_bench::{run_storm, StormConfig};
    let on = run_storm(&StormConfig::quick(Platform::haswell(), 4, true, 7));
    let off = run_storm(&StormConfig::quick(Platform::haswell(), 4, false, 7));
    // The breaker trips during the storm and restores HTM after it.
    assert!(on.trips >= 1, "the storm must trip the breaker: {on:?}");
    assert!(on.restores >= 1, "HTM must be restored after it: {on:?}");
    assert!(
        on.post_htm_ops > 0,
        "recovery must run in HTM again: {on:?}"
    );
    assert!(
        on.post_mops > on.pre_mops * 0.9,
        "post-storm throughput must recover to within 10% of pre-storm: {on:?}"
    );
    // During the storm, tripping to the lock beats burning HTM budgets.
    assert!(
        on.storm_mops > off.storm_mops * 2.0,
        "the breaker must beat the control during the storm: \
         {:.2} vs {:.2} Mops",
        on.storm_mops,
        off.storm_mops
    );
    // The control never touches its (absent) breaker.
    assert_eq!((off.trips, off.restores), (0, 0), "{off:?}");
}

/// Tracing is strictly opt-in: the figure-shaped runs in this binary must
/// neither observe nor flip the global trace gate, and a disabled emit is
/// inert. (The toggle-heavy cost contract lives in `tests/trace_shape.rs`.)
#[test]
fn tracing_defaults_to_off() {
    assert!(!ale_trace::is_enabled());
    ale_trace::emit(ale_trace::TraceEvent::lock_poison(0));
    assert!(!ale_trace::is_enabled());
}

/// Determinism: the whole stack replays bit-identically for a fixed seed.
#[test]
fn end_to_end_determinism() {
    let w = HashMapWorkload::mutate_heavy(4 * 1024);
    let run = || {
        let r = run_hashmap(
            Platform::rock(),
            Variant::StaticAll(4, 8),
            8,
            &w,
            800,
            400,
            77,
        );
        (r.makespan_ns, r.total_ops)
    };
    assert_eq!(run(), run());
    let cfg = WickedConfig {
        key_space: 2_048,
        count_permille: 0,
        ..Default::default()
    };
    let run_k = || {
        run_kyoto(
            Platform::haswell(),
            Variant::StaticAll(4, 8),
            4,
            &cfg,
            600,
            200,
            78,
        )
        .makespan_ns
    };
    assert_eq!(run_k(), run_k());
}
