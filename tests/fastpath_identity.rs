//! Satellite: the fast-path cost-down refactor (plan-word caching, batched
//! stat deltas, padding, inlining) must change *cost*, not *behaviour*.
//!
//! These constants were captured **before** the refactor landed: a
//! fig2-shaped cell run at a fixed seed must still produce the same
//! makespan and byte-identical CSV output afterwards. The op budget is
//! chosen so every `StatCounter` stays in its exact (sub-threshold)
//! regime — there the legacy per-event `inc` draws no thinning RNG, so a
//! correct batching refactor is RNG-stream- and tick-stream-identical and
//! the schedule cannot drift. (The `shard` ale-check workload half of this
//! satellite lives in `crates/check/tests/digest_regressions.rs`, whose
//! `SHARD_PINNED` digests must keep passing un-blessed.)
//!
//! BLESS=1 prints the constants instead of failing — re-bless only for a
//! change that *means* to alter schedules.

use ale_bench::{run_hashmap, HashMapWorkload, RunResult, Variant};
use ale_vtime::Platform;

/// Captured pre-refactor (fig2 shape: Haswell / Adaptive-All / 2i/2r/96g,
/// 8 threads, 200 ops + 50 warm-up per lane, seed 42).
const FIG2_MAKESPAN_NS: u64 = 156037;
const FIG2_CSV: &str = "platform,variant,threads,total_ops,makespan_ns,mops\nhaswell,Adaptive-All,8,1600,156037,10.2540\n";

/// The same cell through the *static* policy the sharded trajectory cell
/// uses, on the testbed model (seed 7) — a second, independent schedule.
const STATIC_MAKESPAN_NS: u64 = 70640;
const STATIC_CSV: &str = "platform,variant,threads,total_ops,makespan_ns,mops\ntestbed,Static-All-0:6,4,800,70640,11.3250\n";

fn fig2_shaped_cell() -> RunResult {
    run_hashmap(
        Platform::haswell(),
        Variant::AdaptiveAll,
        8,
        &HashMapWorkload::read_heavy(16 * 1024),
        200,
        50,
        42,
    )
}

fn static_cell() -> RunResult {
    run_hashmap(
        Platform::testbed(),
        Variant::StaticAll(0, 6),
        4,
        &HashMapWorkload::mutate_heavy(4 * 1024),
        200,
        50,
        7,
    )
}

fn csv(r: &RunResult) -> String {
    format!("{}\n{}\n", RunResult::CSV_HEADER, r.csv_row())
}

#[test]
fn fig2_cell_is_bit_identical_across_the_fastpath_refactor() {
    let bless = std::env::var_os("BLESS").is_some();
    let r = fig2_shaped_cell();
    if bless {
        println!("const FIG2_MAKESPAN_NS: u64 = {};", r.makespan_ns);
        println!("const FIG2_CSV: &str = {:?};", csv(&r));
        return;
    }
    assert_eq!(
        r.makespan_ns, FIG2_MAKESPAN_NS,
        "fig2 cell makespan drifted — the fast path changed behaviour, not just cost"
    );
    assert_eq!(
        csv(&r),
        FIG2_CSV,
        "fig2 cell CSV bytes drifted — the fast path changed behaviour, not just cost"
    );
}

#[test]
fn static_cell_is_bit_identical_across_the_fastpath_refactor() {
    let bless = std::env::var_os("BLESS").is_some();
    let r = static_cell();
    if bless {
        println!("const STATIC_MAKESPAN_NS: u64 = {};", r.makespan_ns);
        println!("const STATIC_CSV: &str = {:?};", csv(&r));
        return;
    }
    assert_eq!(
        r.makespan_ns, STATIC_MAKESPAN_NS,
        "static cell makespan drifted"
    );
    assert_eq!(csv(&r), STATIC_CSV, "static cell CSV bytes drifted");
}

/// Same seed, run twice in one process: the cell itself must be
/// deterministic, or the pins above prove nothing.
#[test]
fn fig2_cell_is_deterministic_within_a_build() {
    let a = fig2_shaped_cell();
    let b = fig2_shaped_cell();
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(csv(&a), csv(&b));
}
