//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace benches use:
//! `Criterion::bench_function` / `benchmark_group` / `sample_size`,
//! `BenchmarkGroup::bench_with_input` / `finish`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Timings come from `std::time::Instant` and are printed to stdout; there
//! is no statistical analysis or HTML report (see `vendor/README.md`).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export so `criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Runs the closure under test and reports a mean wall-clock time.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a few untimed runs so one-time setup (lazy statics,
        // first-touch page faults) doesn't dominate the measurement.
        for _ in 0..2 {
            std_black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(routine());
        }
        let total = start.elapsed();
        let mean_ns = total.as_nanos() / self.samples.max(1) as u128;
        println!("    {} samples, mean {} ns/iter", self.samples, mean_ns);
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Group-level override is accepted but the stand-in keeps one knob.
        let _ = n;
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{}", self.name, id.label);
        let mut b = Bencher {
            samples: self.criterion.sample_size,
        };
        f(&mut b, input);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {}/{}", self.name, id.into().0);
        let mut b = Bencher {
            samples: self.criterion.sample_size,
        };
        f(&mut b);
        self
    }

    pub fn finish(&mut self) {}
}

/// Accepts both `&str` and `BenchmarkId` where criterion does.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.label)
    }
}

/// Top-level handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {name}");
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Upstream parses CLI args here; the stand-in has none.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n + 1))
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = spin
    }

    #[test]
    fn macros_and_groups_run() {
        benches();
    }
}
