//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses — the
//! `proptest!` macro, `prop_assert*`, `prop_oneof!`, strategies for
//! integer ranges / tuples / `any::<T>()` / `Just` / `collection::vec`,
//! and `ProptestConfig::with_cases` — over a small deterministic PRNG.
//!
//! Differences from upstream (see `vendor/README.md`): no shrinking, and
//! the default case count is 64. Every test's random stream is seeded from
//! the test's name, so failures reproduce bit-for-bit; a failing case
//! panics with the `Debug` rendering of all generated inputs.

pub mod test_runner {
    use std::fmt;

    /// Failure payload carried by `prop_assert*` (upstream: an enum; here a
    /// message is all the harness needs).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-`proptest!` configuration. Only `cases` is supported.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 stream used to drive generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seed derived from the test's name (FNV-1a), so each test owns a
        /// stable, independent stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn gen_range(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            let wide = (self.next_u64() as u128) << 64 | self.next_u64() as u128;
            wide % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A value generator. Upstream strategies also know how to shrink;
    /// this stand-in only generates.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
        }
    }

    /// Type-erased strategy (the currency of `prop_oneof!`).
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: Debug> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(self.total as u128) as u64;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + rng.gen_range(span)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    (lo as u128 + rng.gen_range(span)) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec`]: an exact length or a
    /// half-open range.
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_exclusive - self.min).max(1);
            let len = self.min + rng.gen_range(span as u128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty vec size range");
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-harness macro: expands each `fn name(arg in strategy, ..)` into
/// a `#[test]` that runs `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                let described = format!(
                    concat!("{}", $(concat!("\n  ", stringify!($arg), " = {:?}"),)* ""),
                    case $(, &$arg)*
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("proptest case failed: {e}\ncase {described}");
                }
            }
        }
    )*};
}

/// Fail the current test case (returns `Err(TestCaseError)`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?} == {:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?} != {:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Weighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new_weighted(vec![
            $( ($weight, $crate::strategy::Strategy::boxed($strat)), )+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::prop_oneof![ $( 1 => $strat ),+ ]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0usize..1).generate(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        // All weight on the first arm: second arm never fires.
        let s = prop_oneof![10 => Just(1u8)];
        let mut rng = TestRng::for_test("oneof");
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng), 1);
        }
    }

    #[test]
    fn vec_lengths_honour_spec() {
        let mut rng = TestRng::for_test("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..4, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let w = crate::collection::vec(0u8..4, 3usize).generate(&mut rng);
            assert_eq!(w.len(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, `?` works, prop_asserts pass.
        #[test]
        fn macro_end_to_end(x in 0u64..100, flips in crate::collection::vec(any::<bool>(), 0..10)) {
            prop_assert!(x < 100);
            prop_assert_eq!(flips.len() < 10, true);
            let helper = |v: u64| -> Result<u64, TestCaseError> { Ok(v + 1) };
            let y = helper(x)?;
            prop_assert_eq!(y, x + 1, "helper must increment");
        }
    }
}
