//! # ale-repro — Adaptive Lock Elision (SPAA 2014), reproduced in Rust
//!
//! Umbrella crate for the reproduction of Dice, Kogan, Lev, Merrifield,
//! and Moir: *Adaptive Integration of Hardware and Software Lock Elision
//! Techniques* (SPAA 2014). It re-exports the workspace crates:
//!
//! * [`core`](ale_core) — the ALE library: HTM / SWOpt / Lock execution
//!   modes, per-(lock, context) statistics, static & adaptive policies.
//! * [`htm`](ale_htm) — software-emulated best-effort hardware
//!   transactional memory (the paper's hardware substitute).
//! * [`sync`](ale_sync) — locks, seqlocks, SNZI, BFP statistical counters,
//!   sampled timing.
//! * [`vtime`](ale_vtime) — the deterministic virtual-time simulator and
//!   platform profiles (Rock / Haswell / T2-2).
//! * [`hashmap`](ale_hashmap) — the paper's HashMap running example.
//! * [`kyoto`](ale_kyoto) — the Kyoto Cabinet-style benchmark substrate.
//!
//! Start with `examples/quickstart.rs`, then see DESIGN.md for the system
//! inventory and EXPERIMENTS.md for the paper-vs-measured results.

pub use ale_core as core;
pub use ale_hashmap as hashmap;
pub use ale_htm as htm;
pub use ale_kyoto as kyoto;
pub use ale_sync as sync;
pub use ale_vtime as vtime;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use ale_core::{
        scope, AdaptivePolicy, Ale, AleConfig, AleLock, AleRwLock, CsCtx, CsOptions, CsOutcome,
        ExecMode, Policy, StaticPolicy,
    };
    pub use ale_htm::HtmCell;
    pub use ale_sync::{RawLock, RawRwLock, RwLock, SeqVersion, SpinLock};
    pub use ale_vtime::{Platform, Rng, Sim};
}
