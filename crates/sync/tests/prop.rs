//! Property-based tests for the synchronisation substrates.

use ale_htm::HtmCell;
use ale_sync::{RawLock, RawRwLock, RwLock, SeqVersion, Snzi, SpinLock, StatCounter, TicketLock};
use ale_vtime::{tick, Event, Platform, Rng, Sim};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SNZI: for any arrive/depart schedule, query == surplus > 0.
    #[test]
    fn snzi_tracks_surplus(
        levels in 0u32..5,
        script in proptest::collection::vec((any::<usize>(), any::<bool>()), 0..60),
    ) {
        let s = Snzi::new(levels);
        let mut guards = Vec::new();
        for (hint, arrive) in script {
            if arrive || guards.is_empty() {
                guards.push(s.arrive_at(hint));
            } else {
                let idx = hint % guards.len();
                guards.swap_remove(idx);
            }
            prop_assert_eq!(s.query(), !guards.is_empty());
        }
        drop(guards);
        prop_assert!(!s.query());
    }

    /// BFP counter: exact at small counts; within 10 % for any count up to
    /// a few hundred thousand, for any seed.
    #[test]
    fn counter_accuracy(seed in any::<u64>(), n in 1u64..200_000) {
        let c = StatCounter::new();
        let mut rng = Rng::new(seed);
        for _ in 0..n {
            c.inc(&mut rng);
        }
        let est = c.read();
        if n <= 4096 {
            prop_assert_eq!(est, n, "exact regime");
        } else {
            let err = (est as f64 - n as f64).abs() / n as f64;
            prop_assert!(err < 0.10, "n={n} est={est} err={err:.4}");
        }
    }

    /// SeqVersion: interleaved conflicting actions and reads — a snapshot
    /// validates iff no action intervened, and versions stay even outside
    /// actions.
    #[test]
    fn seqversion_validation(actions in proptest::collection::vec(any::<bool>(), 1..40)) {
        let v = SeqVersion::new();
        let mut snap = v.read(true);
        prop_assert_eq!(snap % 2, 0);
        for do_action in actions {
            if do_action {
                v.begin_conflicting_action();
                prop_assert_eq!(v.read(false) % 2, 1);
                v.end_conflicting_action();
                prop_assert!(!v.validate(snap), "action must invalidate");
                snap = v.read(true);
            } else {
                prop_assert!(v.validate(snap), "no action: snapshot stays valid");
            }
        }
    }

    /// SeqVersion: balanced conflicting regions keep the version word even
    /// at rest and advance it by exactly 2 per region, so the region count
    /// is always recoverable from the version.
    #[test]
    fn seqversion_parity_and_region_count(regions in 1usize..50) {
        let v = SeqVersion::new();
        for i in 0..regions as u64 {
            let snap = v.read(true);
            prop_assert!(snap.is_multiple_of(2));
            prop_assert_eq!(snap, 2 * i);
            v.begin_conflicting_action();
            prop_assert_eq!(v.read(false), 2 * i + 1, "odd inside the region");
            v.end_conflicting_action();
            prop_assert!(!v.validate(snap), "a completed region must invalidate");
        }
        prop_assert_eq!(v.read(true), 2 * regions as u64);
    }

    /// Reader-validation soundness under real interleavings: for any seed,
    /// a reader whose `validate` passed must have observed consistent data
    /// — the writer only breaks the `a == b` invariant inside conflicting
    /// regions, so a torn pair that survives validation is a protocol bug.
    #[test]
    fn seqversion_readers_validate_soundly(seed in any::<u64>()) {
        let ver = SeqVersion::new();
        let a = HtmCell::new(0u64);
        let b = HtmCell::new(0u64);
        Sim::new(Platform::testbed(), 3).with_seed(seed).run(|lane| {
            let mut rng = Rng::new(seed ^ (lane.id() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if lane.id() == 0 {
                // Sole writer: exclusion comes from single ownership, as the
                // lock provides it in the real protocol.
                for i in 1..=40u64 {
                    ver.begin_conflicting_action();
                    a.set(i);
                    tick(Event::LocalWork(1 + rng.gen_range(80)));
                    b.set(i);
                    ver.end_conflicting_action();
                    tick(Event::LocalWork(1 + rng.gen_range(120)));
                }
            } else {
                for _ in 0..60 {
                    let snap = ver.read(true);
                    let x = a.get();
                    let y = b.get();
                    if ver.validate(snap) {
                        assert_eq!(x, y, "validated read must be consistent");
                    }
                    tick(Event::LocalWork(1 + rng.gen_range(60)));
                }
            }
        });
        prop_assert!(ver.read(false).is_multiple_of(2), "even at quiescence");
    }

    /// SNZI under concurrent schedules: the indicator must never read
    /// empty while any lane holds an arrival, and must read empty once
    /// every lane departed — for any seed and tree depth.
    #[test]
    fn snzi_concurrent_stress(seed in any::<u64>(), levels in 0u32..4) {
        let s = Snzi::new(levels);
        Sim::new(Platform::testbed(), 4).with_seed(seed).run(|lane| {
            let mut rng = Rng::new(seed ^ (lane.id() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for i in 0..30usize {
                let guard = s.arrive_at(lane.id() * 31 + i);
                // Our own arrival is outstanding: the surplus is provably
                // nonzero right now, whatever the other lanes are doing.
                assert!(s.query(), "indicator empty while an arrival is held");
                tick(Event::LocalWork(1 + rng.gen_range(100)));
                drop(guard);
                tick(Event::LocalWork(1 + rng.gen_range(50)));
            }
        });
        prop_assert!(!s.query(), "indicator nonzero after all departures");
    }

    /// Locks: any acquire/release interleaving driven sequentially keeps
    /// is_locked consistent; try_acquire agrees with state.
    #[test]
    fn mutex_state_machine(ops in proptest::collection::vec(any::<bool>(), 0..40)) {
        let spin = SpinLock::new();
        let ticket = TicketLock::new();
        let mut held = false;
        for want_acquire in ops {
            if want_acquire && !held {
                spin.acquire();
                ticket.acquire();
                held = true;
            } else if !want_acquire && held {
                spin.release();
                ticket.release();
                held = false;
            }
            prop_assert_eq!(spin.is_locked(), held);
            prop_assert_eq!(ticket.is_locked(), held);
            if held {
                prop_assert!(!spin.try_acquire());
                prop_assert!(!ticket.try_acquire());
            }
        }
        if held {
            spin.release();
            ticket.release();
        }
    }

    /// RW lock: reader count and writer bit behave like the obvious state
    /// machine for any sequential schedule.
    #[test]
    fn rwlock_state_machine(ops in proptest::collection::vec(0u8..4, 0..40)) {
        let l = RwLock::new();
        let mut readers = 0u32;
        let mut writer = false;
        for op in ops {
            match op {
                0 if !writer => {
                    // try shared: succeeds iff no writer (no waiters here)
                    prop_assert!(l.try_acquire_shared());
                    readers += 1;
                }
                1 if readers > 0 => {
                    l.release_shared();
                    readers -= 1;
                }
                2 if !writer && readers == 0 => {
                    prop_assert!(l.try_acquire_excl());
                    writer = true;
                }
                3 if writer => {
                    l.release_excl();
                    writer = false;
                }
                _ => {
                    // Illegal transition for current state: try-variants
                    // must refuse where exclusion demands it.
                    if writer {
                        prop_assert!(!l.try_acquire_shared());
                        prop_assert!(!l.try_acquire_excl());
                    }
                    if readers > 0 {
                        prop_assert!(!l.try_acquire_excl());
                    }
                }
            }
            prop_assert_eq!(l.is_excl_locked(), writer);
            prop_assert_eq!(l.is_any_locked(), writer || readers > 0);
            prop_assert_eq!(l.reader_count(), readers as u64);
        }
    }

    /// Batched flushes (`add`) vs per-event `inc`: any partitioning of the
    /// same event total into per-CS deltas, flushed in any order and
    /// interleaved with per-event updates, lands on the same total — exact
    /// below the mantissa threshold, within the usual BFP bound above it.
    #[test]
    fn counter_add_partitioning_and_order_are_exact(
        seed in any::<u64>(),
        batches in proptest::collection::vec(0u64..600, 0..12),
        incs in 0u64..600,
    ) {
        let forward = StatCounter::new();
        let reverse = StatCounter::new();
        let mut rng_f = Rng::new(seed);
        let mut rng_r = Rng::new(seed);
        let total: u64 = batches.iter().sum::<u64>() + incs;
        let mut fwd_batches = batches.iter();
        for i in 0..incs {
            forward.inc(&mut rng_f);
            if i % 3 == 0 {
                if let Some(&b) = fwd_batches.next() {
                    forward.add(b);
                }
            }
        }
        for &b in fwd_batches {
            forward.add(b);
        }
        // Same events, opposite flush order, incs all at the end.
        for &b in batches.iter().rev() {
            reverse.add(b);
        }
        for _ in 0..incs {
            reverse.inc(&mut rng_r);
        }
        if total <= 4096 {
            prop_assert_eq!(forward.read(), total, "exact regime");
            prop_assert_eq!(reverse.read(), total, "flush order must not matter");
            prop_assert!(forward.is_exact());
        } else {
            for est in [forward.read(), reverse.read()] {
                let err = (est as f64 - total as f64).abs() / total as f64;
                prop_assert!(err < 0.10, "total={total} est={est} err={err:.4}");
            }
        }
    }

    /// Saturation: folding large batches drives the counter deep into the
    /// sampled regime, where each flush rounds to the current quantum —
    /// the running estimate must stay within the standard accuracy bound
    /// no matter how the batches are sized.
    #[test]
    fn counter_add_saturation_stays_accurate(
        seed in any::<u64>(),
        batches in proptest::collection::vec(1u64..50_000, 1..20),
    ) {
        let c = StatCounter::new();
        let mut rng = Rng::new(seed);
        // Cross the threshold with per-event updates first, so the folds
        // land on a nonzero exponent.
        let warmup = 5_000u64;
        for _ in 0..warmup {
            c.inc(&mut rng);
        }
        let mut truth = warmup;
        for &b in &batches {
            c.add(b);
            truth += b;
        }
        prop_assert!(!c.is_exact(), "warmup must leave the exact regime");
        let est = c.read();
        let err = (est as f64 - truth as f64).abs() / truth as f64;
        prop_assert!(err < 0.10, "truth={truth} est={est} err={err:.4}");
    }
}

/// Concurrent flushes: per-thread deltas folded with `add` interleaved
/// with per-event `inc`s must drain to the exact sum of every thread's
/// contribution (the total stays below the mantissa threshold, so the CAS
/// loop may retry but can never lose or double-count a batch).
#[test]
fn counter_concurrent_add_drains_exact_totals() {
    let c = StatCounter::new();
    let threads = 4u64;
    let per_thread = 256 + 10 * 70; // incs + batched events, per thread
    std::thread::scope(|s| {
        for t in 0..threads {
            let c = &c;
            s.spawn(move || {
                let mut rng = Rng::new(1000 + t);
                for i in 0..10 {
                    for _ in 0..25 {
                        c.inc(&mut rng);
                    }
                    c.add(70); // one critical section's flushed delta
                    if i % 4 == 0 {
                        c.add(0); // empty delta: must be free
                    }
                }
                for _ in 0..6 {
                    c.inc(&mut rng);
                }
            });
        }
    });
    assert!(c.is_exact(), "total below threshold must stay exact");
    assert_eq!(c.read(), threads * per_thread);
}

/// BFP counter: the estimate is unbiased — across a fleet of deterministic
/// seeds every estimate stays within the single-run error bound, and the
/// fleet mean lands much tighter (the expected value is the true count).
#[test]
fn counter_expected_value_deterministic() {
    let n = 100_000u64;
    let seeds = 16u64;
    let mut sum = 0.0;
    for seed in 1..=seeds {
        let c = StatCounter::new();
        let mut rng = Rng::new(seed);
        for _ in 0..n {
            c.inc(&mut rng);
        }
        let est = c.read() as f64;
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.10, "seed {seed}: est {est} err {err:.4}");
        sum += est;
    }
    let mean = sum / seeds as f64;
    let err = (mean - n as f64).abs() / n as f64;
    assert!(
        err < 0.03,
        "fleet mean {mean:.0} over {seeds} seeds must be unbiased (err {err:.4})"
    );
}

/// The exact→sampled transition: counts are exactly right up to the
/// mantissa threshold, and the first halving still projects the true count
/// — the paper's "accurate even after relatively small numbers of events".
#[test]
fn counter_saturation_edge_is_exact() {
    let c = StatCounter::new();
    let mut rng = Rng::new(42);
    let mut n = 0u64;
    while c.is_exact() {
        assert_eq!(c.read(), n, "exact regime must be exact");
        c.inc(&mut rng);
        n += 1;
        assert!(n < 1 << 20, "exact regime never ended");
    }
    assert_eq!(
        c.read(),
        n,
        "the first mantissa halving must still project the true count"
    );
    assert_eq!(n, 2 << 12, "mantissa threshold moved: update this test");
}
