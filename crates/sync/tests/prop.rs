//! Property-based tests for the synchronisation substrates.

use ale_sync::{RawLock, RawRwLock, RwLock, SeqVersion, Snzi, SpinLock, StatCounter, TicketLock};
use ale_vtime::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SNZI: for any arrive/depart schedule, query == surplus > 0.
    #[test]
    fn snzi_tracks_surplus(
        levels in 0u32..5,
        script in proptest::collection::vec((any::<usize>(), any::<bool>()), 0..60),
    ) {
        let s = Snzi::new(levels);
        let mut guards = Vec::new();
        for (hint, arrive) in script {
            if arrive || guards.is_empty() {
                guards.push(s.arrive_at(hint));
            } else {
                let idx = hint % guards.len();
                guards.swap_remove(idx);
            }
            prop_assert_eq!(s.query(), !guards.is_empty());
        }
        drop(guards);
        prop_assert!(!s.query());
    }

    /// BFP counter: exact at small counts; within 10 % for any count up to
    /// a few hundred thousand, for any seed.
    #[test]
    fn counter_accuracy(seed in any::<u64>(), n in 1u64..200_000) {
        let c = StatCounter::new();
        let mut rng = Rng::new(seed);
        for _ in 0..n {
            c.inc(&mut rng);
        }
        let est = c.read();
        if n <= 4096 {
            prop_assert_eq!(est, n, "exact regime");
        } else {
            let err = (est as f64 - n as f64).abs() / n as f64;
            prop_assert!(err < 0.10, "n={n} est={est} err={err:.4}");
        }
    }

    /// SeqVersion: interleaved conflicting actions and reads — a snapshot
    /// validates iff no action intervened, and versions stay even outside
    /// actions.
    #[test]
    fn seqversion_validation(actions in proptest::collection::vec(any::<bool>(), 1..40)) {
        let v = SeqVersion::new();
        let mut snap = v.read(true);
        prop_assert_eq!(snap % 2, 0);
        for do_action in actions {
            if do_action {
                v.begin_conflicting_action();
                prop_assert_eq!(v.read(false) % 2, 1);
                v.end_conflicting_action();
                prop_assert!(!v.validate(snap), "action must invalidate");
                snap = v.read(true);
            } else {
                prop_assert!(v.validate(snap), "no action: snapshot stays valid");
            }
        }
    }

    /// Locks: any acquire/release interleaving driven sequentially keeps
    /// is_locked consistent; try_acquire agrees with state.
    #[test]
    fn mutex_state_machine(ops in proptest::collection::vec(any::<bool>(), 0..40)) {
        let spin = SpinLock::new();
        let ticket = TicketLock::new();
        let mut held = false;
        for want_acquire in ops {
            if want_acquire && !held {
                spin.acquire();
                ticket.acquire();
                held = true;
            } else if !want_acquire && held {
                spin.release();
                ticket.release();
                held = false;
            }
            prop_assert_eq!(spin.is_locked(), held);
            prop_assert_eq!(ticket.is_locked(), held);
            if held {
                prop_assert!(!spin.try_acquire());
                prop_assert!(!ticket.try_acquire());
            }
        }
        if held {
            spin.release();
            ticket.release();
        }
    }

    /// RW lock: reader count and writer bit behave like the obvious state
    /// machine for any sequential schedule.
    #[test]
    fn rwlock_state_machine(ops in proptest::collection::vec(0u8..4, 0..40)) {
        let l = RwLock::new();
        let mut readers = 0u32;
        let mut writer = false;
        for op in ops {
            match op {
                0 if !writer => {
                    // try shared: succeeds iff no writer (no waiters here)
                    prop_assert!(l.try_acquire_shared());
                    readers += 1;
                }
                1 if readers > 0 => {
                    l.release_shared();
                    readers -= 1;
                }
                2 if !writer && readers == 0 => {
                    prop_assert!(l.try_acquire_excl());
                    writer = true;
                }
                3 if writer => {
                    l.release_excl();
                    writer = false;
                }
                _ => {
                    // Illegal transition for current state: try-variants
                    // must refuse where exclusion demands it.
                    if writer {
                        prop_assert!(!l.try_acquire_shared());
                        prop_assert!(!l.try_acquire_excl());
                    }
                    if readers > 0 {
                        prop_assert!(!l.try_acquire_excl());
                    }
                }
            }
            prop_assert_eq!(l.is_excl_locked(), writer);
            prop_assert_eq!(l.is_any_locked(), writer || readers > 0);
            prop_assert_eq!(l.reader_count(), readers as u64);
        }
    }
}
