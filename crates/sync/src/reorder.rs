//! Weak-memory reorder fences: visibility-delay injection points at the
//! seqlock publish and subscription boundaries.
//!
//! The ordering-discipline lint rule (`ale-lint`) statically assumes that
//! data writes never become visible on the wrong side of their version
//! bump and that readers never use data they have not re-validated. The
//! dynamic checker wants to *falsify* that assumption, not just trust it:
//! these fences charge virtual time (one [`Event::Raw`] tick) exactly at
//! the boundaries where a reordered store or a hoisted load would be
//! observable — between a publication's data writes and its version bump
//! ([`publish_fence`]) and between a subscriber's data reads and its
//! validating load ([`subscribe_fence`]). Under an adversarial scheduler
//! (especially [`SchedStrategy::Reorder`](ale_vtime::SchedStrategy)) every
//! fence becomes a decision point inside the dangerous window, so other
//! lanes run while the publication is "in flight" — the deterministic
//! analogue of a store parked in a store buffer.
//!
//! Like [`chaos`](crate::chaos), the window is process-global, off by
//! default (one relaxed load per fence), and stretches only *virtual*
//! time: with the fences armed, the same seed and schedule still replay
//! bit-identically.

use std::sync::atomic::{AtomicU64, Ordering};

use ale_vtime::{tick, Event};

static WINDOW_NS: AtomicU64 = AtomicU64::new(0);

/// Charge every reorder fence `window_ns` of virtual time (0 disables).
pub fn set_window(window_ns: u64) {
    WINDOW_NS.store(window_ns, Ordering::Release);
}

/// The configured per-fence window.
pub fn window() -> u64 {
    WINDOW_NS.load(Ordering::Acquire)
}

/// Publication-side fence: sits between a publisher's data writes and the
/// version bump that makes them official.
#[inline]
pub(crate) fn publish_fence() {
    let w = WINDOW_NS.load(Ordering::Relaxed);
    if w > 0 {
        tick(Event::Raw(w));
    }
}

/// Subscription-side fence: sits between a subscriber's optimistic data
/// reads and the validating version load.
#[inline]
pub(crate) fn subscribe_fence() {
    let w = WINDOW_NS.load(Ordering::Relaxed);
    if w > 0 {
        tick(Event::Raw(w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqlock::SeqBuffer;
    use ale_vtime::{Platform, Sim};

    #[test]
    fn window_stretches_publication_in_virtual_time() {
        let span = |w| {
            set_window(w);
            let r = Sim::new(Platform::testbed(), 1).run(|_| {
                let buf: SeqBuffer<2> = SeqBuffer::new();
                let t0 = ale_vtime::now();
                buf.store([1, 1]);
                ale_vtime::now() - t0
            });
            set_window(0);
            r.results[0]
        };
        let base = span(0);
        let slow = span(400);
        assert!(
            slow >= base + 400,
            "an armed publish fence must stretch the store: {base} -> {slow}"
        );
    }

    #[test]
    fn zero_window_is_free() {
        set_window(0);
        assert_eq!(window(), 0);
        publish_fence(); // no lane installed: must not panic or tick
        subscribe_fence();
    }
}
