//! The BFP probabilistic statistics counter (Dice, Lev, Moir —
//! "Scalable Statistics Counters", SPAA 2013).
//!
//! ALE records *lots* of events (attempts, successes, aborts per
//! (lock, context) granule). A plain shared `fetch_add` counter becomes a
//! coherence hot-spot at exactly the moment the data matters most — under
//! contention. The BFP ("binary floating point") counter stores a mantissa
//! and an exponent: increments update the shared word only with probability
//! `2^-exponent`, and each successful update adds `2^exponent` to the
//! projected value, keeping the estimate **unbiased**. While the value is
//! small the exponent is 0, so counts are *exact* until the mantissa
//! reaches its threshold — the paper's requirement that accuracy be good
//! "even after relatively small numbers of events" (§4.3). When the
//! mantissa fills up it is halved and the exponent bumped, halving the
//! update probability.
//!
//! Layout of the shared word: `mantissa (48 bits) | exponent (16 bits)`.

use std::sync::atomic::{AtomicU64, Ordering};

use ale_vtime::{tick, Event, Rng};

use crate::backoff::Backoff;

/// Mantissa threshold: exact counting up to this value, and the relative
/// error stays ~`1/sqrt(MANTISSA_THRESHOLD)` afterwards.
const MANTISSA_THRESHOLD: u64 = 1 << 12;

#[inline]
fn pack(mantissa: u64, exp: u64) -> u64 {
    (mantissa << 16) | (exp & 0xFFFF)
}

#[inline]
fn unpack(word: u64) -> (u64, u64) {
    (word >> 16, word & 0xFFFF)
}

/// A scalable, probabilistically-updated event counter (increment-by-one
/// only, as in the paper — which is why ALE cannot use it for timing data).
///
/// ```
/// use ale_sync::StatCounter;
/// use ale_vtime::Rng;
/// let c = StatCounter::new();
/// let mut rng = Rng::new(1);
/// for _ in 0..1000 {
///     c.inc(&mut rng);
/// }
/// assert_eq!(c.read(), 1000, "exact while the count is small");
/// ```
#[derive(Debug, Default)]
pub struct StatCounter {
    word: AtomicU64,
}

impl StatCounter {
    pub fn new() -> Self {
        StatCounter {
            word: AtomicU64::new(0),
        }
    }

    /// Record one event. `rng` supplies the thinning decisions (per-thread,
    /// deterministic under simulation).
    #[inline]
    pub fn inc(&self, rng: &mut Rng) {
        let (_, exp) = unpack(self.word.load(Ordering::Relaxed));
        // Update with probability 2^-exp…
        if exp > 0 && rng.gen_range(1 << exp) != 0 {
            return;
        }
        // …and when we do, the CAS retries with backoff (contention on the
        // shared word is already thinned by the sampling).
        let mut backoff = Backoff::with_max_exp(6);
        loop {
            let w = self.word.load(Ordering::Relaxed);
            let (m, e) = unpack(w);
            if e != exp {
                // The exponent moved under us; our thinning probability was
                // wrong — drop this update attempt (the paper accepts this
                // transient; it only perturbs the estimate near threshold).
                return;
            }
            let (nm, ne) = if m + 1 >= MANTISSA_THRESHOLD * 2 {
                (m.div_ceil(2), e + 1)
            } else {
                (m + 1, e)
            };
            tick(Event::Cas);
            if self
                .word
                .compare_exchange_weak(w, pack(nm, ne), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            backoff.spin();
        }
    }

    /// Fold a pre-aggregated batch of `n` events into the counter with one
    /// shared update. This is the flush half of the fast path's
    /// thread-local delta batching, and it only runs where `tick` is a
    /// no-op: under the virtual-time simulator the runtime keeps per-event
    /// [`inc`] so schedules and digests stay bit-identical, and on real
    /// hardware the batched sink records into a stack-local delta and
    /// flushes here — tick- and RNG-free, one CAS loop per counter instead
    /// of one per event. Exact while the exponent is zero (the regime
    /// every ale-check workload stays in); above threshold the batch folds
    /// at the counter's current resolution — rounded to the nearest
    /// multiple of `2^exp`, so each flush perturbs the projection by at
    /// most half a quantum instead of drawing per-event thinning
    /// decisions.
    ///
    /// [`inc`]: StatCounter::inc
    #[inline]
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut backoff = Backoff::with_max_exp(6);
        loop {
            let w = self.word.load(Ordering::Relaxed);
            let (m, e) = unpack(w);
            let units = if e == 0 {
                n
            } else {
                (n + ((1u64 << e) >> 1)) >> e
            };
            let (mut nm, mut ne) = (m + units, e);
            while nm >= MANTISSA_THRESHOLD * 2 {
                nm = nm.div_ceil(2);
                ne += 1;
            }
            if self
                .word
                .compare_exchange_weak(w, pack(nm, ne), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            backoff.spin();
        }
    }

    /// The projected (estimated) count: `mantissa << exponent`. Exact while
    /// the exponent is zero.
    #[inline]
    pub fn read(&self) -> u64 {
        tick(Event::SharedLoad);
        let (m, e) = unpack(self.word.load(Ordering::Acquire));
        m << e
    }

    /// Is the counter still in its exact (pre-threshold) regime?
    #[inline]
    pub fn is_exact(&self) -> bool {
        unpack(self.word.load(Ordering::Relaxed)).1 == 0
    }

    /// Reset to zero (used between ALE learning phases).
    pub fn reset(&self) {
        self.word.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_threshold() {
        let c = StatCounter::new();
        let mut rng = Rng::new(1);
        for i in 1..=1000u64 {
            c.inc(&mut rng);
            assert_eq!(c.read(), i, "must be exact in the small-count regime");
        }
        assert!(c.is_exact());
        c.reset();
        assert_eq!(c.read(), 0);
    }

    #[test]
    fn accurate_above_threshold() {
        let c = StatCounter::new();
        let mut rng = Rng::new(7);
        let n = 1_000_000u64;
        for _ in 0..n {
            c.inc(&mut rng);
        }
        assert!(!c.is_exact());
        let est = c.read();
        let err = (est as f64 - n as f64).abs() / n as f64;
        assert!(err < 0.05, "estimate {est} vs true {n} (err {err:.4})");
    }

    #[test]
    fn concurrent_increments_stay_accurate() {
        let c = StatCounter::new();
        let per_thread = 100_000u64;
        let threads = 4u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let c = &c;
                s.spawn(move || {
                    let mut rng = Rng::new(100 + t);
                    for _ in 0..per_thread {
                        c.inc(&mut rng);
                    }
                });
            }
        });
        let n = per_thread * threads;
        let est = c.read();
        let err = (est as f64 - n as f64).abs() / n as f64;
        assert!(err < 0.08, "estimate {est} vs true {n} (err {err:.4})");
    }

    #[test]
    fn updates_thin_out_as_count_grows() {
        // Count CAS updates indirectly: after the exponent grows, most incs
        // should return without touching the word.
        let c = StatCounter::new();
        let mut rng = Rng::new(3);
        for _ in 0..(MANTISSA_THRESHOLD * 4) {
            c.inc(&mut rng);
        }
        let mut prev = c.word.load(Ordering::Relaxed);
        let mut changes = 0;
        for _ in 0..1000 {
            c.inc(&mut rng);
            let w = c.word.load(Ordering::Relaxed);
            if w != prev {
                changes += 1;
                prev = w;
            }
        }
        // Exponent is ≥ 2 here, so roughly ≤ 1/4 of incs update the word.
        assert!(
            (50..=600).contains(&changes),
            "updates must be probabilistically thinned: {changes}"
        );
    }
}
