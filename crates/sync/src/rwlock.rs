//! A writer-preference readers-writer lock (Courtois et al. [2]).
//!
//! Kyoto Cabinet guards its hash database with an RW-lock at the top level
//! and per-slot mutexes below; the Figure 5 experiments elide exactly this
//! structure. The whole state is one [`HtmCell`] word so elided critical
//! sections can subscribe to it:
//!
//! ```text
//! bit 63        : writer holds the lock
//! bits 32..48   : writers waiting (writer preference: readers defer)
//! bits 0..32    : active reader count
//! ```

use ale_htm::HtmCell;
use ale_vtime::{tick, Event};

use crate::backoff::Backoff;
use crate::raw_lock::RawRwLock;

const WRITER: u64 = 1 << 63;
const WAITER_UNIT: u64 = 1 << 32;
const WAITER_MASK: u64 = 0xFFFF << 32;
const READER_MASK: u64 = 0xFFFF_FFFF;

#[inline]
fn readers(s: u64) -> u64 {
    s & READER_MASK
}

#[inline]
fn waiters(s: u64) -> u64 {
    (s & WAITER_MASK) >> 32
}

#[inline]
fn writer_held(s: u64) -> bool {
    s & WRITER != 0
}

/// Writer-preference readers-writer spinlock over a single subscribable word.
pub struct RwLock {
    state: HtmCell<u64>,
}

impl RwLock {
    pub fn new() -> Self {
        RwLock {
            state: HtmCell::new(0),
        }
    }

    /// Current active reader count (diagnostics).
    pub fn reader_count(&self) -> u64 {
        readers(self.state.load_consistent())
    }
}

impl Default for RwLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawRwLock for RwLock {
    fn acquire_shared(&self) {
        let mut backoff = Backoff::new();
        loop {
            let s = self.state.load_consistent();
            tick(Event::SharedLoad);
            // Writer preference: defer to held *and* waiting writers.
            if writer_held(s) || waiters(s) > 0 {
                backoff.spin();
                continue;
            }
            if self.state.compare_exchange(s, s + 1).is_ok() {
                return;
            }
            backoff.spin();
        }
    }

    fn try_acquire_shared(&self) -> bool {
        let s = self.state.load_consistent();
        tick(Event::SharedLoad);
        if writer_held(s) || waiters(s) > 0 {
            return false;
        }
        self.state.compare_exchange(s, s + 1).is_ok()
    }

    fn release_shared(&self) {
        loop {
            let s = self.state.load_consistent();
            debug_assert!(readers(s) > 0, "release_shared with no readers");
            if self.state.compare_exchange(s, s - 1).is_ok() {
                return;
            }
            tick(Event::Cas);
        }
    }

    fn acquire_excl(&self) {
        // Register as a waiting writer (this is what blocks new readers).
        loop {
            let s = self.state.load_consistent();
            if self.state.compare_exchange(s, s + WAITER_UNIT).is_ok() {
                break;
            }
            tick(Event::Cas);
        }
        // Wait for a fully quiescent lock, then swap waiting -> holding.
        let mut backoff = Backoff::new();
        loop {
            let s = self.state.load_consistent();
            tick(Event::SharedLoad);
            if !writer_held(s) && readers(s) == 0 {
                debug_assert!(waiters(s) > 0);
                if self
                    .state
                    .compare_exchange(s, (s - WAITER_UNIT) | WRITER)
                    .is_ok()
                {
                    tick(Event::LockHandoff);
                    return;
                }
            }
            backoff.spin();
        }
    }

    fn try_acquire_excl(&self) -> bool {
        let s = self.state.load_consistent();
        tick(Event::SharedLoad);
        if s != 0 {
            // Anyone active — reader, writer, or waiting writer — wins.
            return false;
        }
        let ok = self.state.compare_exchange(0, WRITER).is_ok();
        if ok {
            tick(Event::LockHandoff);
        }
        ok
    }

    fn release_excl(&self) {
        loop {
            let s = self.state.load_consistent();
            debug_assert!(writer_held(s), "release_excl without a writer");
            if self.state.compare_exchange(s, s & !WRITER).is_ok() {
                return;
            }
            tick(Event::Cas);
        }
    }

    fn is_excl_locked(&self) -> bool {
        writer_held(self.state.get()) // subscribes inside a tx
    }

    fn is_any_locked(&self) -> bool {
        self.state.get() != 0 // subscribes inside a tx
    }
}

impl std::fmt::Debug for RwLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.load_consistent();
        f.debug_struct("RwLock")
            .field("writer", &writer_held(s))
            .field("waiting_writers", &waiters(s))
            .field("readers", &readers(s))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn shared_and_exclusive_basics() {
        let l = RwLock::new();
        l.acquire_shared();
        l.acquire_shared();
        assert_eq!(l.reader_count(), 2);
        assert!(!l.try_acquire_excl(), "readers block writers");
        assert!(l.try_acquire_shared());
        l.release_shared();
        l.release_shared();
        l.release_shared();
        assert!(l.try_acquire_excl());
        assert!(l.is_excl_locked());
        assert!(l.is_any_locked());
        assert!(!l.try_acquire_shared(), "writer blocks readers");
        assert!(!l.try_acquire_excl(), "writer blocks writers");
        l.release_excl();
        assert!(!l.is_any_locked());
    }

    #[test]
    fn writer_excludes_all_mutation() {
        let lock = RwLock::new();
        let shared = AtomicU64::new(0);
        std::thread::scope(|s| {
            // Two writers doing non-atomic RMW.
            for _ in 0..2 {
                let (lock, shared) = (&lock, &shared);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        lock.acquire_excl();
                        let v = shared.load(Ordering::Relaxed);
                        shared.store(v + 1, Ordering::Relaxed);
                        lock.release_excl();
                    }
                });
            }
            // Readers just confirm they never see the lock writer-free
            // while inside a shared section.
            for _ in 0..2 {
                let lock = &lock;
                s.spawn(move || {
                    for _ in 0..5_000 {
                        lock.acquire_shared();
                        assert!(!lock.is_excl_locked());
                        lock.release_shared();
                    }
                });
            }
        });
        assert_eq!(shared.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn writer_preference_starves_no_writer() {
        // Under the simulator: a steady stream of readers must not starve a
        // writer that arrives after them.
        use ale_vtime::{Platform, Sim};
        let lock = RwLock::new();
        let writer_done = AtomicU64::new(0);
        Sim::new(Platform::testbed(), 5).run(|lane| {
            if lane.id() == 4 {
                // The writer arrives "late".
                ale_vtime::tick(Event::LocalWork(500));
                lock.acquire_excl();
                writer_done.store(ale_vtime::now(), Ordering::Relaxed);
                lock.release_excl();
            } else {
                for _ in 0..200 {
                    lock.acquire_shared();
                    ale_vtime::tick(Event::LocalWork(200));
                    lock.release_shared();
                }
            }
        });
        let t = writer_done.load(Ordering::Relaxed);
        assert!(t > 0, "writer never completed");
        // Readers' total serial demand is 4*200*200ns = 160 µs; with writer
        // preference the writer should get in far earlier than the end.
        assert!(t < 100_000, "writer waited too long: {t} ns");
    }
}
