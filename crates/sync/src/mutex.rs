//! A tick-charged data mutex.
//!
//! Simulated lanes must never block on OS primitives (a parked holder would
//! deadlock the simulation — see `ale-vtime`), so shared mutable state
//! inside the ALE runtime is protected by this spin mutex built on
//! [`SpinLock`]: every wait iteration charges virtual time, and the guard
//! gives ordinary RAII access to the data.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

use crate::raw_lock::RawLock;
use crate::spinlock::SpinLock;

/// A `Mutex<T>`-shaped wrapper over the tick-charged [`SpinLock`].
///
/// ```
/// use ale_sync::TickMutex;
/// let m = TickMutex::new(vec![1, 2]);
/// m.lock().push(3);
/// assert_eq!(m.lock().len(), 3);
/// ```
pub struct TickMutex<T> {
    lock: SpinLock,
    data: UnsafeCell<T>,
}

// SAFETY: standard mutex reasoning — exclusive access is guaranteed by the
// spinlock, so only Send is required of T.
unsafe impl<T: Send> Send for TickMutex<T> {}
unsafe impl<T: Send> Sync for TickMutex<T> {}

impl<T> TickMutex<T> {
    pub fn new(data: T) -> Self {
        TickMutex {
            lock: SpinLock::new(),
            data: UnsafeCell::new(data),
        }
    }

    /// Acquire the mutex, spinning (and charging virtual time) if needed.
    ///
    /// Inside a hardware transaction this **aborts the transaction**
    /// (explicit code [`ale_htm::AbortCode::TX_UNFRIENDLY`]): the guarded
    /// data is plain memory, so its mutations could not be rolled back and
    /// the buffered lock word would grant no real exclusion — exactly the
    /// class of operation real HTM aborts on (syscalls, malloc, …). The
    /// enclosing ALE execution simply retries in a non-HTM mode.
    pub fn lock(&self) -> TickMutexGuard<'_, T> {
        if ale_htm::in_txn() {
            ale_htm::explicit_abort(ale_htm::AbortCode::TX_UNFRIENDLY);
        }
        self.lock.acquire();
        TickMutexGuard { mutex: self }
    }

    /// Acquire only if immediately free. Aborts the enclosing hardware
    /// transaction, as [`TickMutex::lock`] does.
    pub fn try_lock(&self) -> Option<TickMutexGuard<'_, T>> {
        if ale_htm::in_txn() {
            ale_htm::explicit_abort(ale_htm::AbortCode::TX_UNFRIENDLY);
        }
        if self.lock.try_acquire() {
            Some(TickMutexGuard { mutex: self })
        } else {
            None
        }
    }

    /// Access through `&mut` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: Default> Default for TickMutex<T> {
    fn default() -> Self {
        TickMutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TickMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("TickMutex").field("data", &*g).finish(),
            None => f.write_str("TickMutex { <locked> }"),
        }
    }
}

/// RAII guard; releases on drop.
pub struct TickMutexGuard<'a, T> {
    mutex: &'a TickMutex<T>,
}

impl<T> Deref for TickMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: we hold the spinlock.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for TickMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: we hold the spinlock exclusively.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for TickMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.lock.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock_and_try() {
        let m = TickMutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "held mutex must refuse try_lock");
        }
        assert_eq!(*m.lock(), 2);
        assert_eq!(*m.try_lock().unwrap(), 2);
    }

    #[test]
    fn get_mut_and_into_inner() {
        let mut m = TickMutex::new(5);
        *m.get_mut() = 7;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn guards_real_threads() {
        let m = TickMutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 40_000);
    }

    #[test]
    fn works_inside_simulated_lanes() {
        use ale_vtime::{Platform, Sim};
        let m = TickMutex::new(Vec::new());
        Sim::new(Platform::testbed(), 8).run(|lane| {
            for _ in 0..100 {
                m.lock().push(lane.id());
                ale_vtime::tick(ale_vtime::Event::LocalWork(20));
            }
        });
        assert_eq!(m.into_inner().len(), 800);
    }
}

#[cfg(test)]
mod tx_tests {
    use super::*;
    use ale_htm::{attempt, AbortCode};
    use ale_vtime::{Platform, Rng};

    #[test]
    fn lock_inside_transaction_aborts_it() {
        // Plain data guarded by the mutex cannot be rolled back and the
        // buffered lock word grants no exclusion — the transaction must
        // abort with the TX_UNFRIENDLY code instead of proceeding unsafely.
        let m = TickMutex::new(vec![1u64]);
        let p = Platform::testbed().htm.unwrap();
        let mut rng = Rng::new(1);
        let r: Result<(), _> = attempt(&p, &mut rng, || {
            m.lock().push(2); // must never execute the push
        });
        assert_eq!(
            r.unwrap_err().code,
            AbortCode::Explicit(AbortCode::TX_UNFRIENDLY)
        );
        assert_eq!(m.lock().len(), 1, "no mutation leaked from the abort");
        let r2: Result<(), _> = attempt(&p, &mut rng, || {
            let _ = m.try_lock();
        });
        assert!(r2.is_err());
    }
}
