//! A test-and-test-and-set spinlock with exponential backoff.
//!
//! This is the workhorse lock of the reproduction — the HashMap
//! microbenchmark's `tblLock` is one of these. Its single word of state
//! lives in an [`HtmCell`] so hardware transactions can subscribe to it
//! (see [`raw_lock`](crate::raw_lock)).

use ale_htm::HtmCell;
use ale_vtime::{tick, Event};

use crate::backoff::Backoff;
use crate::raw_lock::RawLock;

const FREE: u64 = 0;
const HELD: u64 = 1;

/// TTAS spinlock (state word: 0 free, 1 held).
pub struct SpinLock {
    state: HtmCell<u64>,
}

impl SpinLock {
    pub fn new() -> Self {
        SpinLock {
            state: HtmCell::new(FREE),
        }
    }
}

impl Default for SpinLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for SpinLock {
    fn acquire(&self) {
        let mut backoff = Backoff::new();
        loop {
            // Test…
            while self.state.load_consistent() == HELD {
                tick(Event::SharedLoad);
                backoff.spin();
            }
            // …and test-and-set.
            if self.state.compare_exchange(FREE, HELD).is_ok() {
                tick(Event::LockHandoff);
                return;
            }
            backoff.spin();
        }
    }

    fn try_acquire(&self) -> bool {
        if self.state.load_consistent() == HELD {
            tick(Event::SharedLoad);
            return false;
        }
        let ok = self.state.compare_exchange(FREE, HELD).is_ok();
        if ok {
            tick(Event::LockHandoff);
        }
        ok
    }

    fn release(&self) {
        // `try_peek`, not `load_consistent`: an assertion that ticks (or
        // waits) would make debug and release builds simulate different
        // schedules. An unreadable cell proves nothing — skip the check.
        debug_assert!(
            self.state.try_peek().is_none_or(|s| s == HELD),
            "releasing a free lock"
        );
        self.state.set(FREE);
    }

    fn is_locked(&self) -> bool {
        // Inside a transaction this `get` subscribes to the lock word.
        self.state.get() == HELD
    }
}

impl std::fmt::Debug for SpinLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpinLock")
            .field("locked", &self.state.try_peek().map(|s| s == HELD))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn acquire_release_cycle() {
        let l = SpinLock::new();
        assert!(!l.is_locked());
        l.acquire();
        assert!(l.is_locked());
        assert!(!l.try_acquire(), "held lock must refuse try_acquire");
        l.release();
        assert!(!l.is_locked());
        assert!(l.try_acquire());
        l.release();
    }

    #[test]
    fn mutual_exclusion_under_real_threads() {
        let lock = SpinLock::new();
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (lock, counter) = (&lock, &counter);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        lock.acquire();
                        // Non-atomic RMW protected by the lock.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 40_000);
    }

    #[test]
    fn subscription_aborts_transaction_on_acquire() {
        use ale_htm::{attempt, AbortCode};
        use ale_vtime::{Platform, Rng};
        let lock = SpinLock::new();
        let p = Platform::testbed().htm.unwrap();
        let mut rng = Rng::new(1);
        let r: Result<bool, _> = attempt(&p, &mut rng, || {
            let was_locked = lock.is_locked(); // subscribe
            assert!(!was_locked);
            // A concurrent Lock-mode acquisition (another thread, hence a
            // plain non-transactional CAS on the lock word)…
            std::thread::scope(|s| {
                s.spawn(|| lock.acquire());
            });
            // …must doom this transaction at its next read of the word.
            lock.is_locked()
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        assert!(lock.is_locked(), "the other thread's acquisition stands");
    }
}
