//! Sequence locks and the paper's *conflicting-region* refinement.
//!
//! A classic seqlock ([`SeqLock`]) brackets every write with two version
//! increments; optimistic readers retry whenever they observe an odd
//! version or a version change. Applied naively to lock elision this is
//! disastrous (§2): every Lock- or HTM-mode critical section would
//! invalidate all SWOpt readers for its *entire* duration, and the version
//! bump makes concurrent HTM executions conflict with each other.
//!
//! The paper's refinement ([`SeqVersion`], §3.2) gives the programmer
//! explicit `begin_conflicting_action` / `end_conflicting_action` calls to
//! bracket only the code that actually interferes with SWOpt readers —
//! e.g. the `unlink(node)` in `Remove`, not the preceding search. Readers
//! take a snapshot with [`SeqVersion::read`] and re-validate with
//! [`SeqVersion::validate`] before *using* any value read since the last
//! validation.
//!
//! The version word is an [`HtmCell`], which is what makes the three modes
//! compose:
//! * **Lock mode**: increments are plain stores — the version goes odd for
//!   exactly the conflicting region.
//! * **HTM mode**: increments are buffered and publish at commit as one
//!   even step, so other *transactions* only conflict if they touch the
//!   word, and SWOpt readers see the bump exactly when the transaction's
//!   data writes appear. (ALE elides the bump entirely when no SWOpt
//!   reader can be running — `COULD_SWOPT_BE_RUNNING`, §3.3.)
//! * **SWOpt mode**: reads are plain consistent loads.

use std::cell::RefCell;

use ale_htm::HtmCell;
use ale_vtime::{tick, Event};

use crate::watchdog::{self, StallEvent};

thread_local! {
    /// Conflicting regions this thread has opened (outermost first).
    ///
    /// Only non-transactional opens are tracked: an HTM-mode bump is
    /// buffered in the transaction's write set, so an abort (including a
    /// panic unwinding out of the body) discards it and there is nothing to
    /// close. A Lock- or SWOpt-mode open, by contrast, made the version odd
    /// in shared memory — if the critical section unwinds before
    /// `end_conflicting_action`, every SWOpt reader livelocks. The panic
    /// cleanup in `ale-core` uses [`open_region_count`] /
    /// [`close_open_regions`] to restore parity before re-raising.
    static OPEN_REGIONS: RefCell<Vec<*const SeqVersion>> = const { RefCell::new(Vec::new()) };
}

/// Conflicting regions the calling thread currently has open (outside a
/// hardware transaction). A critical-section driver snapshots this before
/// running a body and closes back down to the mark if the body unwinds.
pub fn open_region_count() -> usize {
    OPEN_REGIONS.with(|r| r.borrow().len())
}

/// Close every conflicting region the calling thread opened above `mark`
/// (innermost first), restoring even version parity. Used by panic-cleanup
/// paths; a normal `end_conflicting_action` pops its own entry.
///
/// The caller must ensure the `SeqVersion`s opened above `mark` are still
/// alive — true whenever they protect shared data that outlives the
/// unwinding critical section, which is the only sound way to use them.
pub fn close_open_regions(mark: usize) {
    loop {
        let ptr = OPEN_REGIONS.with(|r| {
            let r = r.borrow();
            if r.len() > mark {
                Some(r[r.len() - 1])
            } else {
                None
            }
        });
        let Some(ptr) = ptr else { break };
        // SAFETY: pushed by `begin_conflicting_action` on this thread; per
        // the contract above, the SeqVersion outlives the unwinding critical
        // section. The matching begin lives in the unwound section — the
        // pair is deliberately split across functions; this IS the cleanup.
        // ale-lint: allow(conflicting-region-balance)
        unsafe { (*ptr).end_conflicting_action() };
    }
}

/// The paper's explicit version number (`tblVer` in the HashMap example).
///
/// Mutators must call `begin/end_conflicting_action` only while holding the
/// associated lock or inside a hardware transaction — the increment itself
/// is not atomic (matching the C++ library, where `tblVer++` relies on the
/// critical section for exclusion).
///
/// ```
/// use ale_sync::SeqVersion;
/// let ver = SeqVersion::new();
/// let snap = ver.read(true);             // reader takes a snapshot
/// assert!(ver.validate(snap));           // nothing happened: still valid
/// ver.begin_conflicting_action();        // writer enters the region…
/// ver.end_conflicting_action();          // …and leaves it
/// assert!(!ver.validate(snap), "the reader must retry");
/// ```
#[derive(Debug, Default)]
pub struct SeqVersion {
    v: HtmCell<u64>,
}

impl SeqVersion {
    pub fn new() -> Self {
        SeqVersion { v: HtmCell::new(0) }
    }

    /// Mark the start of a region that interferes with SWOpt readers.
    #[inline]
    pub fn begin_conflicting_action(&self) {
        let v = self.v.get();
        self.v.set(v.wrapping_add(1));
        if !ale_htm::in_txn() {
            // Track the open region so a panic unwinding out of the
            // critical section can restore parity (see OPEN_REGIONS).
            // HTM-mode bumps are buffered and vanish on abort — untracked.
            OPEN_REGIONS.with(|r| r.borrow_mut().push(self as *const SeqVersion));
        }
        // Chaos point (no-op unless ale-check enables it): stretch the
        // odd-version window so adversarial schedules land inside it.
        crate::chaos::stall();
        // Reorder fence: the bump is published but the caller's data writes
        // have not happened yet — the window a delayed version store would
        // open from the other side.
        crate::reorder::publish_fence();
    }

    /// Mark the end of the conflicting region.
    #[inline]
    pub fn end_conflicting_action(&self) {
        crate::chaos::stall();
        let v = self.v.get();
        self.v.set(v.wrapping_add(1));
        if !ale_htm::in_txn() {
            OPEN_REGIONS.with(|r| {
                let mut r = r.borrow_mut();
                let me = self as *const SeqVersion;
                // Tolerant pop: regions close LIFO in well-formed code, but
                // a cleanup path must not turn imbalance into a panic.
                if let Some(pos) = r.iter().rposition(|&p| p == me) {
                    r.remove(pos);
                }
            });
        }
    }

    /// The paper's `GetVer`: read the version, optionally waiting until it
    /// is even (no conflicting region in progress).
    ///
    /// A reader parked here past the watchdog thresholds (too many version
    /// bumps observed, or too many polls of a version stuck odd) emits one
    /// [`StallEvent::SwOptParked`] and keeps waiting.
    // ale-lint: swopt — the version-snapshot read is the head of every
    // SWOpt path; it must stay transitively pure.
    #[inline]
    #[must_use = "a version snapshot is only useful if validated afterwards"]
    pub fn read(&self, wait_until_even: bool) -> u64 {
        let mut last = None;
        let mut bumps = 0u64;
        let mut spins = 0u64;
        let mut reported = false;
        loop {
            let v = self.v.get();
            tick(Event::SharedLoad);
            if !wait_until_even || v.is_multiple_of(2) {
                return v;
            }
            spins += 1;
            if last.is_some_and(|l| l != v) {
                bumps += 1;
            }
            last = Some(v);
            if !reported {
                let (max_bumps, max_spins) = watchdog::park_thresholds();
                if bumps >= max_bumps || spins >= max_spins {
                    watchdog::emit(StallEvent::SwOptParked { bumps, spins });
                    reported = true;
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Has the version stayed at `snapshot` (i.e. is everything read since
    /// the snapshot still consistent)?
    #[inline]
    #[must_use = "ignoring validation defeats the optimistic read protocol"]
    pub fn validate(&self, snapshot: u64) -> bool {
        // Reorder fence: the caller's optimistic data reads are done but
        // not yet validated — a hoisted validating load would commit them
        // against a stale version; the fence lets adversarial schedules
        // run whole conflicting regions inside this gap.
        crate::reorder::subscribe_fence();
        tick(Event::SharedLoad);
        self.v.get() == snapshot
    }
}

/// A classic seqlock protecting a `Copy` value: optimistic wait-free-ish
/// readers, mutually-exclusive writers. Provided as the background
/// substrate the paper builds on [1, 9].
#[derive(Debug, Default)]
pub struct SeqLock<T: Copy> {
    seq: HtmCell<u64>,
    data: HtmCell<T>,
}

impl<T: Copy> SeqLock<T> {
    pub fn new(value: T) -> Self {
        SeqLock {
            seq: HtmCell::new(0),
            data: HtmCell::new(value),
        }
    }

    /// Optimistically read the protected value (retrying on interference).
    // ale-lint: swopt — classic seqlock read side: loads and validation
    // only, no writes/locks/allocation anywhere in the call chain.
    #[inline]
    pub fn read(&self) -> T {
        loop {
            let s1 = self.seq.get();
            tick(Event::SharedLoad);
            if !s1.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            let v = self.data.load_consistent();
            crate::reorder::subscribe_fence();
            let s2 = self.seq.get();
            if s1 == s2 {
                return v;
            }
        }
    }

    /// Exclusively update the protected value.
    #[inline]
    pub fn write(&self, f: impl FnOnce(T) -> T) {
        // Acquire: even -> odd.
        loop {
            let s = self.seq.get();
            tick(Event::Cas);
            if s.is_multiple_of(2) && self.seq.compare_exchange(s, s + 1).is_ok() {
                break;
            }
            std::hint::spin_loop();
        }
        let old = self.data.load_consistent();
        self.data.set(f(old));
        crate::reorder::publish_fence();
        // Release: odd -> even.
        let s = self.seq.get();
        self.seq.set(s + 1);
    }
}

/// A multi-word published record: `N` [`HtmCell`] data words guarded by one
/// [`SeqVersion`].
///
/// This is the smallest structure where publication ordering is *load
/// bearing*: each cell write is its own shared store (with its own virtual
/// time tick), so an adversarial schedule can park another lane between any
/// two of them. A correctly-ordered [`store`](SeqBuffer::store) brackets the
/// writes with `begin/end_conflicting_action`, so optimistic
/// [`load`](SeqBuffer::load)ers that land mid-write see an odd (or changed)
/// version and retry. Contrast a single `HtmCell<[u64; N]>`, whose store is
/// one indivisible step in the simulator and can never tear.
///
/// Writers must serialise externally (hold the owning lock or run inside a
/// transaction) — same contract as [`SeqVersion`] itself.
#[derive(Debug)]
pub struct SeqBuffer<const N: usize> {
    ver: SeqVersion,
    cells: [HtmCell<u64>; N],
}

impl<const N: usize> Default for SeqBuffer<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> SeqBuffer<N> {
    pub fn new() -> Self {
        SeqBuffer {
            ver: SeqVersion::new(),
            cells: std::array::from_fn(|_| HtmCell::new(0)),
        }
    }

    /// Publish a new `N`-word snapshot (caller holds the owning lock).
    #[inline]
    pub fn store(&self, vals: [u64; N]) {
        if cfg!(feature = "mut-reorder-publish") {
            // MUTATION: the data writes escape *ahead of* the version bump —
            // the classic compiler/CPU reordering the seqlock protocol
            // exists to forbid. Readers that overlap the cell writes
            // validate against a still-even, unchanged version and accept a
            // torn snapshot. ale-check's selftest must catch this.
            for (c, v) in self.cells.iter().zip(vals) {
                c.set(v);
            }
            self.ver.begin_conflicting_action();
            self.ver.end_conflicting_action();
        } else {
            self.ver.begin_conflicting_action();
            for (c, v) in self.cells.iter().zip(vals) {
                c.set(v);
            }
            self.ver.end_conflicting_action();
        }
    }

    /// Optimistically read a consistent `N`-word snapshot, retrying through
    /// concurrent stores.
    // ale-lint: swopt — loads and validation only, like SeqLock::read.
    #[inline]
    pub fn load(&self) -> [u64; N] {
        loop {
            let snap = self.ver.read(true);
            let mut out = [0u64; N];
            for (o, c) in out.iter_mut().zip(self.cells.iter()) {
                *o = c.get();
            }
            // validate() carries the subscribe-side reorder fence.
            if self.ver.validate(snap) {
                return out;
            }
            std::hint::spin_loop();
        }
    }

    /// Optimistically read a consistent snapshot *and* the even version it
    /// was validated against, so the caller can extend the optimistic
    /// window: do further reads that depend on the snapshot, then call
    /// [`SeqVersion::validate`] on [`version`](SeqBuffer::version) with the
    /// returned value to confirm nothing was republished in between.
    ///
    /// This is what the sharded map's lookup path needs — the table-pointer
    /// snapshot must still be current *after* the bucket chains it named
    /// have been traversed.
    // ale-lint: swopt — loads and validation only, like load().
    #[inline]
    pub fn load_versioned(&self) -> ([u64; N], u64) {
        loop {
            let snap = self.ver.read(true);
            let mut out = [0u64; N];
            for (o, c) in out.iter_mut().zip(self.cells.iter()) {
                *o = c.get();
            }
            // validate() carries the subscribe-side reorder fence.
            if self.ver.validate(snap) {
                return (out, snap);
            }
            std::hint::spin_loop();
        }
    }

    /// The guarding version, for callers composing wider SWOpt validation.
    #[inline]
    pub fn version(&self) -> &SeqVersion {
        &self.ver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqversion_bracketing() {
        let v = SeqVersion::new();
        let snap = v.read(true);
        assert_eq!(snap % 2, 0);
        assert!(v.validate(snap));
        v.begin_conflicting_action();
        assert!(!v.validate(snap), "odd version must fail validation");
        assert_eq!(v.read(false) % 2, 1);
        v.end_conflicting_action();
        assert!(!v.validate(snap), "completed action must still invalidate");
        let snap2 = v.read(true);
        assert_eq!(snap2, snap + 2);
    }

    #[test]
    fn seqversion_wait_until_even() {
        use ale_vtime::{Platform, Sim};
        let v = SeqVersion::new();
        Sim::new(Platform::testbed(), 2).run(|lane| {
            if lane.id() == 0 {
                v.begin_conflicting_action();
                ale_vtime::tick(Event::LocalWork(5_000));
                v.end_conflicting_action();
            } else {
                ale_vtime::tick(Event::LocalWork(100)); // arrive mid-action
                let snap = v.read(true);
                assert_eq!(snap % 2, 0);
                assert_eq!(snap, 2, "reader must have waited out the action");
            }
        });
    }

    #[test]
    fn htm_mode_bump_publishes_once() {
        use ale_htm::attempt;
        use ale_vtime::{Platform, Rng};
        let v = SeqVersion::new();
        let p = Platform::testbed().htm.unwrap();
        let r = attempt(&p, &mut Rng::new(1), || {
            v.begin_conflicting_action();
            // Inside the transaction the bump is buffered: a consistent
            // (non-transactional) observer still sees 0.
            assert_eq!(v.v.load_consistent(), 0);
            v.end_conflicting_action();
        });
        assert!(r.is_ok());
        assert_eq!(v.read(false), 2, "both increments publish at commit");
    }

    #[test]
    fn aborted_htm_bump_never_appears() {
        use ale_htm::attempt;
        use ale_vtime::{Platform, Rng};
        let v = SeqVersion::new();
        let p = Platform::testbed().htm.unwrap();
        let r: Result<(), _> = attempt(&p, &mut Rng::new(1), || {
            // Deliberately unbalanced: the explicit abort must roll the
            // odd version back, which is exactly what this test asserts.
            // ale-lint: allow(conflicting-region-balance)
            v.begin_conflicting_action();
            ale_htm::explicit_abort(1);
        });
        assert!(r.is_err());
        assert_eq!(v.read(false), 0, "aborted bump must be invisible");
    }

    #[test]
    fn open_regions_are_tracked_outside_txn() {
        let v = SeqVersion::new();
        let mark = open_region_count();
        v.begin_conflicting_action();
        assert_eq!(open_region_count(), mark + 1);
        v.end_conflicting_action();
        assert_eq!(open_region_count(), mark);
    }

    #[test]
    fn htm_mode_regions_are_not_tracked() {
        use ale_htm::attempt;
        use ale_vtime::{Platform, Rng};
        let v = SeqVersion::new();
        let p = Platform::testbed().htm.unwrap();
        let r = attempt(&p, &mut Rng::new(1), || {
            v.begin_conflicting_action();
            assert_eq!(open_region_count(), 0, "buffered bumps need no cleanup");
            v.end_conflicting_action();
        });
        assert!(r.is_ok());
    }

    #[test]
    fn close_open_regions_restores_parity() {
        let a = SeqVersion::new();
        let b = SeqVersion::new();
        let mark = open_region_count();
        // Leak two nested regions, as a panicking critical section would.
        // ale-lint: allow(conflicting-region-balance)
        a.begin_conflicting_action();
        b.begin_conflicting_action();
        assert_eq!(a.read(false) % 2, 1);
        assert_eq!(b.read(false) % 2, 1);
        close_open_regions(mark);
        assert_eq!(open_region_count(), mark);
        assert_eq!(a.read(false), 2, "parity restored");
        assert_eq!(b.read(false), 2, "parity restored");
        // Closing again is a no-op.
        close_open_regions(mark);
        assert_eq!(a.read(false), 2);
    }

    #[test]
    fn parked_reader_emits_watchdog_event() {
        use ale_vtime::{Platform, Sim};
        use std::sync::{Arc, Mutex};
        let _g = crate::watchdog::test_serial();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        crate::watchdog::set_stall_observer(Arc::new(move |ev| {
            sink.lock().unwrap().push(*ev);
        }));
        crate::watchdog::set_park_thresholds(4, 64);
        let v = SeqVersion::new();
        Sim::new(Platform::testbed(), 2).run(|lane| {
            if lane.id() == 0 {
                // Hold long odd windows so the waiting reader polls far past
                // the spin threshold (and may see several bumps) before an
                // even version finally appears.
                for _ in 0..4 {
                    v.begin_conflicting_action();
                    ale_vtime::tick(Event::LocalWork(20_000));
                    v.end_conflicting_action();
                }
            } else {
                ale_vtime::tick(Event::LocalWork(500));
                let snap = v.read(true);
                assert_eq!(snap % 2, 0);
            }
        });
        crate::watchdog::clear_stall_observer();
        crate::watchdog::set_park_thresholds(0, 0);
        let seen = seen.lock().unwrap();
        assert!(
            seen.iter()
                .any(|ev| matches!(ev, StallEvent::SwOptParked { .. })),
            "parked reader must report: {seen:?}"
        );
    }

    #[test]
    fn seqlock_readers_never_see_torn_pairs() {
        let sl = SeqLock::new((0u64, 0u64));
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let sl = &sl;
                s.spawn(move || {
                    for i in 0..10_000 {
                        let x = w * 100_000 + i;
                        sl.write(|_| (x, x));
                    }
                });
            }
            for _ in 0..2 {
                let sl = &sl;
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let (a, b) = sl.read();
                        assert_eq!(a, b);
                    }
                });
            }
        });
    }

    #[test]
    fn seqbuffer_roundtrips_single_thread() {
        let buf: SeqBuffer<4> = SeqBuffer::new();
        assert_eq!(buf.load(), [0; 4]);
        buf.store([7, 8, 9, 10]);
        assert_eq!(buf.load(), [7, 8, 9, 10]);
        let snap = buf.version().read(true);
        assert!(buf.version().validate(snap));
    }

    #[test]
    fn seqbuffer_load_versioned_extends_the_optimistic_window() {
        let buf: SeqBuffer<2> = SeqBuffer::new();
        buf.store([3, 4]);
        let (vals, snap) = buf.load_versioned();
        assert_eq!(vals, [3, 4]);
        assert_eq!(snap % 2, 0, "snapshot version must be even");
        assert!(
            buf.version().validate(snap),
            "untouched buffer still validates"
        );
        buf.store([5, 6]);
        assert!(
            !buf.version().validate(snap),
            "a republish must invalidate the extended window"
        );
        assert_eq!(buf.load_versioned().0, [5, 6]);
    }

    // Under the mutation the whole point is that snapshots *can* tear, so
    // this assertion only holds for the correctly-ordered store.
    #[cfg(not(feature = "mut-reorder-publish"))]
    #[test]
    fn seqbuffer_snapshots_never_tear_under_adversary() {
        use crate::raw_lock::RawLock;
        use ale_vtime::{Platform, SchedStrategy, Sim};
        let buf: SeqBuffer<3> = SeqBuffer::new();
        let lock = crate::SpinLock::new();
        Sim::new(Platform::testbed(), 3)
            .with_seed(9)
            .with_strategy(SchedStrategy::Reorder { window_ns: 300 })
            .run(|lane| {
                if lane.id() == 0 {
                    for e in 1..=24u64 {
                        lock.acquire();
                        buf.store([e; 3]);
                        lock.release();
                    }
                } else {
                    for _ in 0..64 {
                        let [a, b, c] = buf.load();
                        assert!(a == b && b == c, "torn snapshot: {a} {b} {c}");
                    }
                }
            });
        assert_eq!(buf.load(), [24; 3]);
    }

    #[test]
    fn seqlock_writes_are_exclusive() {
        let sl = SeqLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sl = &sl;
                s.spawn(move || {
                    for _ in 0..5_000 {
                        sl.write(|v| v + 1);
                    }
                });
            }
        });
        assert_eq!(sl.read(), 20_000);
    }
}
