//! Sequence locks and the paper's *conflicting-region* refinement.
//!
//! A classic seqlock ([`SeqLock`]) brackets every write with two version
//! increments; optimistic readers retry whenever they observe an odd
//! version or a version change. Applied naively to lock elision this is
//! disastrous (§2): every Lock- or HTM-mode critical section would
//! invalidate all SWOpt readers for its *entire* duration, and the version
//! bump makes concurrent HTM executions conflict with each other.
//!
//! The paper's refinement ([`SeqVersion`], §3.2) gives the programmer
//! explicit `begin_conflicting_action` / `end_conflicting_action` calls to
//! bracket only the code that actually interferes with SWOpt readers —
//! e.g. the `unlink(node)` in `Remove`, not the preceding search. Readers
//! take a snapshot with [`SeqVersion::read`] and re-validate with
//! [`SeqVersion::validate`] before *using* any value read since the last
//! validation.
//!
//! The version word is an [`HtmCell`], which is what makes the three modes
//! compose:
//! * **Lock mode**: increments are plain stores — the version goes odd for
//!   exactly the conflicting region.
//! * **HTM mode**: increments are buffered and publish at commit as one
//!   even step, so other *transactions* only conflict if they touch the
//!   word, and SWOpt readers see the bump exactly when the transaction's
//!   data writes appear. (ALE elides the bump entirely when no SWOpt
//!   reader can be running — `COULD_SWOPT_BE_RUNNING`, §3.3.)
//! * **SWOpt mode**: reads are plain consistent loads.

use ale_htm::HtmCell;
use ale_vtime::{tick, Event};

/// The paper's explicit version number (`tblVer` in the HashMap example).
///
/// Mutators must call `begin/end_conflicting_action` only while holding the
/// associated lock or inside a hardware transaction — the increment itself
/// is not atomic (matching the C++ library, where `tblVer++` relies on the
/// critical section for exclusion).
///
/// ```
/// use ale_sync::SeqVersion;
/// let ver = SeqVersion::new();
/// let snap = ver.read(true);             // reader takes a snapshot
/// assert!(ver.validate(snap));           // nothing happened: still valid
/// ver.begin_conflicting_action();        // writer enters the region…
/// ver.end_conflicting_action();          // …and leaves it
/// assert!(!ver.validate(snap), "the reader must retry");
/// ```
#[derive(Debug, Default)]
pub struct SeqVersion {
    v: HtmCell<u64>,
}

impl SeqVersion {
    pub fn new() -> Self {
        SeqVersion { v: HtmCell::new(0) }
    }

    /// Mark the start of a region that interferes with SWOpt readers.
    #[inline]
    pub fn begin_conflicting_action(&self) {
        let v = self.v.get();
        self.v.set(v.wrapping_add(1));
        // Chaos point (no-op unless ale-check enables it): stretch the
        // odd-version window so adversarial schedules land inside it.
        crate::chaos::stall();
    }

    /// Mark the end of the conflicting region.
    #[inline]
    pub fn end_conflicting_action(&self) {
        crate::chaos::stall();
        let v = self.v.get();
        self.v.set(v.wrapping_add(1));
    }

    /// The paper's `GetVer`: read the version, optionally waiting until it
    /// is even (no conflicting region in progress).
    #[inline]
    #[must_use = "a version snapshot is only useful if validated afterwards"]
    pub fn read(&self, wait_until_even: bool) -> u64 {
        loop {
            let v = self.v.get();
            tick(Event::SharedLoad);
            if !wait_until_even || v.is_multiple_of(2) {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Has the version stayed at `snapshot` (i.e. is everything read since
    /// the snapshot still consistent)?
    #[inline]
    #[must_use = "ignoring validation defeats the optimistic read protocol"]
    pub fn validate(&self, snapshot: u64) -> bool {
        tick(Event::SharedLoad);
        self.v.get() == snapshot
    }
}

/// A classic seqlock protecting a `Copy` value: optimistic wait-free-ish
/// readers, mutually-exclusive writers. Provided as the background
/// substrate the paper builds on [1, 9].
#[derive(Debug, Default)]
pub struct SeqLock<T: Copy> {
    seq: HtmCell<u64>,
    data: HtmCell<T>,
}

impl<T: Copy> SeqLock<T> {
    pub fn new(value: T) -> Self {
        SeqLock {
            seq: HtmCell::new(0),
            data: HtmCell::new(value),
        }
    }

    /// Optimistically read the protected value (retrying on interference).
    pub fn read(&self) -> T {
        loop {
            let s1 = self.seq.get();
            tick(Event::SharedLoad);
            if !s1.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            let v = self.data.load_consistent();
            let s2 = self.seq.get();
            if s1 == s2 {
                return v;
            }
        }
    }

    /// Exclusively update the protected value.
    pub fn write(&self, f: impl FnOnce(T) -> T) {
        // Acquire: even -> odd.
        loop {
            let s = self.seq.get();
            tick(Event::Cas);
            if s.is_multiple_of(2) && self.seq.compare_exchange(s, s + 1).is_ok() {
                break;
            }
            std::hint::spin_loop();
        }
        let old = self.data.load_consistent();
        self.data.set(f(old));
        // Release: odd -> even.
        let s = self.seq.get();
        self.seq.set(s + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqversion_bracketing() {
        let v = SeqVersion::new();
        let snap = v.read(true);
        assert_eq!(snap % 2, 0);
        assert!(v.validate(snap));
        v.begin_conflicting_action();
        assert!(!v.validate(snap), "odd version must fail validation");
        assert_eq!(v.read(false) % 2, 1);
        v.end_conflicting_action();
        assert!(!v.validate(snap), "completed action must still invalidate");
        let snap2 = v.read(true);
        assert_eq!(snap2, snap + 2);
    }

    #[test]
    fn seqversion_wait_until_even() {
        use ale_vtime::{Platform, Sim};
        let v = SeqVersion::new();
        Sim::new(Platform::testbed(), 2).run(|lane| {
            if lane.id() == 0 {
                v.begin_conflicting_action();
                ale_vtime::tick(Event::LocalWork(5_000));
                v.end_conflicting_action();
            } else {
                ale_vtime::tick(Event::LocalWork(100)); // arrive mid-action
                let snap = v.read(true);
                assert_eq!(snap % 2, 0);
                assert_eq!(snap, 2, "reader must have waited out the action");
            }
        });
    }

    #[test]
    fn htm_mode_bump_publishes_once() {
        use ale_htm::attempt;
        use ale_vtime::{Platform, Rng};
        let v = SeqVersion::new();
        let p = Platform::testbed().htm.unwrap();
        let r = attempt(&p, &mut Rng::new(1), || {
            v.begin_conflicting_action();
            // Inside the transaction the bump is buffered: a consistent
            // (non-transactional) observer still sees 0.
            assert_eq!(v.v.load_consistent(), 0);
            v.end_conflicting_action();
        });
        assert!(r.is_ok());
        assert_eq!(v.read(false), 2, "both increments publish at commit");
    }

    #[test]
    fn aborted_htm_bump_never_appears() {
        use ale_htm::attempt;
        use ale_vtime::{Platform, Rng};
        let v = SeqVersion::new();
        let p = Platform::testbed().htm.unwrap();
        let r: Result<(), _> = attempt(&p, &mut Rng::new(1), || {
            // Deliberately unbalanced: the explicit abort must roll the
            // odd version back, which is exactly what this test asserts.
            // ale-lint: allow(conflicting-region-balance)
            v.begin_conflicting_action();
            ale_htm::explicit_abort(1);
        });
        assert!(r.is_err());
        assert_eq!(v.read(false), 0, "aborted bump must be invisible");
    }

    #[test]
    fn seqlock_readers_never_see_torn_pairs() {
        let sl = SeqLock::new((0u64, 0u64));
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let sl = &sl;
                s.spawn(move || {
                    for i in 0..10_000 {
                        let x = w * 100_000 + i;
                        sl.write(|_| (x, x));
                    }
                });
            }
            for _ in 0..2 {
                let sl = &sl;
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let (a, b) = sl.read();
                        assert_eq!(a, b);
                    }
                });
            }
        });
    }

    #[test]
    fn seqlock_writes_are_exclusive() {
        let sl = SeqLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sl = &sl;
                s.spawn(move || {
                    for _ in 0..5_000 {
                        sl.write(|v| v + 1);
                    }
                });
            }
        });
        assert_eq!(sl.read(), 20_000);
    }
}
