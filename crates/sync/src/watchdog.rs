//! Stall watchdog: structured events for executions that stop making
//! progress, plus the thresholds that define "stalled".
//!
//! Two stall shapes matter to the ALE runtime:
//!
//! * a **parked SWOpt reader** — [`SeqVersion::read`](crate::SeqVersion)
//!   waiting for an even version while writers churn (or a leaked
//!   conflicting region keeps the version odd forever);
//! * a **lock-acquisition timeout** — a deadline-based
//!   [`RawLock::try_acquire_for`](crate::RawLock::try_acquire_for) call
//!   expiring, which usually means the holder died or stalled.
//!
//! Neither is handled here: the watchdog only *reports*, through the same
//! observer pattern as `ale-core::check_hooks`, so `ale-check` can oracle
//! the events and callers can decide on recovery. When no observer is
//! installed each emit point costs one relaxed atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One stall observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallEvent {
    /// A SWOpt reader waiting for an even version observed `bumps` version
    /// changes (across `spins` polls) without the conflicting region
    /// closing for it.
    SwOptParked { bumps: u64, spins: u64 },
    /// A deadline-based lock acquisition gave up after `waited_ns` of
    /// virtual (or real) time.
    LockTimeout { waited_ns: u64 },
}

type Observer = Arc<dyn Fn(&StallEvent) + Send + Sync>;

static ENABLED: AtomicBool = AtomicBool::new(false);
static OBSERVER: Mutex<Option<Observer>> = Mutex::new(None);

/// Version bumps a waiting reader may observe before it counts as parked.
static PARK_BUMP_THRESHOLD: AtomicU64 = AtomicU64::new(DEFAULT_PARK_BUMPS);
/// Polls a waiting reader may make before it counts as parked (catches a
/// version stuck odd, where no bump ever arrives).
static PARK_SPIN_THRESHOLD: AtomicU64 = AtomicU64::new(DEFAULT_PARK_SPINS);

/// Default [`set_park_thresholds`] bump limit.
pub const DEFAULT_PARK_BUMPS: u64 = 64;
/// Default [`set_park_thresholds`] spin limit.
pub const DEFAULT_PARK_SPINS: u64 = 1 << 14;

/// Install a process-wide stall observer (replacing any previous one).
/// Callbacks run on the stalled thread; they must not block or tick.
pub fn set_stall_observer(f: Observer) {
    let mut g = OBSERVER.lock().unwrap();
    *g = Some(f);
    ENABLED.store(true, Ordering::Release);
}

/// Remove the observer.
pub fn clear_stall_observer() {
    ENABLED.store(false, Ordering::Release);
    OBSERVER.lock().unwrap().take();
}

/// Reconfigure when a waiting SWOpt reader counts as parked. Passing 0
/// restores a threshold's default.
pub fn set_park_thresholds(bumps: u64, spins: u64) {
    let b = if bumps == 0 {
        DEFAULT_PARK_BUMPS
    } else {
        bumps
    };
    let s = if spins == 0 {
        DEFAULT_PARK_SPINS
    } else {
        spins
    };
    PARK_BUMP_THRESHOLD.store(b, Ordering::Relaxed);
    PARK_SPIN_THRESHOLD.store(s, Ordering::Relaxed);
}

pub(crate) fn park_thresholds() -> (u64, u64) {
    (
        PARK_BUMP_THRESHOLD.load(Ordering::Relaxed),
        PARK_SPIN_THRESHOLD.load(Ordering::Relaxed),
    )
}

/// Emit an event to the observer, if one is installed, and mirror it into
/// the trace stream as a `StallWarn` record.
#[inline]
pub(crate) fn emit(ev: StallEvent) {
    trace_stall(&ev);
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    emit_slow(&ev);
}

/// `ale_trace::emit` self-gates to one relaxed load + branch, so with
/// tracing disabled (the default) this adds nothing measurable to the
/// stall path — and stalls are off the hot path to begin with.
#[inline]
fn trace_stall(ev: &StallEvent) {
    if !ale_trace::is_enabled() {
        return;
    }
    let te = match *ev {
        StallEvent::SwOptParked { bumps, .. } => ale_trace::TraceEvent::stall_warn(0, 1, bumps),
        StallEvent::LockTimeout { waited_ns } => ale_trace::TraceEvent::stall_warn(0, 2, waited_ns),
    };
    ale_trace::emit(te);
}

#[cold]
fn emit_slow(ev: &StallEvent) {
    let obs = OBSERVER.lock().unwrap().clone();
    if let Some(f) = obs {
        f(ev);
    }
}

/// Watchdog state is process-global; tests that touch it must not overlap.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_receives_and_clears() {
        let _g = test_serial();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        set_stall_observer(Arc::new(move |ev| sink.lock().unwrap().push(*ev)));
        emit(StallEvent::LockTimeout { waited_ns: 5 });
        clear_stall_observer();
        emit(StallEvent::LockTimeout { waited_ns: 9 });
        let seen = seen.lock().unwrap();
        assert_eq!(seen.as_slice(), &[StallEvent::LockTimeout { waited_ns: 5 }]);
    }

    #[test]
    fn thresholds_configure_and_default() {
        let _g = test_serial();
        set_park_thresholds(3, 10);
        assert_eq!(park_thresholds(), (3, 10));
        set_park_thresholds(0, 0);
        assert_eq!(park_thresholds(), (DEFAULT_PARK_BUMPS, DEFAULT_PARK_SPINS));
    }
}
