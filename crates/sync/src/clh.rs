//! A CLH queue lock: scalable FIFO mutual exclusion with local spinning.
//!
//! Each waiter spins on its predecessor's node rather than on a shared
//! word, so handoff traffic is point-to-point. Included as a third mutex
//! flavour behind [`RawLock`]: the paper stresses that ALE works with "any
//! type of lock" through its `LockAPI`, and queue locks are the
//! interesting case — their state is a *pointer*, not a flag, so the
//! elision subscription reads both the tail pointer and the tail node's
//! flag (either changing invalidates subscribed transactions).
//!
//! Memory management follows the textbook recycling scheme (a releasing
//! thread adopts its predecessor's node); all nodes are owned by the
//! lock's arena and live until the lock drops, so stale readers are always
//! memory-safe.

use std::cell::RefCell;
use std::collections::HashMap;

use ale_htm::HtmCell;
use ale_vtime::{tick, Event};

use crate::backoff::Backoff;
use crate::mutex::TickMutex;
use crate::raw_lock::RawLock;

struct Node {
    /// 1 while the owning thread holds or waits for the lock.
    locked: HtmCell<u64>,
}

thread_local! {
    /// This thread's current node per lock (keyed by lock address).
    static MY_NODE: RefCell<HashMap<usize, (*const Node, *const Node)>> =
        RefCell::new(HashMap::new());
}

/// CLH queue lock.
pub struct ClhLock {
    /// Address of the current tail node (never 0 after construction).
    tail: HtmCell<u64>,
    /// Owns every node ever created for this lock. The boxes are
    /// load-bearing: node *addresses* are shared via `tail` and TLS, so
    /// they must stay stable while the vector grows.
    #[allow(clippy::vec_box)]
    arena: TickMutex<Vec<Box<Node>>>,
}

// SAFETY: nodes are only mutated through HtmCells; the arena keeps them
// alive for the lock's lifetime; the TLS map stores per-thread, per-lock
// pointers that never dangle while the lock exists.
unsafe impl Send for ClhLock {}
unsafe impl Sync for ClhLock {}

impl ClhLock {
    pub fn new() -> Self {
        let dummy = Box::new(Node {
            locked: HtmCell::new(0),
        });
        let addr = &*dummy as *const Node as u64;
        ClhLock {
            tail: HtmCell::new(addr),
            arena: TickMutex::new(vec![dummy]),
        }
    }

    fn key(&self) -> usize {
        self as *const ClhLock as usize
    }

    fn fresh_node(&self) -> *const Node {
        let node = Box::new(Node {
            locked: HtmCell::new(0),
        });
        let ptr = &*node as *const Node;
        self.arena.lock().push(node);
        ptr
    }

    /// This thread's enqueue node for this lock (allocating on first use).
    fn my_node(&self) -> *const Node {
        let key = self.key();
        MY_NODE.with(|m| {
            if let Some(&(node, _)) = m.borrow().get(&key) {
                return node;
            }
            let node = self.fresh_node();
            m.borrow_mut().insert(key, (node, std::ptr::null()));
            node
        })
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for ClhLock {
    fn acquire(&self) {
        let key = self.key();
        let node_ptr = self.my_node();
        // SAFETY: arena-owned, alive for the lock's lifetime.
        let node = unsafe { &*node_ptr };
        node.locked.set(1);
        // Swap ourselves in as the tail.
        let pred_addr = loop {
            let t = self.tail.get();
            if self.tail.compare_exchange(t, node_ptr as u64).is_ok() {
                break t;
            }
            tick(Event::Cas);
        };
        // Spin locally on the predecessor's flag.
        let pred = pred_addr as *const Node;
        let mut backoff = Backoff::with_max_exp(4);
        // SAFETY: as above.
        while unsafe { &*pred }.locked.load_consistent() == 1 {
            tick(Event::SharedLoad);
            backoff.spin();
        }
        tick(Event::LockHandoff);
        // Adopt the predecessor's node for our next acquisition.
        MY_NODE.with(|m| {
            m.borrow_mut().insert(key, (pred, node_ptr));
        });
    }

    fn try_acquire(&self) -> bool {
        // CLH has no natural try; emulate with the is_locked fast test +
        // a full acquire only when observably free *and* uncontended.
        if self.is_locked() {
            return false;
        }
        // Racy but safe: a full acquire may briefly wait if we lost a race.
        self.acquire();
        true
    }

    fn release(&self) {
        let key = self.key();
        let held = MY_NODE.with(|m| m.borrow().get(&key).map(|&(_, h)| h));
        let held = held.expect("release without acquire on this thread");
        assert!(!held.is_null(), "release without acquire on this thread");
        // SAFETY: arena-owned.
        unsafe { &*held }.locked.set(0);
        MY_NODE.with(|m| {
            if let Some(entry) = m.borrow_mut().get_mut(&key) {
                entry.1 = std::ptr::null();
            }
        });
    }

    fn is_locked(&self) -> bool {
        // Subscription-friendly: a transaction reads the tail pointer and
        // the tail node's flag — an enqueue changes the former, a release
        // the latter.
        let t = self.tail.get() as *const Node;
        // SAFETY: tail always points into the arena.
        unsafe { &*t }.locked.get() == 1
    }
}

impl std::fmt::Debug for ClhLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClhLock")
            .field("locked", &self.is_locked())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn acquire_release_cycles() {
        let l = ClhLock::new();
        assert!(!l.is_locked());
        for _ in 0..100 {
            l.acquire();
            assert!(l.is_locked());
            l.release();
            assert!(!l.is_locked());
        }
        assert!(l.try_acquire());
        assert!(l.is_locked());
        l.release();
    }

    #[test]
    fn mutual_exclusion_under_real_threads() {
        let lock = ClhLock::new();
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (lock, counter) = (&lock, &counter);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        lock.acquire();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 20_000);
    }

    #[test]
    fn fifo_grant_order_under_simulator() {
        use ale_vtime::{Platform, Sim};
        use std::sync::Mutex;
        let lock = ClhLock::new();
        let grants = Mutex::new(Vec::new());
        Sim::new(Platform::testbed(), 4).run(|lane| {
            ale_vtime::tick(Event::LocalWork(100 * (lane.id() as u64 + 1)));
            lock.acquire();
            grants.lock().unwrap().push(lane.id());
            ale_vtime::tick(Event::LocalWork(1_000));
            lock.release();
        });
        assert_eq!(grants.into_inner().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn works_as_an_ale_lock() {
        // The whole point: ALE elides any RawLock, including a queue lock.
        use ale_core_shim::*;
        mod ale_core_shim {
            pub use ale_htm::{attempt, AbortCode};
            pub use ale_vtime::{Platform, Rng};
        }
        let lock = ClhLock::new();
        let p = Platform::testbed().htm.unwrap();
        let mut rng = Rng::new(2);
        // Subscribe inside a transaction, then have another thread acquire:
        // the transaction must abort.
        let r: Result<bool, _> = attempt(&p, &mut rng, || {
            let free = !lock.is_locked();
            assert!(free);
            std::thread::scope(|s| {
                s.spawn(|| lock.acquire());
            });
            lock.is_locked()
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        assert!(lock.is_locked());
    }
}
