//! A ticket lock: FIFO-fair mutual exclusion.
//!
//! Included because lock choice interacts with elision policies (a fair
//! lock's handoff convoy makes lock elision look better under contention);
//! the benchmark harness can swap it in for the spinlock via [`RawLock`].

use ale_htm::HtmCell;
use ale_vtime::{tick, Event};

use crate::backoff::Backoff;
use crate::raw_lock::RawLock;

/// State packs (next_ticket: u32, now_serving: u32) into one cell.
pub struct TicketLock {
    state: HtmCell<(u32, u32)>,
}

impl TicketLock {
    pub fn new() -> Self {
        TicketLock {
            state: HtmCell::new((0, 0)),
        }
    }
}

impl Default for TicketLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for TicketLock {
    fn acquire(&self) {
        // Take a ticket.
        let my_ticket = loop {
            let (next, serving) = self.state.load_consistent();
            if self
                .state
                .compare_exchange((next, serving), (next.wrapping_add(1), serving))
                .is_ok()
            {
                break next;
            }
            tick(Event::Cas);
        };
        // Wait for our turn.
        let mut backoff = Backoff::with_max_exp(6);
        loop {
            let (_, serving) = self.state.load_consistent();
            tick(Event::SharedLoad);
            if serving == my_ticket {
                tick(Event::LockHandoff);
                return;
            }
            backoff.spin();
        }
    }

    fn try_acquire(&self) -> bool {
        let (next, serving) = self.state.load_consistent();
        if next != serving {
            tick(Event::SharedLoad);
            return false;
        }
        let ok = self
            .state
            .compare_exchange((next, serving), (next.wrapping_add(1), serving))
            .is_ok();
        if ok {
            tick(Event::LockHandoff);
        }
        ok
    }

    fn release(&self) {
        loop {
            let (next, serving) = self.state.load_consistent();
            debug_assert_ne!(next, serving, "releasing a free ticket lock");
            if self
                .state
                .compare_exchange((next, serving), (next, serving.wrapping_add(1)))
                .is_ok()
            {
                return;
            }
            tick(Event::Cas);
        }
    }

    fn is_locked(&self) -> bool {
        let (next, serving) = self.state.get(); // subscribes inside a tx
        next != serving
    }
}

impl std::fmt::Debug for TicketLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (next, serving) = self.state.try_peek().unwrap_or((0, 0));
        f.debug_struct("TicketLock")
            .field("next", &next)
            .field("serving", &serving)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn acquire_release_and_try() {
        let l = TicketLock::new();
        assert!(!l.is_locked());
        l.acquire();
        assert!(l.is_locked());
        assert!(!l.try_acquire());
        l.release();
        assert!(l.try_acquire());
        l.release();
        assert!(!l.is_locked());
    }

    #[test]
    fn mutual_exclusion_under_real_threads() {
        let lock = TicketLock::new();
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (lock, counter) = (&lock, &counter);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        lock.acquire();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.release();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 20_000);
    }

    #[test]
    fn fifo_order_under_simulator() {
        // Under the deterministic simulator, grant order must match ticket
        // (request) order.
        use ale_vtime::{Platform, Sim};
        use std::sync::Mutex;
        let lock = TicketLock::new();
        let grants = Mutex::new(Vec::new());
        Sim::new(Platform::testbed(), 4).run(|lane| {
            // Stagger requests so lane i requests i-th.
            ale_vtime::tick(Event::LocalWork(100 * (lane.id() as u64 + 1)));
            lock.acquire();
            grants.lock().unwrap().push(lane.id());
            ale_vtime::tick(Event::LocalWork(1000));
            lock.release();
        });
        assert_eq!(grants.into_inner().unwrap(), vec![0, 1, 2, 3]);
    }
}
