//! # ale-sync — synchronisation substrates for the ALE reproduction
//!
//! Everything the ALE library (SPAA 2014) builds on, implemented from
//! scratch per the paper and its cited references:
//!
//! * [`RawLock`]/[`RawRwLock`] — the lock interface ALE elides. Lock state
//!   lives in [`HtmCell`](ale_htm::HtmCell)s so that a transaction checking
//!   `is_locked()` *subscribes* to the lock word: any Lock-mode acquisition
//!   invalidates concurrently-running transactions (the TLE soundness
//!   requirement).
//! * [`SpinLock`], [`TicketLock`] — mutual-exclusion locks.
//! * [`RwLock`] — a writer-preference readers-writer lock with try-variants
//!   (Kyoto Cabinet's locking structure; Courtois et al. [2]).
//! * [`SeqLock`]/[`SeqVersion`] — sequence locks [1, 9] and the paper's
//!   enhanced variant: explicit `begin/end_conflicting_action` bracketing
//!   so SWOpt readers only retry when a *conflicting region* runs, not for
//!   whole critical sections.
//! * [`Snzi`] — scalable non-zero indicator (Ellen et al., PODC 2007 [6]),
//!   used by the adaptive policy's grouping mechanism.
//! * [`StatCounter`] — the BFP probabilistic statistics counter
//!   (Dice, Lev, Moir, SPAA 2013 [4]).
//! * [`SampledTime`] — sampled (~3 %) timing statistics with CAS updates
//!   and exponential backoff (§4.3 of the paper).
//!
//! All spin paths charge virtual time through [`ale_vtime::tick`], so the
//! same code runs on real threads and under the deterministic simulator.

pub mod backoff;
pub mod chaos;
pub mod clh;
pub mod counters;
pub mod mutex;
pub mod padded;
pub mod raw_lock;
pub mod reorder;
pub mod rwlock;
pub mod seqlock;
pub mod snzi;
pub mod spinlock;
pub mod ticket;
pub mod timing;
pub mod watchdog;

pub use backoff::Backoff;
pub use clh::ClhLock;
pub use counters::StatCounter;
pub use mutex::{TickMutex, TickMutexGuard};
pub use padded::CachePadded;
pub use raw_lock::{RawLock, RawRwLock};
pub use rwlock::RwLock;
pub use seqlock::{close_open_regions, open_region_count, SeqBuffer, SeqLock, SeqVersion};
pub use snzi::{Snzi, SnziGuard};
pub use spinlock::SpinLock;
pub use ticket::TicketLock;
pub use timing::SampledTime;
pub use watchdog::{clear_stall_observer, set_park_thresholds, set_stall_observer, StallEvent};
