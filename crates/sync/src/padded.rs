//! Cache-line padding for contended-adjacent state.
//!
//! The fast-path false-sharing audit (DESIGN.md §14) found the hot
//! per-granule words — the packed plan word read on every critical-section
//! entry, the stat counters written on every exit, and the sharded map's
//! per-stripe version words — sharing cache lines with neighbours that
//! other threads write. [`CachePadded`] aligns a value to 128 bytes so it
//! owns its line *and* the line the adjacent-line prefetcher pairs with it
//! (the crossbeam convention on x86-64); on the simulated platforms the
//! cost model charges per-event, so padding is free under `ale-vtime` and
//! only changes real-hardware layout.
//!
//! Padding is applied at *struct* boundaries (a granule's stats block, one
//! plan word, one version stripe), never per-counter — padding every
//! `StatCounter` would multiply the footprint 16× for lines that are
//! always written together anyway.

use std::ops::{Deref, DerefMut};

/// Aligns `T` to 128 bytes so it shares a cache line (and its prefetch
/// pair) with nothing else.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_values_own_their_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        let mut p = CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }

    #[test]
    fn arrays_of_padded_elements_do_not_share_lines() {
        let v: Vec<CachePadded<u32>> = (0..4).map(CachePadded::new).collect();
        let a = &*v[0] as *const u32 as usize;
        let b = &*v[1] as *const u32 as usize;
        assert!(b - a >= 128, "adjacent elements {a:#x}/{b:#x} share a line");
    }
}
