//! The lock interfaces ALE elides.
//!
//! The paper's `LockAPI` is "a structure that identifies methods used to
//! acquire and release this lock, as well as an `is_locked` method that is
//! used to check and monitor a lock when an associated critical section is
//! executed in HTM mode" (§3.2) — i.e. ALE works with *any* lock that can
//! answer "are you held?". In this reproduction that is the [`RawLock`]
//! trait; readers-writer locks get the richer [`RawRwLock`].
//!
//! **Subscription contract.** `is_locked` implementations must read the
//! lock state through an [`HtmCell`](ale_htm::HtmCell) (or otherwise via a
//! transactional read) so that, when called inside a hardware transaction,
//! the lock word enters the transaction's read set. A later Lock-mode
//! acquisition then aborts the transaction — without this, Transactional
//! Lock Elision is unsound. All locks in this crate satisfy the contract.

use ale_vtime::now;

use crate::backoff::Backoff;
use crate::watchdog::{self, StallEvent};

/// Backoff cap for the deadline-acquisition spin loops: small enough that
/// the deadline is checked often, large enough not to hammer the lock word.
const DEADLINE_SPIN_MAX_EXP: u32 = 6;

/// Spin on `try_it` with backoff until it succeeds or `budget_ns` of
/// (virtual) time passes; emits a [`StallEvent::LockTimeout`] on expiry.
fn spin_until_deadline(budget_ns: u64, mut try_it: impl FnMut() -> bool) -> bool {
    if try_it() {
        return true;
    }
    let start = now();
    let deadline = start.saturating_add(budget_ns);
    let mut backoff = Backoff::with_max_exp(DEADLINE_SPIN_MAX_EXP);
    loop {
        backoff.spin();
        if try_it() {
            return true;
        }
        let t = now();
        if t >= deadline {
            watchdog::emit(StallEvent::LockTimeout {
                waited_ns: t.saturating_sub(start),
            });
            return false;
        }
    }
}

/// A mutual-exclusion lock ALE can elide.
pub trait RawLock: Send + Sync {
    /// Block (spin) until the lock is held by the caller.
    fn acquire(&self);

    /// Acquire if immediately available.
    fn try_acquire(&self) -> bool;

    /// Release a held lock.
    fn release(&self);

    /// Is the lock currently held (by anyone)?
    ///
    /// Inside a hardware transaction this read *subscribes* the transaction
    /// to the lock word (see the module docs).
    fn is_locked(&self) -> bool;

    /// Deadline-based acquisition: spin (with bounded backoff, charged to
    /// virtual time) until acquired or `budget_ns` has elapsed. Expiry
    /// emits a [`StallEvent::LockTimeout`] for the stall watchdog and
    /// returns `false`; the caller decides whether to report, retry, or
    /// escalate.
    fn try_acquire_for(&self, budget_ns: u64) -> bool {
        spin_until_deadline(budget_ns, || self.try_acquire())
    }
}

/// A readers-writer lock ALE can elide.
///
/// Used for the Kyoto Cabinet experiments, where the database's top-level
/// RW-lock guards an outer critical section and per-slot locks guard nested
/// ones.
pub trait RawRwLock: Send + Sync {
    fn acquire_shared(&self);
    fn try_acquire_shared(&self) -> bool;
    fn release_shared(&self);

    fn acquire_excl(&self);
    fn try_acquire_excl(&self) -> bool;
    fn release_excl(&self);

    /// Is a writer holding the lock? (What an elided *reader* must check.)
    fn is_excl_locked(&self) -> bool;

    /// Is anyone (reader or writer) holding the lock? (What an elided
    /// *writer* must check.)
    fn is_any_locked(&self) -> bool;

    /// Deadline-based shared acquisition (see [`RawLock::try_acquire_for`]).
    fn try_acquire_shared_for(&self, budget_ns: u64) -> bool {
        spin_until_deadline(budget_ns, || self.try_acquire_shared())
    }

    /// Deadline-based exclusive acquisition (see
    /// [`RawLock::try_acquire_for`]).
    fn try_acquire_excl_for(&self, budget_ns: u64) -> bool {
        spin_until_deadline(budget_ns, || self.try_acquire_excl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spinlock::SpinLock;
    use ale_vtime::{Event, Platform, Sim};
    use std::sync::{Arc, Mutex};

    #[test]
    fn deadline_acquisition_succeeds_when_free() {
        let l = SpinLock::new();
        assert!(l.try_acquire_for(1_000));
        l.release();
    }

    #[test]
    fn deadline_acquisition_times_out_and_reports() {
        let _g = crate::watchdog::test_serial();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        crate::watchdog::set_stall_observer(Arc::new(move |ev| {
            sink.lock().unwrap().push(*ev);
        }));
        let l = SpinLock::new();
        let got = Sim::new(Platform::testbed(), 2).run(|lane| {
            if lane.id() == 0 {
                l.acquire();
                ale_vtime::tick(Event::LocalWork(500_000)); // stalled holder
                l.release();
                true
            } else {
                ale_vtime::tick(Event::LocalWork(100));
                l.try_acquire_for(10_000)
            }
        });
        crate::watchdog::clear_stall_observer();
        assert!(!got.results[1], "acquisition must give up at the deadline");
        let seen = seen.lock().unwrap();
        assert!(
            seen.iter().any(
                |ev| matches!(ev, StallEvent::LockTimeout { waited_ns } if *waited_ns >= 10_000)
            ),
            "timeout must be reported: {seen:?}"
        );
    }
}
