//! The lock interfaces ALE elides.
//!
//! The paper's `LockAPI` is "a structure that identifies methods used to
//! acquire and release this lock, as well as an `is_locked` method that is
//! used to check and monitor a lock when an associated critical section is
//! executed in HTM mode" (§3.2) — i.e. ALE works with *any* lock that can
//! answer "are you held?". In this reproduction that is the [`RawLock`]
//! trait; readers-writer locks get the richer [`RawRwLock`].
//!
//! **Subscription contract.** `is_locked` implementations must read the
//! lock state through an [`HtmCell`](ale_htm::HtmCell) (or otherwise via a
//! transactional read) so that, when called inside a hardware transaction,
//! the lock word enters the transaction's read set. A later Lock-mode
//! acquisition then aborts the transaction — without this, Transactional
//! Lock Elision is unsound. All locks in this crate satisfy the contract.

/// A mutual-exclusion lock ALE can elide.
pub trait RawLock: Send + Sync {
    /// Block (spin) until the lock is held by the caller.
    fn acquire(&self);

    /// Acquire if immediately available.
    fn try_acquire(&self) -> bool;

    /// Release a held lock.
    fn release(&self);

    /// Is the lock currently held (by anyone)?
    ///
    /// Inside a hardware transaction this read *subscribes* the transaction
    /// to the lock word (see the module docs).
    fn is_locked(&self) -> bool;
}

/// A readers-writer lock ALE can elide.
///
/// Used for the Kyoto Cabinet experiments, where the database's top-level
/// RW-lock guards an outer critical section and per-slot locks guard nested
/// ones.
pub trait RawRwLock: Send + Sync {
    fn acquire_shared(&self);
    fn try_acquire_shared(&self) -> bool;
    fn release_shared(&self);

    fn acquire_excl(&self);
    fn try_acquire_excl(&self) -> bool;
    fn release_excl(&self);

    /// Is a writer holding the lock? (What an elided *reader* must check.)
    fn is_excl_locked(&self) -> bool;

    /// Is anyone (reader or writer) holding the lock? (What an elided
    /// *writer* must check.)
    fn is_any_locked(&self) -> bool;
}
