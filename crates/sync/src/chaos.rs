//! Chaos mode: virtual-time stalls that widen race windows.
//!
//! The dynamic-checking harness (`ale-check`) needs to drive the runtime
//! through the narrow windows where elision bugs hide — a `SeqVersion`
//! sitting odd between `begin`/`end_conflicting_action`, a SNZI node in its
//! transient ½ state. Real hardware widens those windows with cache misses
//! and preemption; the simulator widens them deterministically by charging
//! extra virtual time ([`Event::Raw`]) at the hook points, so adversarial
//! schedulers get many more decision points inside the window.
//!
//! Chaos is process-global and off by default (one relaxed load on the hot
//! path). It only stretches *virtual* time: with chaos on, the same seed
//! and schedule still replay bit-identically.

use std::sync::atomic::{AtomicU64, Ordering};

use ale_vtime::{tick, Event};

static DELAY_NS: AtomicU64 = AtomicU64::new(0);

/// Charge every chaos point `delay_ns` of virtual time (0 disables).
pub fn set_publication_delay(delay_ns: u64) {
    DELAY_NS.store(delay_ns, Ordering::Release);
}

/// The configured per-point delay.
pub fn publication_delay() -> u64 {
    DELAY_NS.load(Ordering::Acquire)
}

/// A chaos point: stall for the configured virtual-time delay.
#[inline]
pub(crate) fn stall() {
    let d = DELAY_NS.load(Ordering::Relaxed);
    if d > 0 {
        tick(Event::Raw(d));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqlock::SeqVersion;
    use ale_vtime::{Platform, Sim};

    #[test]
    fn delay_stretches_conflicting_regions_in_virtual_time() {
        let span = |delay| {
            set_publication_delay(delay);
            let r = Sim::new(Platform::testbed(), 1).run(|_| {
                let v = SeqVersion::new();
                let t0 = ale_vtime::now();
                v.begin_conflicting_action();
                v.end_conflicting_action();
                ale_vtime::now() - t0
            });
            set_publication_delay(0);
            r.results[0]
        };
        let base = span(0);
        let slow = span(500);
        assert!(
            slow >= base + 1000,
            "two chaos points at 500 ns must stretch the region: {base} -> {slow}"
        );
    }

    #[test]
    fn zero_delay_is_free() {
        set_publication_delay(0);
        assert_eq!(publication_delay(), 0);
        stall(); // no lane installed: must not panic or tick
    }
}
