//! Sampled timing statistics (§4.3 of the paper).
//!
//! "For time intervals, we measure the time period of interest for
//! approximately 3 % of events, and use CAS to update summary variables.
//! Exponential backoff is employed to mitigate any remaining contention."
//!
//! A [`SampledTime`] does exactly that: `begin()` decides (per-thread
//! deterministic coin, ~3 %) whether this event is measured; if so the
//! caller passes the token to `record()`, which CAS-updates the running
//! (count, sum) with backoff. Averages are unreliable until a few hundred
//! samples accumulate — the paper says as much — so [`SampledTime::avg_ns`]
//! exposes the sample count for consumers (the adaptive policy waits for
//! enough executions before trusting the numbers).

use std::sync::atomic::{AtomicU64, Ordering};

use ale_vtime::{now, tick, Event, Rng};

use crate::backoff::Backoff;

/// Sampling rate: 1 in 32 ≈ 3 %.
const SAMPLE_SHIFT: u32 = 5;

/// Token proving a measurement was started; passed back to
/// [`SampledTime::record`].
#[derive(Debug, Clone, Copy)]
pub struct TimeToken {
    start_ns: u64,
}

/// A sampled mean-duration accumulator.
#[derive(Debug, Default)]
pub struct SampledTime {
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl SampledTime {
    pub fn new() -> Self {
        SampledTime {
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Start a measurement with the ~3 % sampling coin. Returns `None` for
    /// unsampled events (the overwhelmingly common, free case).
    #[inline]
    pub fn begin(&self, rng: &mut Rng) -> Option<TimeToken> {
        if rng.next_u32() & ((1 << SAMPLE_SHIFT) - 1) != 0 {
            return None;
        }
        Some(TimeToken { start_ns: now() })
    }

    /// Start a measurement unconditionally (learning phases sample 100 %).
    #[inline]
    pub fn begin_always(&self) -> TimeToken {
        TimeToken { start_ns: now() }
    }

    /// Finish a measurement and fold it into the summary.
    pub fn record(&self, token: TimeToken) {
        let elapsed = now().saturating_sub(token.start_ns);
        self.add_duration(elapsed);
    }

    /// Fold an externally measured duration into the summary.
    pub fn add_duration(&self, elapsed_ns: u64) {
        // CAS + exponential backoff per the paper. Two words are updated
        // independently; the tiny transient skew between them is noise
        // relative to the sampling error.
        let mut backoff = Backoff::with_max_exp(6);
        loop {
            let s = self.sum_ns.load(Ordering::Relaxed);
            tick(Event::Cas);
            if self
                .sum_ns
                .compare_exchange_weak(
                    s,
                    s.saturating_add(elapsed_ns),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                break;
            }
            backoff.spin();
        }
        backoff.reset();
        loop {
            let c = self.count.load(Ordering::Relaxed);
            tick(Event::Cas);
            if self
                .count
                .compare_exchange_weak(c, c + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
            backoff.spin();
        }
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Total recorded nanoseconds (sum over samples). With ~3 % sampling
    /// this estimates 3 % of the true total; within a learning phase
    /// (100 % measurement) it is the exact time spent.
    pub fn total_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Acquire)
    }

    /// Mean duration over recorded samples, or `None` if below
    /// `min_samples` (callers pick their confidence bar).
    pub fn avg_ns(&self, min_samples: u64) -> Option<u64> {
        let c = self.count.load(Ordering::Acquire);
        if c < min_samples.max(1) {
            return None;
        }
        Some(self.sum_ns.load(Ordering::Acquire) / c)
    }

    /// Reset between learning phases.
    pub fn reset(&self) {
        self.sum_ns.store(0, Ordering::Release);
        self.count.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_known_durations() {
        let t = SampledTime::new();
        t.add_duration(100);
        t.add_duration(200);
        t.add_duration(300);
        assert_eq!(t.samples(), 3);
        assert_eq!(t.avg_ns(1), Some(200));
        assert_eq!(t.avg_ns(4), None, "below the confidence bar");
        t.reset();
        assert_eq!(t.samples(), 0);
        assert_eq!(t.avg_ns(1), None);
    }

    #[test]
    fn sampling_rate_is_about_three_percent() {
        let t = SampledTime::new();
        let mut rng = Rng::new(5);
        let sampled = (0..100_000).filter(|_| t.begin(&mut rng).is_some()).count();
        let rate = sampled as f64 / 100_000.0;
        assert!((0.025..0.04).contains(&rate), "rate {rate}");
    }

    #[test]
    fn measures_virtual_time_under_simulator() {
        use ale_vtime::{Platform, Sim};
        let t = SampledTime::new();
        Sim::new(Platform::testbed(), 1).run(|_| {
            let tok = t.begin_always();
            ale_vtime::tick(Event::LocalWork(5_000));
            t.record(tok);
        });
        let avg = t.avg_ns(1).unwrap();
        assert!(
            (5_000..6_000).contains(&avg),
            "avg {avg} should be ≈ 5000 ns of virtual time"
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let t = SampledTime::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        t.add_duration(10);
                    }
                });
            }
        });
        assert_eq!(t.samples(), 40_000);
        assert_eq!(t.avg_ns(1), Some(10));
    }
}
