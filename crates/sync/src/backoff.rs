//! Bounded exponential backoff, charged to virtual time.
//!
//! Used wherever the paper mentions backoff: contended CAS retries in the
//! statistics machinery (§4.3), lock acquisition spins, and HTM retry
//! pacing. Each `spin()` burns real CPU briefly *and* charges the
//! platform's `Backoff(exp)` cost, so contention shows up in simulated
//! throughput exactly as it would in wall-clock time.

use ale_vtime::{tick, Event};

/// Exponentially growing busy-wait.
#[derive(Debug, Clone)]
pub struct Backoff {
    exp: u32,
    max_exp: u32,
}

impl Backoff {
    /// Default cap: 2^10 backoff units.
    pub const DEFAULT_MAX_EXP: u32 = 10;

    pub fn new() -> Self {
        Backoff {
            exp: 0,
            max_exp: Self::DEFAULT_MAX_EXP,
        }
    }

    /// A backoff that never exceeds `2^max_exp` units per spin.
    pub fn with_max_exp(max_exp: u32) -> Self {
        Backoff { exp: 0, max_exp }
    }

    /// Current exponent (grows by one per `spin`, saturating).
    pub fn exp(&self) -> u32 {
        self.exp
    }

    /// Wait once, then increase the delay for next time.
    #[inline]
    pub fn spin(&mut self) {
        tick(Event::Backoff(self.exp));
        if ale_vtime::is_simulated() {
            // Virtual cost above is what matters; a token pause suffices.
            std::hint::spin_loop();
        } else if self.exp >= 3 {
            // Real threads on few (possibly one) CPUs: give the lock holder
            // a chance to run instead of burning the whole timeslice.
            std::thread::yield_now();
        } else {
            for _ in 0..(1u32 << self.exp) {
                std::hint::spin_loop();
            }
        }
        if self.exp < self.max_exp {
            self.exp += 1;
        }
    }

    /// Forget accumulated delay (call after a successful operation).
    #[inline]
    pub fn reset(&mut self) {
        self.exp = 0;
    }

    /// Has the backoff reached its cap? Callers often switch strategies
    /// (e.g. stop eliding and take the lock) at this point.
    pub fn is_saturated(&self) -> bool {
        self.exp >= self.max_exp
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_vtime::{Platform, Sim};

    #[test]
    fn exponent_grows_and_saturates() {
        let mut b = Backoff::with_max_exp(3);
        assert_eq!(b.exp(), 0);
        assert!(!b.is_saturated());
        for _ in 0..10 {
            b.spin();
        }
        assert_eq!(b.exp(), 3);
        assert!(b.is_saturated());
        b.reset();
        assert_eq!(b.exp(), 0);
    }

    #[test]
    fn charges_growing_virtual_time() {
        let report = Sim::new(Platform::testbed(), 1).run(|_| {
            let mut b = Backoff::new();
            let t0 = ale_vtime::now();
            b.spin();
            let t1 = ale_vtime::now();
            b.spin();
            let t2 = ale_vtime::now();
            (t1 - t0, t2 - t1)
        });
        let (first, second) = report.results[0];
        assert!(second > first, "backoff must grow: {first} then {second}");
    }
}
