//! Bounded exponential backoff, charged to virtual time.
//!
//! Used wherever the paper mentions backoff: contended CAS retries in the
//! statistics machinery (§4.3), lock acquisition spins, and HTM retry
//! pacing. Each `spin()` burns real CPU briefly *and* charges the
//! platform's `Backoff(exp)` cost, so contention shows up in simulated
//! throughput exactly as it would in wall-clock time.

use ale_vtime::{tick, Event, Rng};

/// Exponentially growing busy-wait, optionally jittered.
///
/// Without jitter every contended thread walks the same exponent sequence
/// 0, 1, 2, … and so retries in lockstep — exactly the synchronised
/// reconvergence that fuels HTM abort storms. [`Backoff::with_jitter`]
/// attaches a decorrelated-jitter delay stream (next delay drawn uniformly
/// from `[1, 3 × previous]`, capped at `2^max_exp` units) seeded from a
/// deterministic [`Rng`], so threads with different seeds desynchronise
/// while staying reproducible under the simulator.
#[derive(Debug, Clone)]
pub struct Backoff {
    exp: u32,
    max_exp: u32,
    /// Decorrelated-jitter state: (last delay in backoff units, RNG).
    jitter: Option<(u64, Rng)>,
}

impl Backoff {
    /// Default cap: 2^10 backoff units.
    pub const DEFAULT_MAX_EXP: u32 = 10;

    pub fn new() -> Self {
        Backoff {
            exp: 0,
            max_exp: Self::DEFAULT_MAX_EXP,
            jitter: None,
        }
    }

    /// A backoff that never exceeds `2^max_exp` units per spin.
    pub fn with_max_exp(max_exp: u32) -> Self {
        Backoff {
            exp: 0,
            max_exp,
            jitter: None,
        }
    }

    /// Attach a decorrelated-jitter stream. The cap (`2^max_exp`) and the
    /// [`Backoff::is_saturated`] switch-strategies signal keep their
    /// un-jittered meaning; only the per-spin delay is randomised.
    #[must_use]
    pub fn with_jitter(mut self, rng: Rng) -> Self {
        self.jitter = Some((1, rng));
        self
    }

    /// Current exponent (grows by one per `spin`, saturating).
    pub fn exp(&self) -> u32 {
        self.exp
    }

    /// Wait once, then increase the delay for next time.
    #[inline]
    pub fn spin(&mut self) {
        let charged = match &mut self.jitter {
            Some((prev, rng)) => {
                let cap = 1u64 << self.max_exp;
                let hi = prev.saturating_mul(3).min(cap);
                let units = 1 + rng.gen_range(hi);
                *prev = units;
                // Charge the nearest power-of-two exponent (floor log2).
                63 - (units | 1).leading_zeros()
            }
            None => self.exp,
        };
        tick(Event::Backoff(charged));
        if ale_vtime::is_simulated() {
            // Virtual cost above is what matters; a token pause suffices.
            std::hint::spin_loop();
        } else if charged >= 3 {
            // Real threads on few (possibly one) CPUs: give the lock holder
            // a chance to run instead of burning the whole timeslice.
            std::thread::yield_now();
        } else {
            for _ in 0..(1u32 << charged) {
                std::hint::spin_loop();
            }
        }
        if self.exp < self.max_exp {
            self.exp += 1;
        }
    }

    /// Forget accumulated delay (call after a successful operation).
    #[inline]
    pub fn reset(&mut self) {
        self.exp = 0;
        if let Some((prev, _)) = &mut self.jitter {
            *prev = 1;
        }
    }

    /// Has the backoff reached its cap? Callers often switch strategies
    /// (e.g. stop eliding and take the lock) at this point.
    pub fn is_saturated(&self) -> bool {
        self.exp >= self.max_exp
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_vtime::{Platform, Sim};

    #[test]
    fn exponent_grows_and_saturates() {
        let mut b = Backoff::with_max_exp(3);
        assert_eq!(b.exp(), 0);
        assert!(!b.is_saturated());
        for _ in 0..10 {
            b.spin();
        }
        assert_eq!(b.exp(), 3);
        assert!(b.is_saturated());
        b.reset();
        assert_eq!(b.exp(), 0);
    }

    #[test]
    fn jittered_streams_decorrelate_but_stay_deterministic() {
        let charge = |seed: u64| {
            let report = Sim::new(Platform::testbed(), 1).run(move |_| {
                let mut b = Backoff::with_max_exp(6).with_jitter(Rng::new(seed));
                let t0 = ale_vtime::now();
                for _ in 0..12 {
                    b.spin();
                }
                ale_vtime::now() - t0
            });
            report.results[0]
        };
        assert_eq!(charge(1), charge(1), "same seed must replay identically");
        assert_ne!(charge(1), charge(2), "different seeds must desynchronise");
    }

    #[test]
    fn jitter_keeps_saturation_semantics() {
        let mut b = Backoff::with_max_exp(4).with_jitter(Rng::new(7));
        for _ in 0..10 {
            b.spin();
        }
        assert!(b.is_saturated());
        b.reset();
        assert_eq!(b.exp(), 0);
        assert!(!b.is_saturated());
    }

    #[test]
    fn charges_growing_virtual_time() {
        let report = Sim::new(Platform::testbed(), 1).run(|_| {
            let mut b = Backoff::new();
            let t0 = ale_vtime::now();
            b.spin();
            let t1 = ale_vtime::now();
            b.spin();
            let t2 = ale_vtime::now();
            (t1 - t0, t2 - t1)
        });
        let (first, second) = report.results[0];
        assert!(second > first, "backoff must grow: {first} then {second}");
    }
}
