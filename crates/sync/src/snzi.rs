//! SNZI — Scalable Non-Zero Indicator (Ellen, Lev, Luchangco, Moir;
//! PODC 2007).
//!
//! A SNZI answers one question cheaply — "is the surplus of arrivals over
//! departures nonzero?" — while spreading the arrive/depart traffic over a
//! tree so no single cache line is hammered. The ALE adaptive policy's
//! *grouping mechanism* (§4.2) uses one per lock: SWOpt executions that hit
//! interference arrive before retrying; executions that could conflict
//! with them consult [`Snzi::query`] and defer until it reads false.
//!
//! Implementation notes: hierarchical nodes hold `(count, version)` where
//! the count is in *half* units — the transient ½ state is how a thread
//! that turned a node nonzero publishes "parent arrival in progress" so
//! helpers neither miss nor double-count it. The version number breaks the
//! ABA on 0 → ½ → 0 cycles. The root is the plain-counter variant (query
//! is a single load of one word); the tree above it is what removes the
//! contention.

use std::sync::atomic::{AtomicU64, Ordering};

use ale_vtime::{tick, Event};

const HALF: u64 = 1; // counts are in half units; 2 == one whole arrival

#[inline]
fn pack(c: u64, v: u64) -> u64 {
    (c << 32) | (v & 0xFFFF_FFFF)
}

#[inline]
fn unpack(x: u64) -> (u64, u64) {
    (x >> 32, x & 0xFFFF_FFFF)
}

struct Node {
    x: AtomicU64,
}

/// A fixed-shape SNZI tree.
///
/// ```
/// use ale_sync::Snzi;
/// let snzi = Snzi::new(3);
/// assert!(!snzi.query());
/// let a = snzi.arrive_at(0);
/// let b = snzi.arrive_at(7);
/// assert!(snzi.query());
/// drop(a);
/// assert!(snzi.query(), "one arrival still outstanding");
/// drop(b);
/// assert!(!snzi.query());
/// ```
pub struct Snzi {
    root: AtomicU64,
    nodes: Vec<Node>,
    leaf_start: usize,
    leaves: usize,
}

impl Snzi {
    /// A SNZI with `levels` tree levels below the root
    /// (`2^(levels-1)` leaves). `levels == 0` gives a bare counter.
    pub fn new(levels: u32) -> Self {
        let total = (1usize << levels) - 1;
        let leaves = if levels == 0 {
            0
        } else {
            1usize << (levels - 1)
        };
        Snzi {
            root: AtomicU64::new(0),
            nodes: (0..total)
                .map(|_| Node {
                    x: AtomicU64::new(0),
                })
                .collect(),
            leaf_start: total - leaves,
            leaves,
        }
    }

    /// Arrive, increasing the surplus. Departs automatically when the
    /// returned guard drops. The leaf is chosen from the simulated lane id
    /// (or the OS thread) so co-located threads share a leaf.
    pub fn arrive(&self) -> SnziGuard<'_> {
        let hint = ale_vtime::lane_id().unwrap_or_else(|| {
            // Hash the thread id for real-thread runs.
            use std::hash::{Hash, Hasher};
            let mut h = std::hash::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish() as usize
        });
        self.arrive_at(hint)
    }

    /// Arrive at the leaf selected by `hint % leaves`.
    pub fn arrive_at(&self, hint: usize) -> SnziGuard<'_> {
        if self.leaves == 0 {
            self.root_arrive();
            return SnziGuard {
                snzi: self,
                leaf: usize::MAX,
            };
        }
        let leaf = self.leaf_start + (hint % self.leaves);
        self.node_arrive(leaf);
        SnziGuard { snzi: self, leaf }
    }

    /// Is the surplus nonzero? One shared load.
    #[inline]
    pub fn query(&self) -> bool {
        // Subscription-side reorder fence: a deferral decision made on this
        // load can go stale the instant another lane arrives; the fence lets
        // adversarial schedules stretch that gap.
        crate::reorder::subscribe_fence();
        tick(Event::SharedLoad);
        self.root.load(Ordering::Acquire) != 0
    }

    fn root_arrive(&self) {
        tick(Event::Cas);
        self.root.fetch_add(1, Ordering::AcqRel);
    }

    fn root_depart(&self) {
        tick(Event::Cas);
        let prev = self.root.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "SNZI root depart below zero");
    }

    fn parent_arrive(&self, i: usize) {
        if i == 0 {
            self.root_arrive();
        } else {
            self.node_arrive((i - 1) / 2);
        }
    }

    fn parent_depart(&self, i: usize) {
        if i == 0 {
            self.root_depart();
        } else {
            self.node_depart((i - 1) / 2);
        }
    }

    fn node_arrive(&self, i: usize) {
        let node = &self.nodes[i];
        let mut succ = false;
        let mut undo = 0u32;
        while !succ {
            let xw = node.x.load(Ordering::Acquire);
            tick(Event::SharedLoad);
            let (c, v) = unpack(xw);
            // Three cases of the PODC'07 algorithm (counts in halves).
            let mut cur = (c, v);
            if cur.0 >= 2 * HALF {
                tick(Event::Cas);
                if node
                    .x
                    .compare_exchange(
                        pack(cur.0, cur.1),
                        pack(cur.0 + 2 * HALF, cur.1),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    succ = true;
                }
                continue;
            }
            if cur.0 == 0 {
                tick(Event::Cas);
                if node
                    .x
                    .compare_exchange(
                        pack(0, cur.1),
                        pack(HALF, cur.1 + 1),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    succ = true;
                    cur = (HALF, cur.1 + 1);
                } else {
                    continue;
                }
            }
            if cur.0 == HALF {
                // Someone (possibly us) is mid-transition: help by arriving
                // at the parent, then try to finalise ½ -> 1.
                // Chaos point: stretch the transient ½ window under ale-check.
                crate::chaos::stall();
                // Self-test mutation (`mut-snzi-skip-half`): forgetting the
                // parent arrival on the ½ transition makes the root
                // under-count — ale-check's SNZI oracle must catch this.
                if !cfg!(feature = "mut-snzi-skip-half") {
                    self.parent_arrive(i);
                }
                tick(Event::Cas);
                if node
                    .x
                    .compare_exchange(
                        pack(HALF, cur.1),
                        pack(2 * HALF, cur.1),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_err()
                {
                    undo += 1;
                }
            }
        }
        while undo > 0 {
            if !cfg!(feature = "mut-snzi-skip-half") {
                self.parent_depart(i);
            }
            undo -= 1;
        }
    }

    fn node_depart(&self, i: usize) {
        let node = &self.nodes[i];
        loop {
            let xw = node.x.load(Ordering::Acquire);
            tick(Event::SharedLoad);
            let (c, v) = unpack(xw);
            debug_assert!(c >= 2 * HALF, "departing a node with no whole arrivals");
            tick(Event::Cas);
            if node
                .x
                .compare_exchange(
                    pack(c, v),
                    pack(c - 2 * HALF, v),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                if c == 2 * HALF {
                    self.parent_depart(i);
                }
                return;
            }
        }
    }

    fn depart_leaf(&self, leaf: usize) {
        if leaf == usize::MAX {
            self.root_depart();
        } else {
            self.node_depart(leaf);
        }
    }
}

impl std::fmt::Debug for Snzi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snzi")
            .field("root", &self.root.load(Ordering::Relaxed))
            .field("leaves", &self.leaves)
            .finish()
    }
}

/// RAII handle for one arrival; departs on drop.
pub struct SnziGuard<'a> {
    snzi: &'a Snzi,
    leaf: usize,
}

impl Drop for SnziGuard<'_> {
    fn drop(&mut self) {
        self.snzi.depart_leaf(self.leaf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_counter_root() {
        let s = Snzi::new(0);
        assert!(!s.query());
        let g1 = s.arrive_at(0);
        assert!(s.query());
        let g2 = s.arrive_at(5);
        drop(g1);
        assert!(s.query());
        drop(g2);
        assert!(!s.query());
    }

    #[test]
    fn tree_arrivals_toggle_indicator() {
        for levels in 1..=4 {
            let s = Snzi::new(levels);
            assert!(!s.query(), "levels={levels}");
            let guards: Vec<_> = (0..10).map(|i| s.arrive_at(i)).collect();
            assert!(s.query(), "levels={levels}");
            drop(guards);
            assert!(!s.query(), "levels={levels}: surplus must return to zero");
        }
    }

    #[test]
    fn same_leaf_arrivals_are_absorbed() {
        // Two arrivals at one leaf should produce exactly one root arrival.
        let s = Snzi::new(3);
        let g1 = s.arrive_at(2);
        let root_after_first = s.root.load(Ordering::Relaxed);
        let g2 = s.arrive_at(2);
        assert_eq!(
            s.root.load(Ordering::Relaxed),
            root_after_first,
            "second same-leaf arrival must not touch the root"
        );
        drop(g1);
        assert!(s.query());
        drop(g2);
        assert!(!s.query());
    }

    #[test]
    fn concurrent_arrive_depart_never_loses_surplus() {
        let s = Snzi::new(3);
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..2_000 {
                        let g = s.arrive_at(t * 31 + i);
                        assert!(s.query(), "indicator must be set while inside");
                        drop(g);
                    }
                });
            }
        });
        assert!(!s.query(), "all departed: indicator must clear");
        for n in &s.nodes {
            let (c, _) = unpack(n.x.load(Ordering::Relaxed));
            assert_eq!(c, 0, "all node counts must return to zero");
        }
    }

    #[test]
    fn nested_guards_interleave_correctly() {
        let s = Snzi::new(2);
        let a = s.arrive_at(0);
        let b = s.arrive_at(1);
        let c = s.arrive_at(0);
        drop(b);
        assert!(s.query());
        drop(a);
        assert!(s.query());
        drop(c);
        assert!(!s.query());
    }

    #[test]
    fn query_under_simulator_sees_peers() {
        use ale_vtime::{Platform, Sim};
        use std::sync::atomic::AtomicBool;
        let s = Snzi::new(3);
        let observed = AtomicBool::new(false);
        Sim::new(Platform::testbed(), 4).run(|lane| {
            if lane.id() == 0 {
                let _g = s.arrive();
                ale_vtime::tick(Event::LocalWork(10_000));
            } else {
                ale_vtime::tick(Event::LocalWork(1_000));
                if s.query() {
                    observed.store(true, Ordering::Relaxed);
                }
            }
        });
        assert!(
            observed.load(Ordering::Relaxed),
            "peers must observe the arrival"
        );
        assert!(!s.query());
    }
}
