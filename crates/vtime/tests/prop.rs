//! Property-based tests for the PRNG, cost model, and simulator.

use ale_vtime::{Event, Platform, PlatformKind, Rng, Sim};
use proptest::prelude::*;

proptest! {
    /// gen_range never escapes its bound and is seed-deterministic.
    #[test]
    fn gen_range_in_bounds(seed in any::<u64>(), n in 1u64..u64::MAX, draws in 1usize..50) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..draws {
            let va = a.gen_range(n);
            prop_assert!(va < n);
            prop_assert_eq!(va, b.gen_range(n));
        }
    }

    /// gen_f64 stays in the unit interval.
    #[test]
    fn gen_f64_unit(seed in any::<u64>()) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            let f = r.gen_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// Shuffle is always a permutation.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), len in 0usize..200) {
        let mut r = Rng::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// Forked streams are deterministic functions of (parent state, tag).
    #[test]
    fn fork_is_deterministic(seed in any::<u64>(), tag in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        let mut fa = a.fork(tag);
        let mut fb = b.fork(tag);
        for _ in 0..10 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    /// Every event has a finite cost on every platform, and LocalWork
    /// scales with the platform's speed factor.
    #[test]
    fn cost_model_total(ns in 0u64..1_000_000) {
        for kind in [PlatformKind::Rock, PlatformKind::Haswell, PlatformKind::T2, PlatformKind::Testbed] {
            let p = kind.platform();
            let c = p.costs.cost(Event::LocalWork(ns));
            prop_assert_eq!(c, ns * p.costs.local_work_permille / 1000);
            for ev in [Event::Cas, Event::SharedLoad, Event::SharedStore, Event::LockHandoff] {
                prop_assert!(p.costs.cost(ev) > 0);
            }
        }
    }

    /// Independent lanes overlap perfectly: makespan equals the largest
    /// single-lane demand, for any lane count and (small) step counts.
    #[test]
    fn independent_lanes_overlap(lanes in 1usize..9, steps in 1u64..40, cost in 1u64..500) {
        let report = Sim::new(Platform::testbed(), lanes).run(|_| {
            for _ in 0..steps {
                ale_vtime::tick(Event::LocalWork(cost));
            }
        });
        prop_assert_eq!(report.makespan_ns, steps * cost);
    }

    /// Simulation makespan is deterministic for any seed and lane count,
    /// even with cross-lane interaction through an atomic.
    #[test]
    fn sim_deterministic(lanes in 1usize..7, seed in any::<u64>()) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let run = || {
            let shared = AtomicU64::new(0);
            Sim::new(Platform::testbed(), lanes).with_seed(seed).run(|lane| {
                let mut r = lane.rng().clone();
                for _ in 0..30 {
                    ale_vtime::tick(Event::LocalWork(1 + r.gen_range(100)));
                    shared.fetch_add(1, Ordering::Relaxed);
                }
            }).makespan_ns
        };
        prop_assert_eq!(run(), run());
    }
}
