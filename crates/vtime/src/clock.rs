//! Thread clocks and the `tick` instrumentation entry point.
//!
//! Code anywhere in the ALE stack calls [`tick`] at synchronisation-relevant
//! points (a CAS, a shared load, the start of a hardware transaction, …).
//! Under a simulation this advances the calling lane's virtual clock by the
//! event's cost in the active [`Platform`](crate::Platform) cost model and
//! may hand the CPU to another lane; outside a simulation it is free.
//!
//! The rule that keeps the simulator live is simple: **every spin-loop
//! iteration must tick.** All primitives in `ale-sync`, `ale-htm`, and
//! `ale-core` obey it, so a lane that is "spinning on" a lock held by a
//! parked lane keeps advancing its own clock and the scheduler eventually
//! runs the holder.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use crate::sched::LaneCtx;

/// An abstract, platform-independent cost event.
///
/// Call sites describe *what* they did; the active platform's
/// [`CostModel`](crate::CostModel) decides how many virtual nanoseconds it
/// costs. This keeps instrumentation portable across the simulated Rock,
/// Haswell, and T2 machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A compare-and-swap (or other atomic read-modify-write) on shared data.
    Cas,
    /// A load of potentially-shared data (average of hit/miss under load).
    SharedLoad,
    /// A store to potentially-shared data.
    SharedStore,
    /// Thread-private computation costing the given number of nanoseconds.
    LocalWork(u64),
    /// Entering a hardware transaction.
    HtmBegin,
    /// Committing a hardware transaction.
    HtmCommit,
    /// Aborting a hardware transaction (rollback + restart overhead).
    HtmAbort,
    /// Handing a contended lock from one thread to another.
    LockHandoff,
    /// One unit of exponential backoff at the given exponent (cost is
    /// `backoff_unit << exp`, saturating).
    Backoff(u32),
    /// Raw virtual nanoseconds, already platform-scaled by the caller.
    Raw(u64),
}

thread_local! {
    static CURRENT_LANE: RefCell<Option<Rc<LaneCtx>>> = const { RefCell::new(None) };
}

/// Process-relative real-time origin used when not simulating.
fn real_now_ns() -> u64 {
    use std::sync::OnceLock;
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = *ORIGIN.get_or_init(Instant::now);
    origin.elapsed().as_nanos() as u64
}

pub(crate) fn install_lane(ctx: Rc<LaneCtx>) {
    CURRENT_LANE.with(|c| *c.borrow_mut() = Some(ctx));
}

pub(crate) fn clear_lane() {
    CURRENT_LANE.with(|c| *c.borrow_mut() = None);
}

pub(crate) fn with_lane<R>(f: impl FnOnce(Option<&Rc<LaneCtx>>) -> R) -> R {
    CURRENT_LANE.with(|c| f(c.borrow().as_ref()))
}

/// Current time in nanoseconds: the lane's virtual clock under simulation,
/// a process-monotonic real clock otherwise.
///
/// All timing statistics in `ale-sync`/`ale-core` are built on this, so the
/// adaptive policy's learning works identically in both worlds.
#[inline]
pub fn now() -> u64 {
    with_lane(|lane| match lane {
        Some(l) => l.clock(),
        None => real_now_ns(),
    })
}

/// True when the calling thread is a simulated lane.
#[inline]
pub fn is_simulated() -> bool {
    with_lane(|lane| lane.is_some())
}

/// The calling lane's id, or `None` outside a simulation.
#[inline]
pub fn lane_id() -> Option<usize> {
    with_lane(|lane| lane.map(|l| l.id()))
}

/// Record one cost event. Advances the virtual clock (and possibly yields to
/// another lane) under simulation; a no-op otherwise.
#[inline]
pub fn tick(ev: Event) {
    with_lane(|lane| {
        if let Some(l) = lane {
            l.tick(ev);
        }
    });
}

/// Record `n` repetitions of an event in one call (cheaper than looping).
#[inline]
pub fn tick_n(ev: Event, n: u64) {
    with_lane(|lane| {
        if let Some(l) = lane {
            l.tick_n(ev, n);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_mode_is_inert_but_monotonic() {
        assert!(!is_simulated());
        assert_eq!(lane_id(), None);
        let a = now();
        tick(Event::Cas);
        tick_n(Event::SharedLoad, 1000);
        let b = now();
        assert!(b >= a, "real clock must be monotonic");
    }

    #[test]
    fn real_now_advances() {
        let a = now();
        // Burn a little real time.
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = now();
        assert!(b > a);
    }
}
