//! # ale-vtime — virtual time for the ALE reproduction
//!
//! The ALE paper (SPAA 2014) evaluates its adaptive lock-elision library on
//! 16-core (Rock), 8-thread (Haswell) and 128-thread (SPARC T2+) machines.
//! This reproduction runs on whatever host it is given — possibly a single
//! CPU — so the evaluation executes the *real* library code on **simulated
//! hardware threads** under a deterministic, conservative discrete-event
//! scheduler:
//!
//! * Each simulated thread ("lane") is an OS thread, but at most one lane
//!   runs at a time. Every synchronisation-relevant operation in the stack
//!   calls [`tick`] with an abstract [`Event`]; the lane's *virtual clock*
//!   advances by the event's cost under the active [`Platform`] cost model.
//! * The scheduler always runs the lane with the lowest virtual clock
//!   (ties broken by lane id), which yields a sequentially consistent
//!   interleaving equivalent to a parallel execution in virtual time.
//! * Throughput for a run is `completed operations ÷ virtual makespan`,
//!   which is how every figure in the paper is regenerated.
//!
//! Outside a simulation ([`is_simulated`] is false) the same entry points
//! fall back to real time: [`now`] reads a monotonic nanosecond clock and
//! [`tick`] is a no-op, so the library runs unchanged on real threads.
//!
//! The crate also hosts the [`Platform`] profiles (`rock`, `haswell`, `t2`)
//! that parameterise both the cost model and the emulated HTM in
//! `ale-htm`, and a small deterministic PRNG ([`rng::Rng`]) used everywhere
//! randomness is needed so that regenerated figures are bit-identical.
//!
//! ## Example
//!
//! ```
//! use ale_vtime::{Platform, Sim, Event};
//!
//! let platform = Platform::haswell();
//! let report = Sim::new(platform, 4).run(|lane| {
//!     for _ in 0..100 {
//!         ale_vtime::tick(Event::LocalWork(50));
//!         ale_vtime::tick(Event::Cas);
//!     }
//!     lane.id()
//! });
//! assert_eq!(report.results, vec![0, 1, 2, 3]);
//! // Four lanes doing independent work overlap perfectly in virtual time.
//! assert_eq!(report.makespan_ns, report.lane_clocks.iter().copied().max().unwrap());
//! ```

pub mod clock;
pub mod platform;
pub mod rng;
pub mod sched;
pub mod zipf;

pub use clock::{is_simulated, lane_id, now, tick, tick_n, Event};
pub use platform::{CostModel, HtmProfile, Platform, PlatformKind};
pub use rng::Rng;
pub use sched::{Lane, SchedStrategy, Sim, SimReport};
pub use zipf::Zipf;
