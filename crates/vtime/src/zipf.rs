//! Zipfian key-distribution sampler (the YCSB/Gray construction).
//!
//! Lock-elision behaviour is extremely sensitive to key skew: under a
//! Zipfian workload a few hot keys absorb most operations, so HTM
//! transactions conflict on the same nodes and SWOpt readers are
//! invalidated far more often than uniform sampling suggests. The
//! benchmark harness offers this sampler alongside uniform keys.
//!
//! Constants are precomputed at construction (`zeta(n)` is O(n), done
//! once); sampling is O(1) per draw and deterministic under [`Rng`].

use crate::rng::Rng;

/// A Zipfian distribution over `0..n` where rank 0 is the hottest key.
///
/// ```
/// use ale_vtime::{Rng, Zipf};
/// let z = Zipf::new(1000, 0.99);
/// let mut rng = Rng::new(7);
/// let k = z.sample(&mut rng);
/// assert!(k < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
    /// Inverse-CDF table, used only for `theta ≥ 1` where the Gray
    /// closed-form approximation breaks down (`alpha = 1/(1-theta)`
    /// diverges). `cdf[r]` is the cumulative unnormalised mass of ranks
    /// `0..=r`; empty for the closed-form branch.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipfian sampler over `0..n` with skew `theta ≥ 0`.
    /// `theta ≈ 0.99` is the classic YCSB default (heavy skew);
    /// `theta → 0` approaches uniform. `theta ≥ 1` (e.g. the 1.1 used by
    /// the sharded-map skew benchmarks) switches to an exact
    /// inverse-CDF table — O(n) memory, O(log n) per draw.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "Zipf needs a nonempty key space");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be finite and non-negative"
        );
        let zetan = Self::zeta(n, theta);
        if theta >= 1.0 {
            let mut cdf = Vec::with_capacity(n as usize);
            let mut acc = 0.0;
            for i in 1..=n {
                acc += 1.0 / (i as f64).powf(theta);
                cdf.push(acc);
            }
            return Zipf {
                n,
                theta,
                alpha: 0.0,
                zetan,
                eta: 0.0,
                half_pow_theta: 0.0,
                cdf,
            };
        }
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            half_pow_theta: 0.5f64.powf(theta),
            cdf: Vec::new(),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of keys.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a key (rank 0 = hottest).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if !self.cdf.is_empty() {
            let rank = self.cdf.partition_point(|&c| c <= uz) as u64;
            return rank.min(self.n - 1);
        }
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(n: u64, theta: f64, draws: usize) -> Vec<u64> {
        let z = Zipf::new(n, theta);
        let mut rng = Rng::new(42);
        let mut freq = vec![0u64; n as usize];
        for _ in 0..draws {
            freq[z.sample(&mut rng) as usize] += 1;
        }
        freq
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
        // Degenerate single-key space.
        let z1 = Zipf::new(1, 0.5);
        assert_eq!(z1.sample(&mut rng), 0);
    }

    #[test]
    fn hot_keys_dominate_at_high_theta() {
        let freq = frequencies(1000, 0.99, 100_000);
        let hot: u64 = freq[..10].iter().sum();
        // Analytically, P(rank ≤ 10) = ζ(10, 0.99)/ζ(1000, 0.99) ≈ 0.39.
        assert!(
            (0.33..0.46).contains(&(hot as f64 / 100_000.0)),
            "top-1% of keys should draw ~39% of accesses, got {hot}"
        );
        // Monotone-ish head: rank 0 beats rank 10 beats rank 100.
        assert!(freq[0] > freq[10]);
        assert!(freq[10] > freq[100]);
    }

    #[test]
    fn low_theta_approaches_uniform() {
        let freq = frequencies(100, 0.05, 200_000);
        let hot: u64 = freq[..10].iter().sum();
        let share = hot as f64 / 200_000.0;
        assert!(
            (0.08..0.25).contains(&share),
            "top-10% at theta≈0 should take ~10-20% of draws, got {share:.3}"
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let z = Zipf::new(500, 0.9);
        let mut a = Rng::new(3);
        let mut b = Rng::new(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn supra_unit_theta_uses_the_table_branch() {
        let z = Zipf::new(100, 1.1);
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
        // theta=1.1 over 100 keys: P(rank 0) = 1/ζ(100, 1.1) ≈ 0.24.
        let freq = frequencies(100, 1.1, 100_000);
        let share = freq[0] as f64 / 100_000.0;
        assert!(
            (0.20..0.29).contains(&share),
            "rank 0 at theta=1.1 should draw ~24% of accesses, got {share:.3}"
        );
        assert!(freq[0] > freq[10]);
        assert!(freq[10] > freq[50].max(1));
        // Degenerate single-key space on the table branch too.
        let z1 = Zipf::new(1, 1.5);
        assert_eq!(z1.sample(&mut rng), 0);
    }

    #[test]
    fn table_branch_is_deterministic() {
        let z = Zipf::new(500, 1.1);
        let mut a = Rng::new(3);
        let mut b = Rng::new(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_negative_theta() {
        let _ = Zipf::new(10, -0.5);
    }
}
