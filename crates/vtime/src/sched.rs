//! The deterministic lowest-clock-first lane scheduler.
//!
//! A [`Sim`] runs `n` *lanes* (simulated hardware threads). Each lane is a
//! real OS thread, but the scheduler admits exactly one at a time: the lane
//! with the lowest virtual clock (ties broken by lane id). A running lane
//! executes freely — without touching the scheduler lock — until its clock
//! passes the lowest clock of any parked lane, at which point it hands the
//! CPU over. This is conservative discrete-event simulation: the committed
//! event order is identical to a parallel execution in virtual time, and is
//! bit-for-bit reproducible.
//!
//! Lanes must never block on OS primitives (they would park the whole
//! simulation); every wait in the ALE stack is a spin that calls
//! [`tick`](crate::tick) each iteration, so waiting lanes keep advancing
//! their clocks and the scheduler keeps rotating.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex};

use crate::clock::{clear_lane, install_lane, Event};
use crate::platform::Platform;
use crate::rng::Rng;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Parked, waiting to be scheduled.
    Runnable,
    /// The single lane currently on the (real) CPU.
    Running,
    /// Finished its body.
    Done,
}

struct SchedState {
    clocks: Vec<u64>,
    status: Vec<Status>,
    live: usize,
    switches: u64,
}

pub(crate) struct SimShared {
    state: Mutex<SchedState>,
    cvs: Vec<Condvar>,
    platform: Platform,
    slack_ns: u64,
}

/// Per-lane context installed in thread-local storage while the lane runs.
pub(crate) struct LaneCtx {
    shared: Arc<SimShared>,
    id: usize,
    clock: Cell<u64>,
    /// The lane may keep running lock-free while `clock <= limit`.
    limit: Cell<u64>,
}

impl LaneCtx {
    #[inline]
    pub(crate) fn clock(&self) -> u64 {
        self.clock.get()
    }

    #[inline]
    pub(crate) fn id(&self) -> usize {
        self.id
    }

    #[inline]
    pub(crate) fn tick(&self, ev: Event) {
        let cost = self.shared.platform.costs.cost(ev);
        let c = self.clock.get().saturating_add(cost);
        self.clock.set(c);
        if c > self.limit.get() {
            self.yield_slow();
        }
    }

    #[inline]
    pub(crate) fn tick_n(&self, ev: Event, n: u64) {
        let cost = self.shared.platform.costs.cost(ev).saturating_mul(n);
        let c = self.clock.get().saturating_add(cost);
        self.clock.set(c);
        if c > self.limit.get() {
            self.yield_slow();
        }
    }

    /// Lowest clock among *other* runnable lanes, with its id.
    fn min_runnable_other(state: &SchedState, me: usize) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for (i, (&c, &s)) in state.clocks.iter().zip(state.status.iter()).enumerate() {
            if i != me && s == Status::Runnable {
                match best {
                    Some((_, bc)) if bc <= c => {}
                    _ => best = Some((i, c)),
                }
            }
        }
        best
    }

    #[cold]
    fn yield_slow(&self) {
        let shared = &*self.shared;
        let mut state = shared.state.lock().unwrap();
        state.clocks[self.id] = self.clock.get();
        match Self::min_runnable_other(&state, self.id) {
            None => {
                // Alone: run unthrottled.
                self.limit.set(u64::MAX);
            }
            Some((_, mc)) if mc >= self.clock.get() => {
                // Still the (weakly) lowest clock: raise the horizon.
                self.limit.set(mc.saturating_add(shared.slack_ns));
            }
            Some((m, _)) => {
                // Hand off to the lane with the lowest clock.
                state.status[self.id] = Status::Runnable;
                state.status[m] = Status::Running;
                state.switches += 1;
                shared.cvs[m].notify_one();
                while state.status[self.id] != Status::Running {
                    state = shared.cvs[self.id].wait(state).unwrap();
                }
                let horizon = Self::min_runnable_other(&state, self.id)
                    .map(|(_, c)| c.saturating_add(shared.slack_ns))
                    .unwrap_or(u64::MAX);
                self.limit.set(horizon);
            }
        }
    }

    /// Park until the scheduler marks this lane `Running` (start-of-run gate).
    fn wait_until_scheduled(&self) {
        let shared = &*self.shared;
        let mut state = shared.state.lock().unwrap();
        while state.status[self.id] != Status::Running {
            state = shared.cvs[self.id].wait(state).unwrap();
        }
        let horizon = Self::min_runnable_other(&state, self.id)
            .map(|(_, c)| c.saturating_add(shared.slack_ns))
            .unwrap_or(u64::MAX);
        self.limit.set(horizon);
    }
}

/// Runs on scope exit (including unwinds) so a panicking lane still hands
/// the CPU to the next lane instead of deadlocking the simulation.
struct FinishGuard {
    ctx: Rc<LaneCtx>,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        let ctx = &*self.ctx;
        let shared = &*ctx.shared;
        // Runs during unwinds too: never double-panic on a poisoned mutex.
        let mut state = shared
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.clocks[ctx.id] = ctx.clock.get();
        state.status[ctx.id] = Status::Done;
        state.live -= 1;
        if let Some((m, _)) = LaneCtx::min_runnable_other(&state, ctx.id) {
            state.status[m] = Status::Running;
            state.switches += 1;
            shared.cvs[m].notify_one();
        }
        drop(state);
        clear_lane();
    }
}

/// Handle given to each lane body: identity, deterministic randomness, and
/// the platform being simulated.
pub struct Lane {
    ctx: Rc<LaneCtx>,
    rng: Rng,
}

impl Lane {
    /// This lane's id in `0..n`.
    pub fn id(&self) -> usize {
        self.ctx.id()
    }

    /// The lane's virtual clock, in nanoseconds.
    pub fn now(&self) -> u64 {
        self.ctx.clock()
    }

    /// Deterministic per-lane random stream (seeded from the run seed and
    /// the lane id).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// The platform this simulation models.
    pub fn platform(&self) -> &Platform {
        &self.ctx.shared.platform
    }
}

/// Result of a simulation run.
#[derive(Debug)]
pub struct SimReport<T> {
    /// Per-lane return values, indexed by lane id.
    pub results: Vec<T>,
    /// Virtual makespan: the largest lane clock at completion.
    pub makespan_ns: u64,
    /// Final virtual clock of each lane.
    pub lane_clocks: Vec<u64>,
    /// Number of lane-to-lane handoffs the scheduler performed.
    pub switches: u64,
}

impl<T> SimReport<T> {
    /// Operations per second in virtual time, given a total operation count.
    pub fn throughput(&self, total_ops: u64) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        total_ops as f64 * 1e9 / self.makespan_ns as f64
    }
}

/// A configured simulation, ready to [`run`](Sim::run).
pub struct Sim {
    platform: Platform,
    n: usize,
    slack_ns: u64,
    seed: u64,
}

impl Sim {
    /// A simulation of `n` hardware threads of `platform`.
    ///
    /// `n` may exceed the platform's logical thread count (the scheduler
    /// does not model timeslicing); the benchmark harness keeps `n` within
    /// the machine budget as the paper does.
    pub fn new(platform: Platform, n: usize) -> Self {
        assert!(n >= 1, "a simulation needs at least one lane");
        // SMT sharing: running more lanes than physical cores inflates
        // per-lane compute costs (see `Platform::occupied_by`).
        let platform = platform.occupied_by(n as u32);
        Sim {
            platform,
            n,
            slack_ns: 0,
            seed: 0x9E3779B97F4A7C15,
        }
    }

    /// Allow a running lane to race ahead of the lowest parked clock by up
    /// to `ns`. Zero (the default) is exact conservative simulation; small
    /// positive values trade scheduling fidelity for fewer handoffs.
    pub fn with_slack(mut self, ns: u64) -> Self {
        self.slack_ns = ns;
        self
    }

    /// Seed for all per-lane random streams (figures fix this for
    /// reproducibility).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run `body` once per lane and collect the report.
    ///
    /// `body` is shared by all lanes; lane-specific state comes from the
    /// [`Lane`] handle. The closure may borrow from the caller's stack
    /// (lanes run under `std::thread::scope`).
    pub fn run<T, F>(self, body: F) -> SimReport<T>
    where
        T: Send,
        F: Fn(&mut Lane) -> T + Sync,
    {
        let n = self.n;
        let shared = Arc::new(SimShared {
            state: Mutex::new(SchedState {
                clocks: vec![0; n],
                status: {
                    let mut s = vec![Status::Runnable; n];
                    s[0] = Status::Running; // lane 0 has the lowest (tied) clock
                    s
                },
                live: n,
                switches: 0,
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            platform: self.platform,
            slack_ns: self.slack_ns,
        });

        let body = &body;
        let results: Vec<T> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|id| {
                    let shared = Arc::clone(&shared);
                    let seed = self.seed;
                    scope.spawn(move || {
                        let ctx = Rc::new(LaneCtx {
                            shared,
                            id,
                            clock: Cell::new(0),
                            limit: Cell::new(0),
                        });
                        install_lane(Rc::clone(&ctx));
                        ctx.wait_until_scheduled();
                        let _guard = FinishGuard {
                            ctx: Rc::clone(&ctx),
                        };
                        let mut lane = Lane {
                            ctx,
                            rng: Rng::new(seed ^ (id as u64).wrapping_mul(0xA24BAED4963EE407)),
                        };
                        body(&mut lane)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulated lane panicked"))
                .collect()
        });

        let state = shared.state.lock().unwrap();
        SimReport {
            results,
            makespan_ns: state.clocks.iter().copied().max().unwrap_or(0),
            lane_clocks: state.clocks.clone(),
            switches: state.switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{is_simulated, lane_id, now, tick};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn testbed() -> Platform {
        Platform::testbed()
    }

    #[test]
    fn single_lane_runs_and_ticks() {
        let report = Sim::new(testbed(), 1).run(|lane| {
            assert!(is_simulated());
            assert_eq!(lane_id(), Some(0));
            for _ in 0..10 {
                tick(Event::LocalWork(100));
            }
            (lane.id(), now())
        });
        assert_eq!(report.results, vec![(0, 1000)]);
        assert_eq!(report.makespan_ns, 1000);
    }

    #[test]
    fn lanes_overlap_in_virtual_time() {
        // 8 lanes × 1000 ns of independent work: virtual makespan must be
        // ~1000 ns (parallel), not ~8000 ns (serial).
        let report = Sim::new(testbed(), 8).run(|_lane| {
            for _ in 0..10 {
                tick(Event::LocalWork(100));
            }
        });
        assert_eq!(report.makespan_ns, 1000);
        assert!(report.lane_clocks.iter().all(|&c| c == 1000));
    }

    #[test]
    fn interleaving_is_deterministic() {
        // Record the global order of (lane, step) events across two runs.
        fn trace() -> Vec<(usize, u64)> {
            let order = Mutex::new(Vec::new());
            Sim::new(testbed(), 4).run(|lane| {
                for step in 0..50u64 {
                    // Uneven costs exercise the scheduler.
                    tick(Event::LocalWork(10 + (lane.id() as u64) * 7 + step % 3));
                    order.lock().unwrap().push((lane.id(), step));
                }
            });
            order.into_inner().unwrap()
        }
        assert_eq!(trace(), trace());
    }

    #[test]
    fn lowest_clock_runs_first() {
        // Lane 1 does tiny steps, lane 0 does huge ones; completions of
        // lane 1's steps must come before lane 0's clock passes them.
        let log = Mutex::new(Vec::new());
        Sim::new(testbed(), 2).run(|lane| {
            let cost = if lane.id() == 0 { 1000 } else { 10 };
            for _ in 0..5 {
                tick(Event::LocalWork(cost));
                log.lock().unwrap().push((lane.id(), now()));
            }
        });
        let log = log.into_inner().unwrap();
        // Verify global virtual-time order of logged completions is sorted.
        let times: Vec<u64> = log.iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(
            times, sorted,
            "events must commit in virtual-time order: {log:?}"
        );
    }

    #[test]
    fn shared_counter_sees_all_increments() {
        let counter = AtomicU64::new(0);
        let report = Sim::new(testbed(), 16).run(|_| {
            for _ in 0..100 {
                tick(Event::Cas);
                counter.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1600);
        assert!(report.switches > 0);
    }

    #[test]
    fn throughput_uses_virtual_time() {
        let report = Sim::new(testbed(), 4).run(|_| {
            for _ in 0..1000 {
                tick(Event::LocalWork(1000)); // 1 µs per op
            }
        });
        // 4 lanes × 1000 ops in ~1 ms → ~4M ops/s.
        let tp = report.throughput(4000);
        assert!((3.9e6..=4.1e6).contains(&tp), "throughput {tp}");
    }

    #[test]
    fn slack_trades_switches_for_speed() {
        let run = |slack| {
            Sim::new(testbed(), 8)
                .with_slack(slack)
                .run(|_| {
                    for _ in 0..200 {
                        tick(Event::LocalWork(25));
                    }
                })
                .switches
        };
        let exact = run(0);
        let relaxed = run(10_000);
        assert!(
            relaxed <= exact,
            "slack must not increase handoffs ({relaxed} vs {exact})"
        );
    }

    #[test]
    fn per_lane_rng_streams_differ_and_reproduce() {
        let draw = || {
            Sim::new(testbed(), 4)
                .with_seed(42)
                .run(|lane| lane.rng().next_u64())
                .results
        };
        let a = draw();
        let b = draw();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "lanes must get distinct streams: {a:?}");
    }

    #[test]
    fn spin_wait_on_atomic_makes_progress() {
        // Lane 1 spins until lane 0 sets the flag. Under lowest-clock-first
        // scheduling the spinner keeps ticking so lane 0 eventually runs.
        let flag = AtomicU64::new(0);
        let report = Sim::new(testbed(), 2).run(|lane| {
            if lane.id() == 0 {
                for _ in 0..100 {
                    tick(Event::LocalWork(100));
                }
                flag.store(1, Ordering::Release);
                tick(Event::SharedStore);
            } else {
                let mut spins = 0u64;
                while flag.load(Ordering::Acquire) == 0 {
                    tick(Event::SharedLoad);
                    spins += 1;
                    assert!(spins < 1_000_000, "spinner starved");
                }
            }
        });
        assert!(report.makespan_ns >= 10_000);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = Sim::new(testbed(), 0);
    }
}

#[cfg(test)]
mod panic_tests {
    use super::*;
    use crate::clock::{tick, Event};
    use crate::platform::PlatformKind;

    #[test]
    fn lane_panic_propagates_without_deadlock() {
        // A panicking lane must hand the CPU to its peers (FinishGuard) so
        // the run ends with a propagated panic instead of hanging.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Sim::new(Platform::testbed(), 4).run(|lane| {
                for _ in 0..20 {
                    tick(Event::LocalWork(50));
                }
                if lane.id() == 2 {
                    panic!("lane 2 exploded");
                }
            });
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // And the simulator remains usable afterwards.
        let r = Sim::new(Platform::testbed(), 2).run(|_| {
            tick(Event::LocalWork(10));
        });
        assert_eq!(r.makespan_ns, 10);
    }

    #[test]
    fn tick_n_batches_cost() {
        let r = Sim::new(Platform::testbed(), 1).run(|_| {
            crate::clock::tick_n(Event::LocalWork(7), 100);
            crate::clock::now()
        });
        assert_eq!(r.results[0], 700);
    }

    #[test]
    fn raw_event_charges_verbatim_on_every_platform() {
        for kind in [PlatformKind::Rock, PlatformKind::Haswell, PlatformKind::T2] {
            let r = Sim::new(kind.platform(), 1).run(|_| {
                tick(Event::Raw(123));
                crate::clock::now()
            });
            assert_eq!(r.results[0], 123, "{kind:?}");
        }
    }

    #[test]
    fn smt_penalty_slows_lanes_beyond_core_count() {
        // 8 lanes of independent work on Haswell (4 cores): virtual time
        // per lane must exceed the 4-lane case.
        let work = |n: usize| {
            Sim::new(Platform::haswell(), n)
                .run(|_| {
                    for _ in 0..100 {
                        tick(Event::LocalWork(100));
                    }
                })
                .makespan_ns
        };
        let at4 = work(4);
        let at8 = work(8);
        assert_eq!(at4, 10_000, "within cores: nominal cost");
        assert!(at8 > at4, "SMT sharing must slow per-lane progress: {at8}");
        assert!(at8 < at4 * 2, "but not to the point of negating SMT: {at8}");
    }
}
