//! The deterministic lowest-clock-first lane scheduler.
//!
//! A [`Sim`] runs `n` *lanes* (simulated hardware threads). Each lane is a
//! real OS thread, but the scheduler admits exactly one at a time: the lane
//! with the lowest virtual clock (ties broken by lane id). A running lane
//! executes freely — without touching the scheduler lock — until its clock
//! passes the lowest clock of any parked lane, at which point it hands the
//! CPU over. This is conservative discrete-event simulation: the committed
//! event order is identical to a parallel execution in virtual time, and is
//! bit-for-bit reproducible.
//!
//! Lanes must never block on OS primitives (they would park the whole
//! simulation); every wait in the ALE stack is a spin that calls
//! [`tick`](crate::tick) each iteration, so waiting lanes keep advancing
//! their clocks and the scheduler keeps rotating.
//!
//! ## Adversarial strategies
//!
//! The default [`SchedStrategy::LowestClock`] is the exact conservative
//! simulation described above, and its event order is untouched by the
//! strategy machinery (the figures depend on that). The other strategies
//! turn the scheduler into a schedule-exploration engine for `ale-check`:
//! every costed tick becomes a *decision point*, and the scheduler picks
//! the next lane among all runnable lanes whose clock lies within a bounded
//! window of the minimum. The window is what keeps every lane live — a
//! starved minimum-clock lane eventually becomes the only candidate.
//! Decisions draw from a dedicated scheduler [`Rng`], and an optional
//! *perturbation limit* caps how many decisions deviate from lowest-clock
//! order, which is the knob replay minimisation bisects.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex};

use crate::clock::{clear_lane, install_lane, Event};
use crate::platform::Platform;
use crate::rng::Rng;

/// How the scheduler picks the next lane at each decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedStrategy {
    /// Conservative lowest-clock-first (the default). Event order is
    /// identical to a parallel execution in virtual time and bit-for-bit
    /// reproducible; all figures use this.
    #[default]
    LowestClock,
    /// Random-walk tie-breaking: at every costed tick, pick uniformly among
    /// runnable lanes within `window_ns` of the lowest runnable clock.
    RandomWalk {
        /// Eligibility window above the minimum runnable clock.
        window_ns: u64,
    },
    /// Preemption-point perturbation: follow lowest-clock order, but with
    /// probability `permille`/1000 per decision take a random eligible lane
    /// instead (a perturbed preemption point).
    Preempt {
        /// Eligibility window above the minimum runnable clock.
        window_ns: u64,
        /// Per-decision perturbation probability, in permille.
        permille: u64,
    },
    /// Conflict heuristic: prefer the eligible lane with the highest recent
    /// shared-memory traffic (CASes, shared stores, HTM events), decayed on
    /// every yield. Greedy "pick the most-conflicting thread".
    MostConflicting {
        /// Eligibility window above the minimum runnable clock.
        window_ns: u64,
    },
    /// Weak-memory visibility-delay adversary: at every decision point,
    /// hand the CPU to a *different* eligible lane whenever one exists
    /// (uniformly among the peers), continuing only when the current lane
    /// is alone in the window. Paired with the `ale-sync` reorder fences —
    /// which charge virtual time exactly at seqlock publish/subscription
    /// boundaries — this parks a publishing lane mid-publication while
    /// every other lane runs, the deterministic analogue of a store
    /// sitting in a store buffer past the version bump.
    Reorder {
        /// Eligibility window above the minimum runnable clock.
        window_ns: u64,
    },
}

impl SchedStrategy {
    /// Does this strategy take over lane selection (vs. the exact default)?
    #[inline]
    pub fn is_adversarial(&self) -> bool {
        !matches!(self, SchedStrategy::LowestClock)
    }

    /// The eligibility window (0 for the default strategy).
    pub fn window_ns(&self) -> u64 {
        match *self {
            SchedStrategy::LowestClock => 0,
            SchedStrategy::RandomWalk { window_ns }
            | SchedStrategy::Preempt { window_ns, .. }
            | SchedStrategy::MostConflicting { window_ns }
            | SchedStrategy::Reorder { window_ns } => window_ns,
        }
    }
}

/// Conflict-score weight of an event (adversarial strategies only): how
/// strongly it suggests the lane is racing on shared state.
fn conflict_weight(ev: Event) -> u64 {
    match ev {
        Event::Cas | Event::LockHandoff => 4,
        Event::SharedStore => 3,
        Event::HtmBegin | Event::HtmCommit | Event::HtmAbort => 2,
        Event::SharedLoad => 1,
        _ => 0,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Parked, waiting to be scheduled.
    Runnable,
    /// The single lane currently on the (real) CPU.
    Running,
    /// Finished its body.
    Done,
}

/// Outcome of one scheduling decision.
enum Pick {
    /// Keep running the current lane until its clock passes the horizon.
    Continue(u64),
    /// Hand the CPU to this lane.
    HandOff(usize),
}

struct SchedState {
    clocks: Vec<u64>,
    status: Vec<Status>,
    live: usize,
    switches: u64,
    /// Decision stream for adversarial strategies (under the state mutex;
    /// exactly one lane runs at a time, so draws are deterministic).
    srng: Rng,
    /// Adversarial decisions taken so far.
    decisions: u64,
    /// Decisions beyond this fall back to lowest-clock order.
    perturb_limit: u64,
    /// Per-lane decayed conflict scores (MostConflicting).
    scores: Vec<u64>,
}

pub(crate) struct SimShared {
    state: Mutex<SchedState>,
    cvs: Vec<Condvar>,
    platform: Platform,
    slack_ns: u64,
    strategy: SchedStrategy,
    /// Cached `strategy.is_adversarial()` for the tick fast path.
    adversarial: bool,
}

/// Per-lane context installed in thread-local storage while the lane runs.
pub(crate) struct LaneCtx {
    shared: Arc<SimShared>,
    id: usize,
    clock: Cell<u64>,
    /// The lane may keep running lock-free while `clock <= limit`.
    limit: Cell<u64>,
    /// Conflict weight accumulated since the last yield (adversarial only).
    conflict: Cell<u64>,
}

impl LaneCtx {
    #[inline]
    pub(crate) fn clock(&self) -> u64 {
        self.clock.get()
    }

    #[inline]
    pub(crate) fn id(&self) -> usize {
        self.id
    }

    #[inline]
    pub(crate) fn tick(&self, ev: Event) {
        let cost = self.shared.platform.costs.cost(ev);
        if self.shared.adversarial {
            self.conflict
                .set(self.conflict.get().saturating_add(conflict_weight(ev)));
        }
        let c = self.clock.get().saturating_add(cost);
        self.clock.set(c);
        if c > self.limit.get() {
            self.yield_slow();
        }
    }

    #[inline]
    pub(crate) fn tick_n(&self, ev: Event, n: u64) {
        let cost = self.shared.platform.costs.cost(ev).saturating_mul(n);
        if self.shared.adversarial {
            self.conflict
                .set(self.conflict.get().saturating_add(conflict_weight(ev)));
        }
        let c = self.clock.get().saturating_add(cost);
        self.clock.set(c);
        if c > self.limit.get() {
            self.yield_slow();
        }
    }

    /// Lowest clock among *other* runnable lanes, with its id.
    fn min_runnable_other(state: &SchedState, me: usize) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for (i, (&c, &s)) in state.clocks.iter().zip(state.status.iter()).enumerate() {
            if i != me && s == Status::Runnable {
                match best {
                    Some((_, bc)) if bc <= c => {}
                    _ => best = Some((i, c)),
                }
            }
        }
        best
    }

    /// The horizon a freshly-scheduled lane may run to. Adversarial modes
    /// pin it to the lane's own clock so every costed tick re-decides.
    fn wake_horizon(shared: &SimShared, state: &SchedState, me: usize) -> u64 {
        if shared.adversarial {
            state.clocks[me]
        } else {
            Self::min_runnable_other(state, me)
                .map(|(_, c)| c.saturating_add(shared.slack_ns))
                .unwrap_or(u64::MAX)
        }
    }

    /// One scheduling decision for lane `me` (which is currently Running and
    /// just passed its horizon).
    fn pick_next(shared: &SimShared, state: &mut SchedState, me: usize) -> Pick {
        let my_clock = state.clocks[me];
        let conservative = |state: &SchedState| match Self::min_runnable_other(state, me) {
            None => Pick::Continue(u64::MAX),
            Some((_, mc)) if mc >= my_clock => Pick::Continue(mc.saturating_add(shared.slack_ns)),
            Some((m, _)) => Pick::HandOff(m),
        };
        if !shared.adversarial {
            return conservative(state);
        }
        if Self::min_runnable_other(state, me).is_none() {
            // Alone: no decision to make, run unthrottled.
            return Pick::Continue(u64::MAX);
        }
        if state.decisions >= state.perturb_limit {
            // Past the perturbation budget: exact lowest-clock order (the
            // replay minimiser bisects this boundary). Keep the horizon
            // tight anyway so the decision count stays comparable.
            return match conservative(state) {
                Pick::Continue(_) => Pick::Continue(my_clock),
                h => h,
            };
        }
        state.decisions += 1;
        let window = shared.strategy.window_ns();
        // Eligible lanes: runnable peers (and this lane) within `window` of
        // the lowest such clock.
        let eligible =
            |state: &SchedState, i: usize| state.status[i] == Status::Runnable || i == me;
        let floor = (0..state.clocks.len())
            .filter(|&i| eligible(state, i))
            .map(|i| state.clocks[i])
            .min()
            .unwrap_or(my_clock);
        let cand: Vec<usize> = (0..state.clocks.len())
            .filter(|&i| eligible(state, i) && state.clocks[i] <= floor.saturating_add(window))
            .collect();
        let lowest =
            |state: &SchedState| *cand.iter().min_by_key(|&&i| (state.clocks[i], i)).unwrap();
        let random =
            |state: &mut SchedState| cand[state.srng.gen_range(cand.len() as u64) as usize];
        let pick = match shared.strategy {
            SchedStrategy::LowestClock => unreachable!("not adversarial"),
            SchedStrategy::RandomWalk { .. } => random(state),
            SchedStrategy::Preempt { permille, .. } => {
                if state.srng.gen_ratio(permille, 1000) {
                    random(state)
                } else {
                    lowest(state)
                }
            }
            SchedStrategy::MostConflicting { .. } => *cand
                .iter()
                .max_by_key(|&&i| {
                    (
                        state.scores[i],
                        std::cmp::Reverse(state.clocks[i]),
                        std::cmp::Reverse(i),
                    )
                })
                .unwrap(),
            SchedStrategy::Reorder { .. } => {
                // Maximal preemption: always switch away when a peer is
                // eligible, so a lane parked at a reorder fence stays
                // parked while every other lane observes the half-published
                // state it left behind.
                let peers: Vec<usize> = cand.iter().copied().filter(|&i| i != me).collect();
                if peers.is_empty() {
                    me
                } else {
                    peers[state.srng.gen_range(peers.len() as u64) as usize]
                }
            }
        };
        if pick == me {
            Pick::Continue(my_clock)
        } else {
            Pick::HandOff(pick)
        }
    }

    #[cold]
    fn yield_slow(&self) {
        let shared = &*self.shared;
        let mut state = shared.state.lock().unwrap();
        state.clocks[self.id] = self.clock.get();
        if shared.adversarial {
            // Decay the old score and fold in traffic since the last yield.
            let fresh = self.conflict.replace(0);
            state.scores[self.id] = state.scores[self.id] / 2 + fresh;
        }
        match Self::pick_next(shared, &mut state, self.id) {
            Pick::Continue(horizon) => self.limit.set(horizon),
            Pick::HandOff(m) => {
                state.status[self.id] = Status::Runnable;
                state.status[m] = Status::Running;
                state.switches += 1;
                shared.cvs[m].notify_one();
                while state.status[self.id] != Status::Running {
                    state = shared.cvs[self.id].wait(state).unwrap();
                }
                let horizon = Self::wake_horizon(shared, &state, self.id);
                self.limit.set(horizon);
            }
        }
    }

    /// Park until the scheduler marks this lane `Running` (start-of-run gate).
    fn wait_until_scheduled(&self) {
        let shared = &*self.shared;
        let mut state = shared.state.lock().unwrap();
        while state.status[self.id] != Status::Running {
            state = shared.cvs[self.id].wait(state).unwrap();
        }
        let horizon = Self::wake_horizon(shared, &state, self.id);
        self.limit.set(horizon);
    }
}

/// Runs on scope exit (including unwinds) so a panicking lane still hands
/// the CPU to the next lane instead of deadlocking the simulation.
struct FinishGuard {
    ctx: Rc<LaneCtx>,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        let ctx = &*self.ctx;
        let shared = &*ctx.shared;
        // Runs during unwinds too: never double-panic on a poisoned mutex.
        let mut state = shared
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.clocks[ctx.id] = ctx.clock.get();
        state.status[ctx.id] = Status::Done;
        state.live -= 1;
        if let Some((m, _)) = LaneCtx::min_runnable_other(&state, ctx.id) {
            state.status[m] = Status::Running;
            state.switches += 1;
            shared.cvs[m].notify_one();
        }
        drop(state);
        clear_lane();
    }
}

/// Handle given to each lane body: identity, deterministic randomness, and
/// the platform being simulated.
pub struct Lane {
    ctx: Rc<LaneCtx>,
    rng: Rng,
}

impl Lane {
    /// This lane's id in `0..n`.
    pub fn id(&self) -> usize {
        self.ctx.id()
    }

    /// The lane's virtual clock, in nanoseconds.
    pub fn now(&self) -> u64 {
        self.ctx.clock()
    }

    /// Deterministic per-lane random stream (seeded from the run seed and
    /// the lane id).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// The platform this simulation models.
    pub fn platform(&self) -> &Platform {
        &self.ctx.shared.platform
    }
}

/// Result of a simulation run.
#[derive(Debug)]
pub struct SimReport<T> {
    /// Per-lane return values, indexed by lane id.
    pub results: Vec<T>,
    /// Virtual makespan: the largest lane clock at completion.
    pub makespan_ns: u64,
    /// Final virtual clock of each lane.
    pub lane_clocks: Vec<u64>,
    /// Number of lane-to-lane handoffs the scheduler performed.
    pub switches: u64,
    /// Adversarial scheduling decisions taken (0 under
    /// [`SchedStrategy::LowestClock`]). Replay minimisation bisects a
    /// perturbation limit against this count.
    pub decisions: u64,
}

impl<T> SimReport<T> {
    /// Operations per second in virtual time, given a total operation count.
    pub fn throughput(&self, total_ops: u64) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        total_ops as f64 * 1e9 / self.makespan_ns as f64
    }
}

/// A configured simulation, ready to [`run`](Sim::run).
pub struct Sim {
    platform: Platform,
    n: usize,
    slack_ns: u64,
    seed: u64,
    strategy: SchedStrategy,
    sched_seed: Option<u64>,
    perturb_limit: u64,
}

impl Sim {
    /// A simulation of `n` hardware threads of `platform`.
    ///
    /// `n` may exceed the platform's logical thread count (the scheduler
    /// does not model timeslicing); the benchmark harness keeps `n` within
    /// the machine budget as the paper does.
    pub fn new(platform: Platform, n: usize) -> Self {
        assert!(n >= 1, "a simulation needs at least one lane");
        // SMT sharing: running more lanes than physical cores inflates
        // per-lane compute costs (see `Platform::occupied_by`).
        let platform = platform.occupied_by(n as u32);
        Sim {
            platform,
            n,
            slack_ns: 0,
            seed: 0x9E3779B97F4A7C15,
            strategy: SchedStrategy::LowestClock,
            sched_seed: None,
            perturb_limit: u64::MAX,
        }
    }

    /// Allow a running lane to race ahead of the lowest parked clock by up
    /// to `ns`. Zero (the default) is exact conservative simulation; small
    /// positive values trade scheduling fidelity for fewer handoffs.
    pub fn with_slack(mut self, ns: u64) -> Self {
        self.slack_ns = ns;
        self
    }

    /// Seed for all per-lane random streams (figures fix this for
    /// reproducibility).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scheduling strategy. The default, [`SchedStrategy::LowestClock`], is
    /// exact conservative simulation; the others explore adversarial
    /// interleavings (see the module docs) and ignore `with_slack`.
    pub fn with_strategy(mut self, strategy: SchedStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Separate seed for the scheduler's decision stream, so the same
    /// workload (same `with_seed`) can run under many distinct schedules.
    /// Defaults to a stream derived from the run seed.
    pub fn with_sched_seed(mut self, seed: u64) -> Self {
        self.sched_seed = Some(seed);
        self
    }

    /// Cap the number of adversarial decisions; later ones fall back to
    /// lowest-clock order. `u64::MAX` (the default) is unlimited. Replay
    /// minimisation bisects this to find the shortest failing prefix.
    pub fn with_perturb_limit(mut self, limit: u64) -> Self {
        self.perturb_limit = limit;
        self
    }

    /// Run `body` once per lane and collect the report.
    ///
    /// `body` is shared by all lanes; lane-specific state comes from the
    /// [`Lane`] handle. The closure may borrow from the caller's stack
    /// (lanes run under `std::thread::scope`).
    pub fn run<T, F>(self, body: F) -> SimReport<T>
    where
        T: Send,
        F: Fn(&mut Lane) -> T + Sync,
    {
        let n = self.n;
        let sched_seed = self.sched_seed.unwrap_or(self.seed ^ 0x5C4E_D01E_AD5E_ED00);
        let shared = Arc::new(SimShared {
            state: Mutex::new(SchedState {
                clocks: vec![0; n],
                status: {
                    let mut s = vec![Status::Runnable; n];
                    s[0] = Status::Running; // lane 0 has the lowest (tied) clock
                    s
                },
                live: n,
                switches: 0,
                srng: Rng::new(sched_seed),
                decisions: 0,
                perturb_limit: self.perturb_limit,
                scores: vec![0; n],
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            platform: self.platform,
            slack_ns: self.slack_ns,
            strategy: self.strategy,
            adversarial: self.strategy.is_adversarial(),
        });

        let body = &body;
        let results: Vec<T> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|id| {
                    let shared = Arc::clone(&shared);
                    let seed = self.seed;
                    scope.spawn(move || {
                        let ctx = Rc::new(LaneCtx {
                            shared,
                            id,
                            clock: Cell::new(0),
                            limit: Cell::new(0),
                            conflict: Cell::new(0),
                        });
                        install_lane(Rc::clone(&ctx));
                        ctx.wait_until_scheduled();
                        let _guard = FinishGuard {
                            ctx: Rc::clone(&ctx),
                        };
                        let mut lane = Lane {
                            ctx,
                            rng: Rng::new(seed ^ (id as u64).wrapping_mul(0xA24BAED4963EE407)),
                        };
                        body(&mut lane)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulated lane panicked"))
                .collect()
        });

        let state = shared.state.lock().unwrap();
        SimReport {
            results,
            makespan_ns: state.clocks.iter().copied().max().unwrap_or(0),
            lane_clocks: state.clocks.clone(),
            switches: state.switches,
            decisions: state.decisions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{is_simulated, lane_id, now, tick};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn testbed() -> Platform {
        Platform::testbed()
    }

    #[test]
    fn single_lane_runs_and_ticks() {
        let report = Sim::new(testbed(), 1).run(|lane| {
            assert!(is_simulated());
            assert_eq!(lane_id(), Some(0));
            for _ in 0..10 {
                tick(Event::LocalWork(100));
            }
            (lane.id(), now())
        });
        assert_eq!(report.results, vec![(0, 1000)]);
        assert_eq!(report.makespan_ns, 1000);
    }

    #[test]
    fn lanes_overlap_in_virtual_time() {
        // 8 lanes × 1000 ns of independent work: virtual makespan must be
        // ~1000 ns (parallel), not ~8000 ns (serial).
        let report = Sim::new(testbed(), 8).run(|_lane| {
            for _ in 0..10 {
                tick(Event::LocalWork(100));
            }
        });
        assert_eq!(report.makespan_ns, 1000);
        assert!(report.lane_clocks.iter().all(|&c| c == 1000));
    }

    #[test]
    fn interleaving_is_deterministic() {
        // Record the global order of (lane, step) events across two runs.
        fn trace() -> Vec<(usize, u64)> {
            let order = Mutex::new(Vec::new());
            Sim::new(testbed(), 4).run(|lane| {
                for step in 0..50u64 {
                    // Uneven costs exercise the scheduler.
                    tick(Event::LocalWork(10 + (lane.id() as u64) * 7 + step % 3));
                    order.lock().unwrap().push((lane.id(), step));
                }
            });
            order.into_inner().unwrap()
        }
        assert_eq!(trace(), trace());
    }

    #[test]
    fn lowest_clock_runs_first() {
        // Lane 1 does tiny steps, lane 0 does huge ones; completions of
        // lane 1's steps must come before lane 0's clock passes them.
        let log = Mutex::new(Vec::new());
        Sim::new(testbed(), 2).run(|lane| {
            let cost = if lane.id() == 0 { 1000 } else { 10 };
            for _ in 0..5 {
                tick(Event::LocalWork(cost));
                log.lock().unwrap().push((lane.id(), now()));
            }
        });
        let log = log.into_inner().unwrap();
        // Verify global virtual-time order of logged completions is sorted.
        let times: Vec<u64> = log.iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(
            times, sorted,
            "events must commit in virtual-time order: {log:?}"
        );
    }

    #[test]
    fn shared_counter_sees_all_increments() {
        let counter = AtomicU64::new(0);
        let report = Sim::new(testbed(), 16).run(|_| {
            for _ in 0..100 {
                tick(Event::Cas);
                counter.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1600);
        assert!(report.switches > 0);
    }

    #[test]
    fn throughput_uses_virtual_time() {
        let report = Sim::new(testbed(), 4).run(|_| {
            for _ in 0..1000 {
                tick(Event::LocalWork(1000)); // 1 µs per op
            }
        });
        // 4 lanes × 1000 ops in ~1 ms → ~4M ops/s.
        let tp = report.throughput(4000);
        assert!((3.9e6..=4.1e6).contains(&tp), "throughput {tp}");
    }

    #[test]
    fn slack_trades_switches_for_speed() {
        let run = |slack| {
            Sim::new(testbed(), 8)
                .with_slack(slack)
                .run(|_| {
                    for _ in 0..200 {
                        tick(Event::LocalWork(25));
                    }
                })
                .switches
        };
        let exact = run(0);
        let relaxed = run(10_000);
        assert!(
            relaxed <= exact,
            "slack must not increase handoffs ({relaxed} vs {exact})"
        );
    }

    #[test]
    fn per_lane_rng_streams_differ_and_reproduce() {
        let draw = || {
            Sim::new(testbed(), 4)
                .with_seed(42)
                .run(|lane| lane.rng().next_u64())
                .results
        };
        let a = draw();
        let b = draw();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "lanes must get distinct streams: {a:?}");
    }

    #[test]
    fn spin_wait_on_atomic_makes_progress() {
        // Lane 1 spins until lane 0 sets the flag. Under lowest-clock-first
        // scheduling the spinner keeps ticking so lane 0 eventually runs.
        let flag = AtomicU64::new(0);
        let report = Sim::new(testbed(), 2).run(|lane| {
            if lane.id() == 0 {
                for _ in 0..100 {
                    tick(Event::LocalWork(100));
                }
                flag.store(1, Ordering::Release);
                tick(Event::SharedStore);
            } else {
                let mut spins = 0u64;
                while flag.load(Ordering::Acquire) == 0 {
                    tick(Event::SharedLoad);
                    spins += 1;
                    assert!(spins < 1_000_000, "spinner starved");
                }
            }
        });
        assert!(report.makespan_ns >= 10_000);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = Sim::new(testbed(), 0);
    }

    fn strategy_trace(strategy: SchedStrategy, sched_seed: u64) -> Vec<(usize, u64)> {
        let order = Mutex::new(Vec::new());
        Sim::new(testbed(), 4)
            .with_strategy(strategy)
            .with_sched_seed(sched_seed)
            .run(|lane| {
                for step in 0..40u64 {
                    tick(Event::LocalWork(10 + (lane.id() as u64) * 7 + step % 3));
                    order.lock().unwrap().push((lane.id(), step));
                }
            });
        order.into_inner().unwrap()
    }

    #[test]
    fn adversarial_strategies_are_deterministic() {
        for strategy in [
            SchedStrategy::RandomWalk { window_ns: 500 },
            SchedStrategy::Preempt {
                window_ns: 500,
                permille: 300,
            },
            SchedStrategy::MostConflicting { window_ns: 500 },
            SchedStrategy::Reorder { window_ns: 500 },
        ] {
            assert_eq!(
                strategy_trace(strategy, 7),
                strategy_trace(strategy, 7),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn reorder_strategy_preempts_and_terminates() {
        // The reorder adversary must deviate from lowest-clock order, keep
        // every lane live, and run every step exactly once.
        let base = {
            let order = Mutex::new(Vec::new());
            Sim::new(testbed(), 4).run(|lane| {
                for step in 0..40u64 {
                    tick(Event::LocalWork(10 + (lane.id() as u64) * 7 + step % 3));
                    order.lock().unwrap().push((lane.id(), step));
                }
            });
            order.into_inner().unwrap()
        };
        let reorder = strategy_trace(SchedStrategy::Reorder { window_ns: 500 }, 11);
        assert_ne!(base, reorder, "reorder adversary must deviate");
        let mut sorted = reorder.clone();
        sorted.sort_unstable();
        let mut expect: Vec<(usize, u64)> =
            (0..4).flat_map(|l| (0..40).map(move |s| (l, s))).collect();
        expect.sort_unstable();
        assert_eq!(sorted, expect, "no step may be lost or duplicated");
    }

    #[test]
    fn sched_seed_changes_random_walk_interleaving() {
        let strategy = SchedStrategy::RandomWalk { window_ns: 500 };
        let a = strategy_trace(strategy, 1);
        let b = strategy_trace(strategy, 2);
        assert_ne!(a, b, "different sched seeds must explore new schedules");
        // Every schedule still runs every step of every lane exactly once.
        let mut sa = a.clone();
        sa.sort_unstable();
        let mut expect: Vec<(usize, u64)> =
            (0..4).flat_map(|l| (0..40).map(move |s| (l, s))).collect();
        expect.sort_unstable();
        assert_eq!(sa, expect);
    }

    #[test]
    fn random_walk_differs_from_lowest_clock() {
        let base = {
            let order = Mutex::new(Vec::new());
            Sim::new(testbed(), 4).run(|lane| {
                for step in 0..40u64 {
                    tick(Event::LocalWork(10 + (lane.id() as u64) * 7 + step % 3));
                    order.lock().unwrap().push((lane.id(), step));
                }
            });
            order.into_inner().unwrap()
        };
        let walk = strategy_trace(SchedStrategy::RandomWalk { window_ns: 500 }, 3);
        assert_ne!(base, walk, "adversarial schedule must deviate");
    }

    #[test]
    fn perturb_limit_zero_recovers_lowest_clock_order() {
        // With the perturbation budget exhausted from the start, an
        // adversarial run commits events in exact lowest-clock order.
        let trace = |strategy: Option<SchedStrategy>| {
            let order = Mutex::new(Vec::new());
            let mut sim = Sim::new(testbed(), 4);
            if let Some(s) = strategy {
                sim = sim.with_strategy(s).with_perturb_limit(0);
            }
            sim.run(|lane| {
                for step in 0..40u64 {
                    tick(Event::LocalWork(10 + (lane.id() as u64) * 7 + step % 3));
                    order.lock().unwrap().push((lane.id(), step));
                }
            });
            order.into_inner().unwrap()
        };
        assert_eq!(
            trace(None),
            trace(Some(SchedStrategy::RandomWalk { window_ns: 500 })),
        );
    }

    #[test]
    fn decisions_are_counted_and_bounded_runs_terminate() {
        let r = Sim::new(testbed(), 4)
            .with_strategy(SchedStrategy::MostConflicting { window_ns: 200 })
            .run(|_| {
                for _ in 0..50 {
                    tick(Event::Cas);
                    tick(Event::LocalWork(30));
                }
            });
        assert!(r.decisions > 0, "adversarial runs must record decisions");
        let base = Sim::new(testbed(), 4).run(|_| {
            for _ in 0..50 {
                tick(Event::Cas);
                tick(Event::LocalWork(30));
            }
        });
        assert_eq!(base.decisions, 0, "default scheduling takes no decisions");
    }

    #[test]
    fn adversarial_spin_waits_still_make_progress() {
        // The bounded window guarantees a starved lane eventually runs even
        // under random scheduling: lane 1 spins until lane 0 sets the flag.
        let flag = AtomicU64::new(0);
        Sim::new(testbed(), 2)
            .with_strategy(SchedStrategy::RandomWalk { window_ns: 300 })
            .run(|lane| {
                if lane.id() == 0 {
                    for _ in 0..100 {
                        tick(Event::LocalWork(100));
                    }
                    flag.store(1, Ordering::Release);
                    tick(Event::SharedStore);
                } else {
                    let mut spins = 0u64;
                    while flag.load(Ordering::Acquire) == 0 {
                        tick(Event::SharedLoad);
                        spins += 1;
                        assert!(spins < 1_000_000, "spinner starved");
                    }
                }
            });
    }
}

#[cfg(test)]
mod panic_tests {
    use super::*;
    use crate::clock::{tick, Event};
    use crate::platform::PlatformKind;

    #[test]
    fn lane_panic_propagates_without_deadlock() {
        // A panicking lane must hand the CPU to its peers (FinishGuard) so
        // the run ends with a propagated panic instead of hanging.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Sim::new(Platform::testbed(), 4).run(|lane| {
                for _ in 0..20 {
                    tick(Event::LocalWork(50));
                }
                if lane.id() == 2 {
                    panic!("lane 2 exploded");
                }
            });
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // And the simulator remains usable afterwards.
        let r = Sim::new(Platform::testbed(), 2).run(|_| {
            tick(Event::LocalWork(10));
        });
        assert_eq!(r.makespan_ns, 10);
    }

    #[test]
    fn tick_n_batches_cost() {
        let r = Sim::new(Platform::testbed(), 1).run(|_| {
            crate::clock::tick_n(Event::LocalWork(7), 100);
            crate::clock::now()
        });
        assert_eq!(r.results[0], 700);
    }

    #[test]
    fn raw_event_charges_verbatim_on_every_platform() {
        for kind in [PlatformKind::Rock, PlatformKind::Haswell, PlatformKind::T2] {
            let r = Sim::new(kind.platform(), 1).run(|_| {
                tick(Event::Raw(123));
                crate::clock::now()
            });
            assert_eq!(r.results[0], 123, "{kind:?}");
        }
    }

    #[test]
    fn smt_penalty_slows_lanes_beyond_core_count() {
        // 8 lanes of independent work on Haswell (4 cores): virtual time
        // per lane must exceed the 4-lane case.
        let work = |n: usize| {
            Sim::new(Platform::haswell(), n)
                .run(|_| {
                    for _ in 0..100 {
                        tick(Event::LocalWork(100));
                    }
                })
                .makespan_ns
        };
        let at4 = work(4);
        let at8 = work(8);
        assert_eq!(at4, 10_000, "within cores: nominal cost");
        assert!(at8 > at4, "SMT sharing must slow per-lane progress: {at8}");
        assert!(at8 < at4 * 2, "but not to the point of negating SMT: {at8}");
    }
}
