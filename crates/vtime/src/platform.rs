//! Simulated platform profiles.
//!
//! The paper evaluates ALE on three machines; each is modelled here as a
//! [`Platform`]: a logical-thread budget, a [`CostModel`] translating
//! abstract [`Event`](crate::Event)s into virtual nanoseconds, and an
//! optional [`HtmProfile`] describing the machine's best-effort HTM.
//!
//! * **Rock** — 1-socket, 16-core SPARC with an early best-effort HTM whose
//!   transactions fail for many restrictive reasons (tiny store queue,
//!   TLB misses, function calls…). Modelled with a very small write-set
//!   capacity and a high spurious-abort rate.
//! * **Haswell** — 1-socket, 4-core × 2-SMT x86 with Intel TSX/RTM:
//!   read set tracked in L3-ish structures (large), write set bounded by
//!   L1 (moderate), low spurious-abort rate.
//! * **T2-2** — 2-socket, 128-thread SPARC T2+: no HTM at all, slower
//!   single-thread clock, higher coherence costs (two sockets).
//!
//! Absolute numbers are order-of-magnitude estimates; the reproduction
//! targets the *shape* of the paper's curves (who wins, where crossovers
//! fall), which is governed by the ratios encoded here, not by the absolute
//! values.

use crate::clock::Event;

/// Virtual-nanosecond costs for each abstract event.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Atomic read-modify-write on shared data.
    pub cas_ns: u64,
    /// Load of potentially-shared data (blended hit/miss cost).
    pub shared_load_ns: u64,
    /// Store to potentially-shared data.
    pub shared_store_ns: u64,
    /// Entering a hardware transaction.
    pub htm_begin_ns: u64,
    /// Committing a hardware transaction.
    pub htm_commit_ns: u64,
    /// Aborting a hardware transaction.
    pub htm_abort_ns: u64,
    /// Handing a contended lock between threads (coherence + wakeup).
    pub lock_handoff_ns: u64,
    /// Base unit for exponential backoff; one backoff event at exponent `e`
    /// costs `backoff_unit_ns << e` (capped at [`CostModel::backoff_cap_ns`]).
    pub backoff_unit_ns: u64,
    /// Upper bound for a single backoff event.
    pub backoff_cap_ns: u64,
    /// Multiplier applied to `Event::LocalWork` (models slower cores; 1000 =
    /// 1.0×, fixed-point with three decimal places).
    pub local_work_permille: u64,
}

impl CostModel {
    /// Cost in virtual nanoseconds of a single event.
    #[inline]
    pub fn cost(&self, ev: Event) -> u64 {
        match ev {
            Event::Cas => self.cas_ns,
            Event::SharedLoad => self.shared_load_ns,
            Event::SharedStore => self.shared_store_ns,
            Event::LocalWork(ns) => ns * self.local_work_permille / 1000,
            Event::HtmBegin => self.htm_begin_ns,
            Event::HtmCommit => self.htm_commit_ns,
            Event::HtmAbort => self.htm_abort_ns,
            Event::LockHandoff => self.lock_handoff_ns,
            Event::Backoff(exp) => {
                let shifted = self.backoff_unit_ns.saturating_shl(exp.min(32));
                shifted.min(self.backoff_cap_ns)
            }
            Event::Raw(ns) => ns,
        }
    }
}

trait SaturatingShl {
    fn saturating_shl(self, by: u32) -> Self;
}
impl SaturatingShl for u64 {
    #[inline]
    fn saturating_shl(self, by: u32) -> u64 {
        if by >= 64 || self.leading_zeros() < by {
            u64::MAX
        } else {
            self << by
        }
    }
}

/// Best-effort HTM characteristics of a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct HtmProfile {
    /// Maximum distinct cells a transaction may read before a capacity abort.
    pub max_read_set: usize,
    /// Maximum distinct cells a transaction may write before a capacity abort.
    pub max_write_set: usize,
    /// Probability that any single transactional access spuriously aborts
    /// (models TLB misses, interrupts, micro-architectural events).
    pub spurious_abort_per_access: f64,
    /// Probability that a transaction spuriously aborts at begin
    /// (models unfriendly events between begin and first access).
    pub spurious_abort_per_txn: f64,
    /// Whether an abort's status suggests a retry may succeed when the abort
    /// was spurious (Rock's status register was famously unhelpful).
    pub spurious_retry_hint: bool,
}

/// Identifies one of the built-in platforms (handy for CLI parsing and CSV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    Rock,
    Haswell,
    T2,
    /// Uniform-cost single-socket test machine with generous HTM.
    Testbed,
}

impl PlatformKind {
    pub fn name(self) -> &'static str {
        match self {
            PlatformKind::Rock => "rock",
            PlatformKind::Haswell => "haswell",
            PlatformKind::T2 => "t2",
            PlatformKind::Testbed => "testbed",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rock" => Some(PlatformKind::Rock),
            "haswell" => Some(PlatformKind::Haswell),
            "t2" | "t2-2" => Some(PlatformKind::T2),
            "testbed" => Some(PlatformKind::Testbed),
            _ => None,
        }
    }

    pub fn platform(self) -> Platform {
        match self {
            PlatformKind::Rock => Platform::rock(),
            PlatformKind::Haswell => Platform::haswell(),
            PlatformKind::T2 => Platform::t2(),
            PlatformKind::Testbed => Platform::testbed(),
        }
    }
}

/// A simulated machine: thread budget, cost model, HTM profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    pub kind: PlatformKind,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads per core.
    pub smt: u32,
    /// Extra per-thread compute cost when hardware threads share cores,
    /// in permille at full SMT occupancy. Running `n > cores` simulated
    /// threads scales compute-bound costs by
    /// `1 + smt_penalty‰ × (n − cores)/(logical − cores)`: SMT siblings
    /// share pipelines, so per-thread speed drops even as aggregate
    /// throughput rises. Zero for non-SMT machines (Rock).
    pub smt_penalty_permille: u64,
    /// HTM support, if any.
    pub htm: Option<HtmProfile>,
    pub costs: CostModel,
}

impl Platform {
    /// Total logical hardware threads.
    pub fn logical_threads(&self) -> u32 {
        self.cores * self.smt
    }

    /// The platform as experienced by `n` concurrent threads: compute
    /// costs inflated by SMT sharing when `n` exceeds the core count.
    pub fn occupied_by(&self, n: u32) -> Platform {
        let logical = self.logical_threads().max(self.cores + 1);
        if n <= self.cores || self.smt_penalty_permille == 0 {
            return self.clone();
        }
        let oversub = (n.min(logical) - self.cores) as u64;
        let span = (logical - self.cores) as u64;
        let factor = 1000 + self.smt_penalty_permille * oversub / span;
        let mut p = self.clone();
        let scale = |v: u64| v * factor / 1000;
        p.costs.local_work_permille = scale(p.costs.local_work_permille);
        p.costs.shared_load_ns = scale(p.costs.shared_load_ns);
        p.costs.shared_store_ns = scale(p.costs.shared_store_ns);
        p.costs.cas_ns = scale(p.costs.cas_ns);
        p.costs.htm_begin_ns = scale(p.costs.htm_begin_ns);
        p.costs.htm_commit_ns = scale(p.costs.htm_commit_ns);
        p.costs.htm_abort_ns = scale(p.costs.htm_abort_ns);
        p
    }

    pub fn has_htm(&self) -> bool {
        self.htm.is_some()
    }

    /// Sun/Oracle Rock: 16 cores, early best-effort HTM with a tiny store
    /// buffer and many restrictive failure causes.
    pub fn rock() -> Self {
        Platform {
            kind: PlatformKind::Rock,
            cores: 16,
            smt: 1,
            smt_penalty_permille: 0,
            htm: Some(HtmProfile {
                max_read_set: 2048,
                max_write_set: 32,
                spurious_abort_per_access: 0.0012,
                spurious_abort_per_txn: 0.02,
                spurious_retry_hint: false,
            }),
            costs: CostModel {
                cas_ns: 40,
                shared_load_ns: 12,
                shared_store_ns: 16,
                htm_begin_ns: 40,
                htm_commit_ns: 40,
                htm_abort_ns: 250,
                lock_handoff_ns: 220,
                backoff_unit_ns: 60,
                backoff_cap_ns: 20_000,
                local_work_permille: 1400,
            },
        }
    }

    /// Intel Haswell: 4 cores × 2 SMT, TSX/RTM with a large read set and an
    /// L1-bounded write set.
    pub fn haswell() -> Self {
        Platform {
            kind: PlatformKind::Haswell,
            cores: 4,
            smt: 2,
            smt_penalty_permille: 550,
            htm: Some(HtmProfile {
                max_read_set: 4096,
                max_write_set: 448,
                spurious_abort_per_access: 0.00008,
                spurious_abort_per_txn: 0.004,
                spurious_retry_hint: true,
            }),
            costs: CostModel {
                cas_ns: 20,
                shared_load_ns: 6,
                shared_store_ns: 8,
                htm_begin_ns: 35,
                htm_commit_ns: 25,
                htm_abort_ns: 150,
                lock_handoff_ns: 120,
                backoff_unit_ns: 40,
                backoff_cap_ns: 12_000,
                local_work_permille: 1000,
            },
        }
    }

    /// SPARC T2+ (two sockets, 128 hardware threads): no HTM, modest
    /// single-thread performance, expensive cross-socket coherence.
    pub fn t2() -> Self {
        Platform {
            kind: PlatformKind::T2,
            cores: 16,
            smt: 8,
            smt_penalty_permille: 1000,
            htm: None,
            costs: CostModel {
                cas_ns: 90,
                shared_load_ns: 25,
                shared_store_ns: 30,
                htm_begin_ns: 0,
                htm_commit_ns: 0,
                htm_abort_ns: 0,
                lock_handoff_ns: 450,
                backoff_unit_ns: 120,
                backoff_cap_ns: 40_000,
                local_work_permille: 2500,
            },
        }
    }

    /// A uniform test machine: generous HTM, cheap everything. Used by unit
    /// tests that want HTM behaviour without platform-specific noise.
    pub fn testbed() -> Self {
        Platform {
            kind: PlatformKind::Testbed,
            cores: 8,
            smt: 1,
            smt_penalty_permille: 0,
            htm: Some(HtmProfile {
                max_read_set: 1 << 16,
                max_write_set: 1 << 16,
                spurious_abort_per_access: 0.0,
                spurious_abort_per_txn: 0.0,
                spurious_retry_hint: true,
            }),
            costs: CostModel {
                cas_ns: 10,
                shared_load_ns: 5,
                shared_store_ns: 5,
                htm_begin_ns: 10,
                htm_commit_ns: 10,
                htm_abort_ns: 50,
                lock_handoff_ns: 50,
                backoff_unit_ns: 20,
                backoff_cap_ns: 5_000,
                local_work_permille: 1000,
            },
        }
    }

    /// A copy of this platform without HTM (for ablations).
    pub fn without_htm(mut self) -> Self {
        self.htm = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_platforms_are_sane() {
        for kind in [
            PlatformKind::Rock,
            PlatformKind::Haswell,
            PlatformKind::T2,
            PlatformKind::Testbed,
        ] {
            let p = kind.platform();
            assert_eq!(p.kind, kind);
            assert!(p.logical_threads() >= 1);
            assert!(p.costs.cas_ns > 0);
            assert_eq!(PlatformKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(Platform::t2().logical_threads(), 128);
        assert_eq!(Platform::haswell().logical_threads(), 8);
        assert_eq!(Platform::rock().logical_threads(), 16);
    }

    #[test]
    fn t2_has_no_htm_and_rock_has_small_write_set() {
        assert!(!Platform::t2().has_htm());
        let rock = Platform::rock();
        let haswell = Platform::haswell();
        assert!(
            rock.htm.as_ref().unwrap().max_write_set < haswell.htm.as_ref().unwrap().max_write_set
        );
    }

    #[test]
    fn cost_model_maps_events() {
        let m = Platform::testbed().costs;
        assert_eq!(m.cost(Event::Cas), m.cas_ns);
        assert_eq!(m.cost(Event::LocalWork(100)), 100);
        assert_eq!(m.cost(Event::Raw(7)), 7);
        // T2's slower cores scale local work up.
        let t2 = Platform::t2().costs;
        assert_eq!(t2.cost(Event::LocalWork(100)), 250);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let m = Platform::testbed().costs;
        let c0 = m.cost(Event::Backoff(0));
        let c3 = m.cost(Event::Backoff(3));
        assert_eq!(c3, c0 << 3);
        assert_eq!(m.cost(Event::Backoff(62)), m.backoff_cap_ns);
    }

    #[test]
    fn without_htm_strips_htm() {
        assert!(!Platform::haswell().without_htm().has_htm());
    }

    #[test]
    fn smt_occupancy_scales_compute_costs() {
        let p = Platform::haswell(); // 4 cores × 2 SMT, penalty 550‰
        let solo = p.occupied_by(4);
        assert_eq!(solo.costs, p.costs, "within the core budget: unchanged");
        let full = p.occupied_by(8);
        assert_eq!(
            full.costs.local_work_permille,
            p.costs.local_work_permille * 1550 / 1000
        );
        assert!(full.costs.shared_load_ns > p.costs.shared_load_ns);
        // Costs that model coherence/handoff are not inflated.
        assert_eq!(full.costs.lock_handoff_ns, p.costs.lock_handoff_ns);
        // Partial occupancy interpolates.
        let half = p.occupied_by(6);
        assert!(half.costs.cas_ns > p.costs.cas_ns);
        assert!(half.costs.cas_ns < full.costs.cas_ns);
        // Non-SMT platforms never scale.
        let rock = Platform::rock();
        assert_eq!(rock.occupied_by(16).costs, rock.costs);
        assert_eq!(rock.occupied_by(64).costs, rock.costs);
    }
}
