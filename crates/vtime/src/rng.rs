//! Deterministic pseudo-random numbers (xoshiro256**, SplitMix64-seeded).
//!
//! Everything random in the reproduction — workload operation choice,
//! spurious HTM aborts, statistics sampling, backoff jitter — draws from
//! per-thread [`Rng`] streams derived from a single run seed, so a figure
//! regenerated twice is bit-identical. Implemented locally (rather than via
//! the `rand` crate) to keep the simulated hot path allocation-free and the
//! stream derivation explicit.

/// SplitMix64 step: the recommended seeder for xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (xoshiro256**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a seed. Any seed (including 0) is fine; the
    /// state is expanded through SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Rng { s }
    }

    /// Derive an independent stream, e.g. one per (thread, purpose).
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0xD1342543DE82EF95))
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..n` (Lemire's unbiased multiply-shift method).
    /// `n` must be nonzero.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// True with probability `num/den` using integer arithmetic.
    #[inline]
    pub fn gen_ratio(&mut self, num: u64, den: u64) -> bool {
        debug_assert!(den > 0);
        self.gen_range(den) < num.min(den)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let mut c = Rng::new(8);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = Rng::new(123);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
        for _ in 0..100 {
            assert_eq!(r.gen_range(1), 0);
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::new(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = Rng::new(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(-1.0));
        assert!(r.gen_bool(2.0));
        let hits = (0..100_000).filter(|_| r.gen_bool(0.03)).count();
        assert!((2_400..=3_600).contains(&hits), "3% rate, got {hits}");
    }

    #[test]
    fn gen_ratio_rate() {
        let mut r = Rng::new(5);
        let hits = (0..100_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((24_000..=26_000).contains(&hits), "{hits}");
        assert!(r.gen_ratio(5, 4), "num >= den is always true");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut base = Rng::new(11);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        let a: Vec<u64> = (0..5).map(|_| f1.next_u64()).collect();
        let b: Vec<u64> = (0..5).map(|_| f2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
