//! Correctness tests for the ALE HashMap: sequential semantics, all three
//! execution modes, the §3.3 variants, and linearizability probes under
//! simulated contention on every platform.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ale_core::{AdaptivePolicy, Ale, AleConfig, ExecMode, StaticPolicy};
use ale_hashmap::{AleHashMap, MapConfig};
use ale_vtime::{Platform, Sim};

fn new_map(platform: Platform, stripes: usize) -> (Arc<Ale>, AleHashMap<u64>) {
    let ale = Ale::new(
        AleConfig::new(platform).with_seed(17),
        StaticPolicy::new(4, 12),
    );
    let map = AleHashMap::new(&ale, MapConfig::new(256).with_version_stripes(stripes));
    (ale, map)
}

#[test]
fn sequential_semantics() {
    let (_ale, map) = new_map(Platform::testbed(), 1);
    let mut v = 0u64;
    assert!(!map.get(5, &mut v));
    assert!(map.insert(5, 50));
    assert!(map.get(5, &mut v));
    assert_eq!(v, 50);
    assert!(!map.insert(5, 51), "overwrite returns false");
    assert!(map.get(5, &mut v));
    assert_eq!(v, 51);
    assert!(map.remove(5));
    assert!(!map.remove(5));
    assert!(!map.get(5, &mut v));
    assert_eq!(map.len_slow(), 0);
}

#[test]
fn many_keys_and_collisions() {
    let (_ale, map) = new_map(Platform::testbed(), 1);
    for k in 0..2000u64 {
        assert!(map.insert(k, k + 1));
    }
    assert_eq!(map.len_slow(), 2000);
    let mut v = 0;
    for k in 0..2000u64 {
        assert!(map.get(k, &mut v));
        assert_eq!(v, k + 1);
    }
    for k in (0..2000u64).step_by(3) {
        assert!(map.remove(k));
    }
    for k in 0..2000u64 {
        assert_eq!(map.get(k, &mut v), k % 3 != 0, "key {k}");
    }
}

#[test]
fn fine_grained_and_self_abort_variants_agree() {
    let (_ale, map) = new_map(Platform::testbed(), 1);
    assert!(map.insert_fine(1, 10));
    assert!(!map.insert_fine(1, 11));
    let mut v = 0;
    assert!(map.get(1, &mut v));
    assert_eq!(v, 11);
    assert!(map.remove_fine(1));
    assert!(!map.remove_fine(1));
    assert!(!map.remove_self_abort(1), "absent key: pure SWOpt miss");
    assert!(map.insert(2, 20));
    assert!(
        map.remove_self_abort(2),
        "present key: self-abort then mutate"
    );
    assert_eq!(map.len_slow(), 0);
}

#[test]
fn swopt_get_is_used_without_htm() {
    let ale = Ale::new(
        AleConfig::new(Platform::t2()).with_seed(3),
        StaticPolicy::new(0, 16),
    );
    let map: AleHashMap<u64> = AleHashMap::new(&ale, MapConfig::new(64));
    for k in 0..100 {
        map.insert(k, k);
    }
    let mut v = 0;
    for k in 0..100 {
        assert!(map.get(k, &mut v));
    }
    let report = ale.report();
    let lock = report.lock("tblLock").unwrap();
    let get_granule = lock
        .granules
        .iter()
        .find(|g| g.context.contains("HashMap::get"))
        .expect("get granule exists");
    assert!(
        get_granule.successes[ExecMode::SwOpt.index()] >= 95,
        "gets should ride SWOpt: {report}"
    );
}

fn hammer(platform: Platform, lanes: usize, stripes: usize, seed: u64) {
    let (_ale, map) = new_map(platform.clone(), stripes);
    let map = &map;
    // Pre-populate even keys of a small hot range.
    for k in (0..200u64).step_by(2) {
        map.insert(k, k * 10);
    }
    let gets_hit = AtomicU64::new(0);
    Sim::new(platform, lanes).with_seed(seed).run(|lane| {
        let mut rng = lane.rng().clone();
        for _ in 0..400 {
            let key = rng.gen_range(200);
            match rng.gen_range(10) {
                0..=1 => {
                    map.insert(key, key * 10);
                }
                2..=3 => {
                    map.remove(key);
                }
                _ => {
                    let mut v = 0;
                    if map.get(key, &mut v) {
                        // The invariant: any observed value is consistent
                        // with its key (values are never torn/mixed).
                        assert_eq!(v, key * 10, "read a foreign value for {key}");
                        gets_hit.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    });
    assert!(gets_hit.load(Ordering::Relaxed) > 0, "some gets must hit");
    // Post-mortem: the map is internally consistent.
    let mut v = 0;
    let mut live = 0;
    for k in 0..200u64 {
        if map.get(k, &mut v) {
            assert_eq!(v, k * 10);
            live += 1;
        }
    }
    assert_eq!(map.len_slow(), live);
}

#[test]
fn concurrent_mixed_workload_haswell() {
    hammer(Platform::haswell(), 8, 1, 41);
}

#[test]
fn concurrent_mixed_workload_rock() {
    hammer(Platform::rock(), 8, 1, 42);
}

#[test]
fn concurrent_mixed_workload_t2_no_htm() {
    hammer(Platform::t2(), 8, 1, 43);
}

#[test]
fn concurrent_mixed_workload_per_bucket_versions() {
    hammer(Platform::haswell(), 8, 64, 44);
}

#[test]
fn concurrent_fine_grained_variants() {
    let (_ale, map) = new_map(Platform::testbed(), 1);
    let map = &map;
    for k in 0..100u64 {
        map.insert(k, k * 10);
    }
    Sim::new(Platform::testbed(), 6).with_seed(9).run(|lane| {
        let mut rng = lane.rng().clone();
        for _ in 0..300 {
            let key = rng.gen_range(150);
            match rng.gen_range(6) {
                0 => {
                    map.insert_fine(key, key * 10);
                }
                1 => {
                    map.remove_fine(key);
                }
                2 => {
                    map.remove_self_abort(key);
                }
                _ => {
                    let mut v = 0;
                    if map.get(key, &mut v) {
                        assert_eq!(v, key * 10);
                    }
                }
            }
        }
    });
    let mut v = 0;
    let mut live = 0;
    for k in 0..150u64 {
        if map.get(k, &mut v) {
            assert_eq!(v, k * 10);
            live += 1;
        }
    }
    assert_eq!(map.len_slow(), live);
}

#[test]
fn adaptive_policy_runs_the_map() {
    let ale = Ale::new(
        AleConfig::new(Platform::haswell()).with_seed(23),
        AdaptivePolicy::new(),
    );
    let map: AleHashMap<u64> = AleHashMap::new(&ale, MapConfig::new(256));
    let map = &map;
    for k in 0..500u64 {
        map.insert(k, k);
    }
    Sim::new(Platform::haswell(), 8).with_seed(5).run(|lane| {
        let mut rng = lane.rng().clone();
        for _ in 0..1500 {
            let key = rng.gen_range(500);
            match rng.gen_range(100) {
                0..=4 => {
                    map.insert(key, key);
                }
                5..=9 => {
                    map.remove(key);
                    map.insert(key, key);
                }
                _ => {
                    let mut v = 0;
                    if map.get(key, &mut v) {
                        assert_eq!(v, key);
                    }
                }
            }
        }
    });
    let report = ale.report();
    let lock = report.lock("tblLock").unwrap();
    assert!(
        lock.policy.starts_with("final") || lock.policy.contains("custom"),
        "adaptive should have (nearly) converged after 12k executions: {}",
        lock.policy
    );
}

#[test]
fn report_shows_per_operation_granules() {
    let (ale, map) = new_map(Platform::testbed(), 1);
    map.insert(1, 1);
    let mut v = 0;
    map.get(1, &mut v);
    map.remove(1);
    let report = ale.report();
    let text = report.to_string();
    for ctx in ["HashMap::get", "HashMap::insert", "HashMap::remove"] {
        assert!(text.contains(ctx), "missing granule {ctx}: {text}");
    }
}

#[test]
fn slab_exhaustion_panics_with_context() {
    use ale_hashmap::NodeSlab;
    let slab: NodeSlab<u64> = NodeSlab::with_capacity(8);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // The slab rounds capacity up to one whole chunk (4096 nodes), so
        // exhausting it takes a chunk's worth of allocations plus one.
        for i in 0..5_000u64 {
            slab.alloc(i, i);
        }
    }));
    let payload = caught.unwrap_err();
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("slab exhausted"), "{msg}");
}

#[test]
fn named_scopes_give_call_sites_their_own_granules() {
    // The paper's BEGIN_CS_NAMED pattern: the same operation called from
    // two different sites adapts (and reports) independently.
    use ale_core::scope;
    let (ale, map) = new_map(Platform::testbed(), 1);
    map.insert(1, 10);
    let mut v = 0;
    for _ in 0..20 {
        map.get_scoped(scope!("hot_path_lookup"), 1, &mut v);
        map.get_scoped(scope!("cold_path_lookup"), 2, &mut v);
    }
    let report = ale.report();
    let lock = report.lock("tblLock").unwrap();
    let contexts: Vec<_> = lock.granules.iter().map(|g| g.context.as_str()).collect();
    assert!(
        contexts.iter().any(|c| c.contains("hot_path_lookup")),
        "{contexts:?}"
    );
    assert!(
        contexts.iter().any(|c| c.contains("cold_path_lookup")),
        "{contexts:?}"
    );
}
