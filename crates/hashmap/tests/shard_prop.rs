//! Property-based tests: the sharded map against
//! `std::collections::HashMap` under arbitrary operation scripts, with
//! resize thresholds forced low enough that migrations start and finish
//! *inside* the scripts — every explicit migration step re-checks the
//! cursor invariant, so the shrunk counterexample of a resize bug is an
//! op script, not a schedule.

use std::collections::HashMap;
use std::sync::Arc;

use ale_core::{Ale, AleConfig, StaticPolicy};
use ale_hashmap::{AleShardedMap, ShardedMapConfig};
use ale_vtime::Platform;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    /// One explicit migration chain move on shard `key % shards`.
    MigrateStep(u64),
}

fn op_strategy(keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..keys, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0..keys).prop_map(Op::Remove),
        3 => (0..keys).prop_map(Op::Get),
        1 => (0..keys).prop_map(Op::MigrateStep),
    ]
}

/// Run `script` against both maps. `piggyback` chooses between migration
/// driven from mutating ops and migration driven only by explicit steps;
/// either way every step must preserve the cursor invariant, and the
/// final contents must match the model exactly.
fn check_script(
    platform: Platform,
    shards: usize,
    piggyback: usize,
    script: &[Op],
) -> Result<(), TestCaseError> {
    let ale: Arc<Ale> = Ale::new(
        AleConfig::new(platform).with_seed(5),
        StaticPolicy::new(3, 6),
    );
    // Two buckets per shard and a low threshold: a handful of inserts
    // starts a migration, and scripts routinely span several epochs.
    let map: AleShardedMap<u64> = AleShardedMap::new(
        &ale,
        ShardedMapConfig::new(shards)
            .with_buckets_per_shard(2)
            .with_capacity_per_shard(1 << 10)
            .with_version_stripes(2)
            .with_max_load_permille(600)
            .with_migrate_steps_per_op(piggyback),
    );
    let mut model: HashMap<u64, u64> = HashMap::new();
    for op in script {
        match *op {
            Op::Insert(k, v) => {
                prop_assert_eq!(map.insert(k, v), !model.contains_key(&k));
                model.insert(k, v);
            }
            Op::Remove(k) => {
                prop_assert_eq!(map.remove(k), model.remove(&k).is_some());
            }
            Op::Get(k) => {
                let mut v = 0;
                let found = map.get(k, &mut v);
                prop_assert_eq!(found, model.contains_key(&k));
                if found {
                    prop_assert_eq!(&v, &model[&k]);
                }
            }
            Op::MigrateStep(k) => {
                let si = (k as usize) % map.shard_count();
                map.migrate_step(si);
                prop_assert!(
                    map.old_chains_empty_below_cursor(si),
                    "cursor invariant broken on shard {} after an explicit step",
                    si
                );
            }
        }
        // The cursor invariant must hold after *every* op on every shard:
        // piggybacked steps run inside inserts and removes too.
        for si in 0..map.shard_count() {
            prop_assert!(
                map.old_chains_empty_below_cursor(si),
                "cursor invariant broken on shard {}",
                si
            );
        }
    }
    // Quiescent parity: totals, per-shard counter-vs-enumeration, and
    // per-key contents, even if a migration is still live.
    prop_assert_eq!(map.len_slow(), model.len());
    for si in 0..map.shard_count() {
        prop_assert_eq!(map.shard_len_slow(si) as u64, map.shard_live_count(si));
    }
    for (&k, &v) in &model {
        let mut got = 0;
        prop_assert!(map.get(k, &mut got), "key {} lost", k);
        prop_assert_eq!(got, v);
    }
    prop_assert!(map.versions_even());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Piggybacked migration (the production configuration) matches the
    /// reference model across live resizes.
    #[test]
    fn matches_model_piggyback(script in proptest::collection::vec(op_strategy(96), 0..160)) {
        check_script(Platform::testbed(), 4, 2, &script)?;
    }

    /// Explicit-step-only migration: resizes stay live across many ops,
    /// so lookups exercise the two-table path for most of the script.
    #[test]
    fn matches_model_explicit_steps(script in proptest::collection::vec(op_strategy(96), 0..160)) {
        check_script(Platform::testbed(), 2, 0, &script)?;
    }

    /// A SWOpt-only platform (no HTM) takes the optimistic lookup path
    /// with its double validation everywhere.
    #[test]
    fn matches_model_swopt(script in proptest::collection::vec(op_strategy(96), 0..160)) {
        check_script(Platform::t2(), 4, 1, &script)?;
    }

    /// A single shard degenerates to one granule but keeps the resize
    /// machinery; shard routing must not lose anything at the boundary.
    #[test]
    fn matches_model_single_shard(script in proptest::collection::vec(op_strategy(96), 0..160)) {
        check_script(Platform::testbed(), 1, 1, &script)?;
    }
}
