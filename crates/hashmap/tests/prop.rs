//! Property-based tests: the ALE HashMap against `std::collections::HashMap`
//! under arbitrary operation scripts, across platforms, variants, and
//! version-striping configurations.

use std::collections::HashMap;
use std::sync::Arc;

use ale_core::{Ale, AleConfig, StaticPolicy};
use ale_hashmap::{AleHashMap, MapConfig};
use ale_vtime::Platform;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    InsertFine(u64, u64),
    RemoveFine(u64),
    RemoveSelfAbort(u64),
}

fn op_strategy(keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..keys, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0..keys).prop_map(Op::Remove),
        4 => (0..keys).prop_map(Op::Get),
        1 => (0..keys, any::<u64>()).prop_map(|(k, v)| Op::InsertFine(k, v)),
        1 => (0..keys).prop_map(Op::RemoveFine),
        1 => (0..keys).prop_map(Op::RemoveSelfAbort),
    ]
}

fn check_script(
    platform: Platform,
    x: u32,
    y: u32,
    stripes: usize,
    script: &[Op],
) -> Result<(), TestCaseError> {
    let ale: Arc<Ale> = Ale::new(
        AleConfig::new(platform).with_seed(5),
        StaticPolicy::new(x, y),
    );
    let map: AleHashMap<u64> =
        AleHashMap::new(&ale, MapConfig::new(32).with_version_stripes(stripes));
    let mut model: HashMap<u64, u64> = HashMap::new();
    for op in script {
        match *op {
            Op::Insert(k, v) => {
                prop_assert_eq!(map.insert(k, v), !model.contains_key(&k));
                model.insert(k, v);
            }
            Op::InsertFine(k, v) => {
                prop_assert_eq!(map.insert_fine(k, v), !model.contains_key(&k));
                model.insert(k, v);
            }
            Op::Remove(k) => {
                prop_assert_eq!(map.remove(k), model.remove(&k).is_some());
            }
            Op::RemoveFine(k) => {
                prop_assert_eq!(map.remove_fine(k), model.remove(&k).is_some());
            }
            Op::RemoveSelfAbort(k) => {
                prop_assert_eq!(map.remove_self_abort(k), model.remove(&k).is_some());
            }
            Op::Get(k) => {
                let mut v = 0;
                let found = map.get(k, &mut v);
                prop_assert_eq!(found, model.contains_key(&k));
                if found {
                    prop_assert_eq!(&v, &model[&k]);
                }
            }
        }
    }
    prop_assert_eq!(map.len_slow(), model.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// HTM-first execution matches the reference model.
    #[test]
    fn matches_model_htm(script in proptest::collection::vec(op_strategy(32), 0..120)) {
        check_script(Platform::testbed(), 4, 0, 1, &script)?;
    }

    /// SWOpt-first execution (no HTM platform) matches the reference model.
    #[test]
    fn matches_model_swopt(script in proptest::collection::vec(op_strategy(32), 0..120)) {
        check_script(Platform::t2(), 0, 8, 1, &script)?;
    }

    /// Rock's flaky HTM (spurious aborts, tiny write sets) still yields
    /// correct results — failures must be invisible.
    #[test]
    fn matches_model_rock(script in proptest::collection::vec(op_strategy(32), 0..120)) {
        check_script(Platform::rock(), 3, 6, 1, &script)?;
    }

    /// Per-bucket version stripes preserve semantics.
    #[test]
    fn matches_model_striped(
        script in proptest::collection::vec(op_strategy(32), 0..120),
        stripes in 1usize..64,
    ) {
        check_script(Platform::testbed(), 4, 8, stripes, &script)?;
    }
}

mod list_props {
    use std::collections::BTreeSet;

    use ale_core::{Ale, AleConfig, StaticPolicy};
    use ale_hashmap::AleSortedList;
    use ale_vtime::Platform;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum LOp {
        Insert(u64),
        Remove(u64),
        Contains(u64),
    }

    fn lop(keys: u64) -> impl Strategy<Value = LOp> {
        prop_oneof![
            3 => (0..keys).prop_map(LOp::Insert),
            2 => (0..keys).prop_map(LOp::Remove),
            3 => (0..keys).prop_map(LOp::Contains),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The sorted list matches BTreeSet under arbitrary scripts, on an
        /// HTM platform and on a SWOpt-only platform.
        #[test]
        fn list_matches_btreeset(
            script in proptest::collection::vec(lop(64), 0..120),
            htm in any::<bool>(),
        ) {
            let platform = if htm { Platform::testbed() } else { Platform::t2() };
            let ale = Ale::new(AleConfig::new(platform).with_seed(6), StaticPolicy::new(4, 8));
            let list = AleSortedList::new(&ale, 4096);
            let mut model = BTreeSet::new();
            for op in &script {
                match *op {
                    LOp::Insert(k) => prop_assert_eq!(list.insert(k), model.insert(k)),
                    LOp::Remove(k) => prop_assert_eq!(list.remove(k), model.remove(&k)),
                    LOp::Contains(k) => prop_assert_eq!(list.contains(k), model.contains(&k)),
                }
            }
            let snap = list.snapshot();
            let want: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(snap, want, "final contents must match, in order");
        }
    }
}
