//! An ALE-integrated sorted linked list (set semantics).
//!
//! A second data structure beside the paper's HashMap, with a very
//! different elision profile: traversals are O(n), so
//!
//! * HTM read sets grow with the list — on capacity-limited platforms
//!   (Rock) long lookups abort and the policy must learn to stop trying;
//! * SWOpt reads are long, so the §3.2 validate-before-use discipline is
//!   exercised over many steps and interference mid-traversal is common;
//! * mutations are position-dependent (search prefix + short splice),
//!   making the conflicting region a tiny fraction of the critical
//!   section — the paper's §3.2 argument in its sharpest form.
//!
//! Structure: single lock, ascending singly-linked chain of `u64` keys,
//! slab-allocated nodes (ids, not pointers — stale traversals stay
//! memory-safe; see [`crate::node`]).

use std::sync::Arc;

use ale_core::{scope, Ale, AleLock, CsOptions, CsOutcome};
use ale_sync::{SeqVersion, SpinLock};

use crate::node::{NodeSlab, NIL};

/// A sorted set of `u64` keys under one ALE-enabled lock.
pub struct AleSortedList {
    lock: AleLock<SpinLock>,
    ver: SeqVersion,
    head: ale_htm::HtmCell<u64>,
    slab: NodeSlab<u64>,
}

impl AleSortedList {
    /// An empty list registered with `ale` (lock label `listLock`),
    /// holding at most `capacity` keys.
    pub fn new(ale: &Arc<Ale>, capacity: u64) -> Self {
        AleSortedList {
            lock: ale.new_lock("listLock", SpinLock::new()),
            ver: SeqVersion::new(),
            head: ale_htm::HtmCell::new(NIL),
            slab: NodeSlab::with_capacity(capacity),
        }
    }

    /// Find `(prev, node)` such that `node` is the first node with
    /// `key >= target` (either may be NIL). Caller provides protection.
    fn locate(&self, target: u64) -> (u64, u64) {
        let mut prev = NIL;
        let mut cur = self.head.get();
        while cur != NIL {
            let node = self.slab.node(cur);
            if node.key.get() >= target {
                break;
            }
            prev = cur;
            cur = node.next.get();
        }
        (prev, cur)
    }

    /// Membership test with a SWOpt path (validated traversal).
    pub fn contains(&self, key: u64) -> bool {
        self.lock.cs(
            scope!("SortedList::contains"),
            CsOptions::new().with_swopt().non_conflicting(),
            |cs| {
                if cs.is_swopt() {
                    let snap = self.ver.read(true);
                    let mut cur = self.head.get();
                    if !self.ver.validate(snap) {
                        return CsOutcome::SwOptFail;
                    }
                    while cur != NIL {
                        let node = self.slab.node(cur);
                        let k = node.key.get();
                        if !self.ver.validate(snap) {
                            return CsOutcome::SwOptFail;
                        }
                        if k >= key {
                            return CsOutcome::Done(k == key);
                        }
                        cur = node.next.get();
                        if !self.ver.validate(snap) {
                            return CsOutcome::SwOptFail;
                        }
                    }
                    CsOutcome::Done(false)
                } else {
                    let (_, cur) = self.locate(key);
                    CsOutcome::Done(cur != NIL && self.slab.node(cur).key.get() == key)
                }
            },
        )
    }

    /// Insert `key`; returns false if already present.
    pub fn insert(&self, key: u64) -> bool {
        // Pre-allocate outside the critical section.
        let new_id = self.slab.alloc(key, key);
        let inserted = self
            .lock
            .cs_plain(scope!("SortedList::insert"), CsOptions::new(), |_| {
                let (prev, cur) = self.locate(key);
                if cur != NIL && self.slab.node(cur).key.get() == key {
                    return false;
                }
                // Splice in a fully-initialised node: not a conflicting action
                // (optimistic readers see the old or the new chain).
                self.slab.node(new_id).next.set(cur);
                if prev == NIL {
                    self.head.set(new_id);
                } else {
                    self.slab.node(prev).next.set(new_id);
                }
                true
            });
        if !inserted {
            self.slab.free(new_id);
        }
        inserted
    }

    /// Remove `key`; returns whether it was present. The unlink is the
    /// conflicting region (bracketed, with the §3.3 elision).
    pub fn remove(&self, key: u64) -> bool {
        let removed = self
            .lock
            .cs_plain(scope!("SortedList::remove"), CsOptions::new(), |cs| {
                let (prev, cur) = self.locate(key);
                if cur == NIL || self.slab.node(cur).key.get() != key {
                    return None;
                }
                let next = self.slab.node(cur).next.get();
                let bump = cs.could_swopt_be_running();
                if bump {
                    self.ver.begin_conflicting_action();
                }
                if prev == NIL {
                    self.head.set(next);
                } else {
                    self.slab.node(prev).next.set(next);
                }
                if bump {
                    self.ver.end_conflicting_action();
                }
                Some(cur)
            });
        match removed {
            Some(id) => {
                self.slab.free(id);
                true
            }
            None => false,
        }
    }

    /// Length via a Lock-mode sweep (diagnostics/tests).
    pub fn len_slow(&self) -> usize {
        self.lock.cs_plain(
            scope!("SortedList::len"),
            CsOptions::new().without_htm(),
            |_| {
                let mut n = 0;
                let mut cur = self.head.get();
                while cur != NIL {
                    n += 1;
                    cur = self.slab.node(cur).next.get();
                }
                n
            },
        )
    }

    /// Collect the keys in order (Lock-mode; diagnostics/tests).
    pub fn snapshot(&self) -> Vec<u64> {
        self.lock.cs_plain(
            scope!("SortedList::snapshot"),
            CsOptions::new().without_htm(),
            |_| {
                let mut out = Vec::new();
                let mut cur = self.head.get();
                while cur != NIL {
                    let node = self.slab.node(cur);
                    out.push(node.key.get());
                    cur = node.next.get();
                }
                out
            },
        )
    }

    /// The ALE lock protecting the list.
    pub fn lock(&self) -> &AleLock<SpinLock> {
        &self.lock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_core::{AleConfig, StaticPolicy};
    use ale_vtime::{Platform, Sim};

    fn list(platform: Platform) -> (Arc<Ale>, AleSortedList) {
        let ale = Ale::new(
            AleConfig::new(platform).with_seed(19),
            StaticPolicy::new(4, 12),
        );
        let l = AleSortedList::new(&ale, 1 << 14);
        (ale, l)
    }

    #[test]
    fn sorted_set_semantics() {
        let (_ale, l) = list(Platform::testbed());
        assert!(!l.contains(5));
        assert!(l.insert(5));
        assert!(!l.insert(5), "duplicate refused");
        assert!(l.insert(1));
        assert!(l.insert(9));
        assert!(l.insert(7));
        assert_eq!(l.snapshot(), vec![1, 5, 7, 9], "must stay sorted");
        assert!(l.contains(7));
        assert!(!l.contains(6));
        assert!(l.remove(5));
        assert!(!l.remove(5));
        assert_eq!(l.snapshot(), vec![1, 7, 9]);
        assert_eq!(l.len_slow(), 3);
    }

    #[test]
    fn long_lists_exceed_rock_read_capacity_yet_stay_correct() {
        // A 3000-node traversal cannot fit Rock's 2048-entry read set:
        // every deep HTM lookup dies of capacity and falls back, but
        // answers stay right.
        let (ale, l) = list(Platform::rock());
        for k in 0..3_000u64 {
            assert!(l.insert(k * 2));
        }
        assert!(l.contains(5_990));
        assert!(!l.contains(5_991));
        let report = ale.report();
        let lr = report.lock("listLock").unwrap();
        let capacity: u64 = lr.granules.iter().map(|g| g.capacity_aborts).sum();
        assert!(capacity > 0, "deep traversals must trip capacity: {report}");
    }

    #[test]
    fn concurrent_mixed_ops_keep_the_list_sorted() {
        for platform in [Platform::testbed(), Platform::t2()] {
            let (_ale, l) = list(platform.clone());
            let l = &l;
            for k in (0..200u64).step_by(2) {
                l.insert(k);
            }
            Sim::new(platform, 6).with_seed(20).run(|lane| {
                let mut rng = lane.rng().clone();
                for _ in 0..200 {
                    let k = rng.gen_range(200);
                    match rng.gen_range(4) {
                        0 => {
                            l.insert(k);
                        }
                        1 => {
                            l.remove(k);
                        }
                        _ => {
                            std::hint::black_box(l.contains(k));
                        }
                    }
                }
            });
            let snap = l.snapshot();
            let mut sorted = snap.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(snap, sorted, "list must stay sorted and duplicate-free");
            assert_eq!(l.len_slow(), snap.len());
        }
    }
}
