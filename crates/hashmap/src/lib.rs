//! # ale-hashmap — the ALE paper's running example (§3)
//!
//! A chained hash table protected by a single lock, integrated with the
//! ALE library so every operation can execute in HTM, SWOpt, or Lock mode:
//!
//! * [`AleHashMap`] — the full §3 implementation: SWOpt `Get` (Figure 1's
//!   `GetImp<SWOptMode>` twin paths), conflicting-region bracketing with
//!   bump elision, the §3.3 self-abort and fine-grained (nested-CS)
//!   variants, and optional per-bucket version numbers (the extension the
//!   paper proposed but had "not yet experimented with").
//! * [`BaselineHashMap`] — the uninstrumented single-lock baseline.
//!
//! * [`AleSortedList`] — a second structure with a very different elision
//!   profile (O(n) traversals → real capacity pressure, long optimistic
//!   reads, tiny conflicting regions).
//!
//! * [`AleShardedMap`] — the scale refactor: N single-lock shards routed
//!   by the hash's high bits, each its own adaptive granule, with
//!   incremental resize whose migration steps are themselves elided
//!   critical sections (see `shard` module docs).
//!
//! Keys are `u64`; values are any `Copy + Default` type of at most 16
//! bytes (they live in [`ale_htm::HtmCell`]s).

pub mod baseline;
pub mod list;
pub mod map;
pub mod node;
pub mod resize;
pub mod shard;

pub use baseline::BaselineHashMap;
pub use list::AleSortedList;
pub use map::{AleHashMap, MapConfig};
pub use node::{Node, NodeSlab, NIL};
pub use resize::{Table, TableSet, MAX_TABLES, NO_TABLE};
pub use shard::{AleShardedMap, ShardedMapConfig, MAX_SHARDS};
