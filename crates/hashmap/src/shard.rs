//! The sharded, incrementally-resizable ALE map (ROADMAP item 2).
//!
//! [`AleShardedMap`] splits the key space across N shards by the *high*
//! bits of the same Fibonacci hash [`AleHashMap`](crate::AleHashMap) uses
//! for buckets. Each shard owns its own [`AleLock`], [`NodeSlab`], version
//! stripes, and bucket tables — so the per-granule adaptive policy and the
//! StormBreaker see N independent granules and can pick a *different mode
//! per shard* under skewed traffic: a Zipf-hot shard may fall back to Lock
//! mode while cold shards keep eliding.
//!
//! ## Incremental resize
//!
//! A shard whose load factor crosses
//! [`ShardedMapConfig::max_load_permille`] doubles its bucket array. The
//! doubled [`Table`] is installed into the shard's append-only
//! [`TableSet`], and migration proceeds one chain per step, driven
//! piggyback from subsequent mutating operations (or explicitly via
//! [`AleShardedMap::migrate_step`]).
//!
//! The shard's migration state is published through an
//! [`ale_sync::SeqBuffer`] of four words — `[cur_table_slot,
//! prev_table_slot | NO_TABLE, migration_cursor, epoch]` — the
//! *table-pointer seqlock*. The protocol:
//!
//! * **Resize start** (Lock-mode CS; the doubled table is allocated
//!   outside): install the table into the next slot, then publish
//!   `[new, old, 0, epoch+1]`.
//! * **Migration step** (elided CS, HTM or Lock): open a conflicting
//!   region on the metadata version, splice every node of old-table chain
//!   `cursor` into its new-table bucket, close the region, then publish
//!   `cursor+1`. The brackets are what let a SWOpt reader overlap the
//!   splice and *know*: its final validate fails and it retries.
//! * **Finish**: once the cursor walks off the old table, publish
//!   `[cur, NO_TABLE, 0, epoch+1]`.
//!
//! Lookups snapshot the metadata ([`SeqBuffer::load_versioned`]), consult
//! the current table, then — if a migration is live and the key's
//! old-table bucket has not been passed by the cursor — the old table, and
//! re-validate both the key's version stripe and the metadata version
//! before trusting anything they read. Version stripes are indexed by
//! *hash*, not bucket, so a stripe snapshot stays meaningful across a
//! table swap.
//!
//! Mutating operations route new links to the current table; inserts and
//! removes search both tables so a not-yet-migrated key is updated in
//! place. Nodes never move between shards, and tables are never freed
//! ([`TableSet`]), so stale traversals stay memory-safe exactly as in the
//! single-lock map.

use std::sync::Arc;

use ale_core::{scope, Ale, AleLock, CsCtx, CsOptions, CsOutcome, ScopeId};
use ale_htm::HtmCell;
use ale_sync::{CachePadded, SeqBuffer, SeqVersion, SpinLock};

use crate::node::{NodeSlab, NIL};
use crate::resize::{Table, TableSet, MAX_TABLES, NO_TABLE};

/// Maximum shard count (power of two).
pub const MAX_SHARDS: usize = 32;

/// Per-shard lock labels. `'static` names keep the label intern table and
/// granule registry happy, and `ale-trace` parses the shard index back out
/// of the label for the `ale_shard_mode_total{shard,mode}` export.
static SHARD_LABELS: [&str; MAX_SHARDS] = [
    "shard00", "shard01", "shard02", "shard03", "shard04", "shard05", "shard06", "shard07",
    "shard08", "shard09", "shard10", "shard11", "shard12", "shard13", "shard14", "shard15",
    "shard16", "shard17", "shard18", "shard19", "shard20", "shard21", "shard22", "shard23",
    "shard24", "shard25", "shard26", "shard27", "shard28", "shard29", "shard30", "shard31",
];

const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(key: u64) -> u64 {
    key.wrapping_mul(FIB)
}

/// The bucket hash: same bits the single-lock map masks for its buckets.
#[inline]
fn hash_of(key: u64) -> usize {
    (mix(key) >> 32) as usize
}

/// Configuration for [`AleShardedMap`].
#[derive(Debug, Clone)]
pub struct ShardedMapConfig {
    /// Shard count (rounded up to a power of two, clamped to
    /// [`MAX_SHARDS`]).
    pub shards: usize,
    /// Initial bucket chains per shard (rounded up to a power of two).
    pub buckets_per_shard: usize,
    /// Node capacity per shard (live keys + in-flight allocations).
    pub capacity_per_shard: u64,
    /// Version-number stripes per shard (rounded up to a power of two).
    /// Stripes are indexed by hash, so they survive resizes unchanged.
    pub version_stripes: usize,
    /// Resize trigger: a shard doubles once `live_keys * 1000 >
    /// buckets * max_load_permille`. `0` disables resizing entirely.
    pub max_load_permille: u64,
    /// Migration chains moved piggyback per mutating operation.
    pub migrate_steps_per_op: usize,
}

impl Default for ShardedMapConfig {
    fn default() -> Self {
        ShardedMapConfig {
            shards: 8,
            buckets_per_shard: 128,
            capacity_per_shard: 1 << 16,
            version_stripes: 8,
            max_load_permille: 750,
            migrate_steps_per_op: 2,
        }
    }
}

impl ShardedMapConfig {
    pub fn new(shards: usize) -> Self {
        ShardedMapConfig {
            shards,
            ..Default::default()
        }
    }

    pub fn with_buckets_per_shard(mut self, buckets: usize) -> Self {
        self.buckets_per_shard = buckets;
        self
    }

    pub fn with_capacity_per_shard(mut self, capacity: u64) -> Self {
        self.capacity_per_shard = capacity;
        self
    }

    pub fn with_version_stripes(mut self, stripes: usize) -> Self {
        self.version_stripes = stripes.max(1);
        self
    }

    pub fn with_max_load_permille(mut self, permille: u64) -> Self {
        self.max_load_permille = permille;
        self
    }

    pub fn with_migrate_steps_per_op(mut self, steps: usize) -> Self {
        self.migrate_steps_per_op = steps;
        self
    }
}

/// One shard: a self-contained single-lock chained table with resize state.
struct Shard<V: Copy + Default + Send + 'static> {
    lock: AleLock<SpinLock>,
    slab: NodeSlab<V>,
    /// Per-stripe version words, cache-line padded (DESIGN.md §14).
    vers: Vec<CachePadded<SeqVersion>>,
    ver_mask: usize,
    tables: TableSet,
    /// `[cur_slot, prev_slot | NO_TABLE, migration_cursor, epoch]`.
    meta: SeqBuffer<4>,
    /// Live keys. An [`HtmCell`] so HTM-mode updates roll back on abort.
    count: HtmCell<u64>,
    max_load_permille: u64,
}

impl<V: Copy + Default + Send + 'static> Shard<V> {
    #[inline]
    fn ver_of(&self, hash: usize) -> &SeqVersion {
        &self.vers[hash & self.ver_mask]
    }

    /// The insert router: which current-table bucket takes a new link.
    #[inline]
    fn route_insert(&self, hash: usize, curt: &Table, prev: u64) -> usize {
        if cfg!(feature = "mut-shard-route-stale") && prev != NO_TABLE {
            // MUTATION: the router masks with the *pre-resize* table's mask
            // while a migration is live. Keys whose doubled-mask bit is set
            // land in the wrong new-table bucket, where no lookup (which
            // masks correctly) will ever find them — a lost key the shard
            // workload's shadow oracle must catch.
            return hash & self.tables.get(prev).mask;
        }
        hash & curt.mask
    }

    /// SWOpt lookup: `Some(found)` on a validated result, `None` on
    /// interference (caller reports `CsOutcome::SwOptFail`).
    // ale-lint: swopt
    fn get_swopt(&self, hash: usize, key: u64, ret_val: &mut V) -> Option<bool> {
        let (snap, mv) = self.meta.load_versioned();
        let [cur, prev, cursor, _epoch] = snap;
        let ver = self.ver_of(hash);
        let v = ver.read(true);
        // The stripe snapshot must postdate nothing: re-anchor the metadata.
        if !self.meta.version().validate(mv) {
            return None;
        }
        let curt = self.tables.get(cur);
        if let Some(val) = self.search_swopt(curt, hash & curt.mask, key, ver, v, mv)? {
            *ret_val = val;
            return Some(true);
        }
        if prev != NO_TABLE {
            let prevt = self.tables.get(prev);
            let ob = hash & prevt.mask;
            if (ob as u64) >= cursor {
                if let Some(val) = self.search_swopt(prevt, ob, key, ver, v, mv)? {
                    *ret_val = val;
                    return Some(true);
                }
            }
        }
        Some(false)
    }

    /// Walk one chain optimistically, validating the stripe *and* the
    /// table-pointer version before using anything read since the
    /// snapshots. The stripe catches overwrites/unlinks; the metadata
    /// version catches chain splices and table swaps.
    // ale-lint: swopt
    #[allow(clippy::too_many_arguments)]
    fn search_swopt(
        &self,
        t: &Table,
        idx: usize,
        key: u64,
        ver: &SeqVersion,
        v: u64,
        mv: u64,
    ) -> Option<Option<V>> {
        let mut bp = t.bucket(idx).get();
        if !ver.validate(v) || !self.meta.version().validate(mv) {
            return None;
        }
        while bp != NIL {
            let node = self.slab.node(bp);
            let k = node.key.get();
            if !ver.validate(v) || !self.meta.version().validate(mv) {
                return None;
            }
            if k == key {
                let val = node.val.get();
                if !ver.validate(v) || !self.meta.version().validate(mv) {
                    return None;
                }
                return Some(Some(val));
            }
            bp = node.next.get();
            if !ver.validate(v) || !self.meta.version().validate(mv) {
                return None;
            }
        }
        Some(None)
    }

    /// Pessimistic (HTM/Lock) lookup across both tables.
    fn get_locked(&self, hash: usize, key: u64, ret_val: &mut V) -> bool {
        let [cur, prev, cursor, _] = self.meta.load();
        let curt = self.tables.get(cur);
        if let (_, Some(id)) = self.find(curt, hash & curt.mask, key) {
            *ret_val = self.slab.node(id).val.get();
            return true;
        }
        if prev != NO_TABLE {
            let prevt = self.tables.get(prev);
            let ob = hash & prevt.mask;
            if (ob as u64) >= cursor {
                if let (_, Some(id)) = self.find(prevt, ob, key) {
                    *ret_val = self.slab.node(id).val.get();
                    return true;
                }
            }
        }
        false
    }

    /// Chain search under exclusion: `(predecessor id | NIL, node id)`.
    fn find(&self, t: &Table, idx: usize, key: u64) -> (u64, Option<u64>) {
        let mut prev = NIL;
        let mut bp = t.bucket(idx).get();
        while bp != NIL {
            let node = self.slab.node(bp);
            if node.key.get() == key {
                return (prev, Some(bp));
            }
            prev = bp;
            bp = node.next.get();
        }
        (prev, None)
    }

    /// Overwrite `id`'s value inside a conflicting region.
    fn overwrite(&self, cs: &CsCtx<'_>, hash: usize, id: u64, val: V) {
        let ver = self.ver_of(hash);
        let bump = cs.could_swopt_be_running();
        if bump {
            ver.begin_conflicting_action();
        }
        self.slab.node(id).val.set(val);
        if bump {
            ver.end_conflicting_action();
        }
    }

    fn insert_locked(&self, cs: &CsCtx<'_>, hash: usize, key: u64, val: V, new_id: u64) -> bool {
        let [cur, prev, cursor, _] = self.meta.load();
        let curt = self.tables.get(cur);
        let idx = self.route_insert(hash, curt, prev);
        if let (_, Some(id)) = self.find(curt, idx, key) {
            self.overwrite(cs, hash, id, val);
            return false;
        }
        if prev != NO_TABLE {
            let prevt = self.tables.get(prev);
            let ob = hash & prevt.mask;
            if (ob as u64) >= cursor {
                if let (_, Some(id)) = self.find(prevt, ob, key) {
                    // Not yet migrated: overwrite in place — lookups still
                    // consult this table for buckets at or past the cursor.
                    self.overwrite(cs, hash, id, val);
                    return false;
                }
            }
        }
        // Fresh link at the head of the current-table chain. Publishing a
        // fully-initialised node is not a conflicting action: readers see
        // the old or the new chain.
        self.slab.node(new_id).next.set(curt.bucket(idx).get());
        curt.bucket(idx).set(new_id);
        self.count.set(self.count.get() + 1);
        true
    }

    fn remove_locked(&self, cs: &CsCtx<'_>, hash: usize, key: u64) -> Option<u64> {
        let [cur, prev, cursor, _] = self.meta.load();
        let curt = self.tables.get(cur);
        let cidx = hash & curt.mask;
        if let (p, Some(id)) = self.find(curt, cidx, key) {
            self.unlink(cs, hash, curt, cidx, p, id);
            return Some(id);
        }
        if prev != NO_TABLE {
            let prevt = self.tables.get(prev);
            let ob = hash & prevt.mask;
            if (ob as u64) >= cursor {
                if let (p, Some(id)) = self.find(prevt, ob, key) {
                    self.unlink(cs, hash, prevt, ob, p, id);
                    return Some(id);
                }
            }
        }
        None
    }

    /// Splice `id` out of `t`'s chain at `idx` inside a conflicting region.
    fn unlink(&self, cs: &CsCtx<'_>, hash: usize, t: &Table, idx: usize, prev: u64, id: u64) {
        let next = self.slab.node(id).next.get();
        let ver = self.ver_of(hash);
        let bump = cs.could_swopt_be_running();
        if bump {
            ver.begin_conflicting_action();
        }
        if prev == NIL {
            t.bucket(idx).set(next);
        } else {
            self.slab.node(prev).next.set(next);
        }
        if bump {
            ver.end_conflicting_action();
        }
        self.count.set(self.count.get() - 1);
    }

    /// One migration step under the already-entered critical section:
    /// splice old-table chain `cursor` into the current table and publish
    /// the advanced cursor. Returns false when there is nothing to migrate.
    fn migrate_step_in_cs(&self, cs: &CsCtx<'_>) -> bool {
        let [cur, prev, cursor, epoch] = self.meta.load();
        if prev == NO_TABLE {
            return false;
        }
        let prevt = self.tables.get(prev);
        let curt = self.tables.get(cur);
        if cursor as usize > prevt.mask {
            // Every chain moved: retire the old table.
            self.meta.store([cur, NO_TABLE, 0, epoch + 1]);
            return false;
        }
        let idx = cursor as usize;
        let mut bp = prevt.bucket(idx).get();
        let bump = cs.could_swopt_be_running();
        let brackets = bump && !cfg!(feature = "mut-resize-skip-republish");
        // The chain splice is the conflicting action: a SWOpt reader that
        // overlaps it could find the key in *neither* table (gone from the
        // old bucket, not yet linked into the new one). The bracket on the
        // table-pointer version is what turns that torn lookup into a
        // validation failure.
        if brackets {
            self.meta.version().begin_conflicting_action();
        }
        prevt.bucket(idx).set(NIL);
        while bp != NIL {
            let node = self.slab.node(bp);
            let next = node.next.get();
            let nb = hash_of(node.key.get()) & curt.mask;
            node.next.set(curt.bucket(nb).get());
            curt.bucket(nb).set(bp);
            bp = next;
        }
        if brackets {
            self.meta.version().end_conflicting_action();
        }
        if bump && !brackets {
            // MUTATION (`mut-resize-skip-republish`): the chains moved
            // *before* any version bump — a reader that overlapped the
            // splice has already validated successfully against the stale
            // even version and reported the key absent. The late bump
            // cannot un-tell it. ale-check's torn-lookup oracle must catch
            // this.
            self.meta.version().begin_conflicting_action();
            self.meta.version().end_conflicting_action();
        }
        self.meta.store([cur, prev, cursor + 1, epoch]);
        true
    }
}

/// A sharded, incrementally-resizable ALE hash map. See the module docs
/// for the migration protocol.
///
/// Values are `Copy` and at most 16 bytes (they live in [`HtmCell`]s);
/// keys are `u64`.
pub struct AleShardedMap<V: Copy + Default + Send + 'static> {
    shards: Vec<Shard<V>>,
    /// `64 - log2(shards)`; unused when there is a single shard.
    shard_shift: u32,
    migrate_steps: usize,
}

impl<V: Copy + Default + Send + 'static> AleShardedMap<V> {
    /// Create a map registered with `ale`, one lock per shard labelled
    /// `shard00`, `shard01`, …
    pub fn new(ale: &Arc<Ale>, config: ShardedMapConfig) -> Self {
        let shards = config.shards.next_power_of_two().clamp(1, MAX_SHARDS);
        let stripes = config.version_stripes.next_power_of_two();
        let shard_shift = 64 - shards.trailing_zeros();
        let shards = (0..shards)
            .map(|i| {
                let shard = Shard {
                    lock: ale.new_lock(SHARD_LABELS[i], SpinLock::new()),
                    slab: NodeSlab::with_capacity(config.capacity_per_shard),
                    vers: (0..stripes)
                        .map(|_| CachePadded::new(SeqVersion::new()))
                        .collect(),
                    ver_mask: stripes - 1,
                    tables: TableSet::new(Table::new(config.buckets_per_shard)),
                    meta: SeqBuffer::new(),
                    count: HtmCell::new(0),
                    max_load_permille: config.max_load_permille,
                };
                // Initial metadata: current table in slot 0, no migration.
                shard.meta.store([0, NO_TABLE, 0, 0]);
                shard
            })
            .collect();
        AleShardedMap {
            shards,
            shard_shift,
            migrate_steps: config.migrate_steps_per_op,
        }
    }

    /// Which shard owns `key` (the high bits of the Fibonacci hash, so the
    /// bucket bits — the low half — stay independent of the shard choice).
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (mix(key) >> self.shard_shift) as usize
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Look up `key`, copying its value into `ret_val`. Returns whether
    /// the key was present.
    pub fn get(&self, key: u64, ret_val: &mut V) -> bool {
        self.get_scoped(scope!("ShardedMap::get"), key, ret_val)
    }

    /// `get` under a caller-chosen scope.
    pub fn get_scoped(&self, scope: &'static ScopeId, key: u64, ret_val: &mut V) -> bool {
        let s = &self.shards[self.shard_of(key)];
        let hash = hash_of(key);
        s.lock.cs(
            scope,
            CsOptions::new().with_swopt().non_conflicting(),
            |cs| {
                if cs.is_swopt() {
                    match s.get_swopt(hash, key, ret_val) {
                        Some(found) => CsOutcome::Done(found),
                        None => CsOutcome::SwOptFail,
                    }
                } else {
                    CsOutcome::Done(s.get_locked(hash, key, ret_val))
                }
            },
        )
    }

    /// Insert `key → val`, overwriting any existing value. Returns true if
    /// the key was newly inserted. Piggybacks migration steps and the
    /// resize trigger for the owning shard.
    pub fn insert(&self, key: u64, val: V) -> bool {
        let si = self.shard_of(key);
        let s = &self.shards[si];
        let hash = hash_of(key);
        // Allocate and fill the node *outside* the critical section.
        let new_id = s.slab.alloc(key, val);
        let inserted = s
            .lock
            .cs_plain(scope!("ShardedMap::insert"), CsOptions::new(), |cs| {
                s.insert_locked(cs, hash, key, val, new_id)
            });
        if !inserted {
            s.slab.free(new_id);
        }
        self.advance_migration(si);
        self.maybe_start_resize(si);
        inserted
    }

    /// Remove `key`. Returns whether it was present. Piggybacks migration
    /// steps for the owning shard.
    pub fn remove(&self, key: u64) -> bool {
        let si = self.shard_of(key);
        let s = &self.shards[si];
        let hash = hash_of(key);
        let removed = s
            .lock
            .cs_plain(scope!("ShardedMap::remove"), CsOptions::new(), |cs| {
                s.remove_locked(cs, hash, key)
            });
        let out = match removed {
            Some(id) => {
                // Recycle only after the unlink committed.
                s.slab.free(id);
                true
            }
            None => false,
        };
        self.advance_migration(si);
        out
    }

    /// Drive up to `migrate_steps_per_op` chain moves on shard `si`.
    fn advance_migration(&self, si: usize) {
        for _ in 0..self.migrate_steps {
            if !self.migrate_step(si) {
                break;
            }
        }
    }

    /// Move one old-table chain on shard `si` inside its own elided
    /// critical section. Returns true if a chain was moved (i.e. a
    /// migration was live). Public so tests can single-step a migration.
    pub fn migrate_step(&self, si: usize) -> bool {
        let s = &self.shards[si];
        s.lock
            .cs_plain(scope!("ShardedMap::migrate"), CsOptions::new(), |cs| {
                s.migrate_step_in_cs(cs)
            })
    }

    /// Start a resize on shard `si` if its load factor crossed the
    /// threshold and no migration is already live.
    fn maybe_start_resize(&self, si: usize) {
        let s = &self.shards[si];
        if s.max_load_permille == 0 {
            return;
        }
        // Cheap pre-check outside the lock; re-checked under it.
        let [cur, prev, _, _] = s.meta.load();
        if prev != NO_TABLE {
            return;
        }
        let buckets = s.tables.get(cur).len() as u64;
        if s.count.load_consistent() * 1000 <= buckets * s.max_load_permille {
            return;
        }
        let next_slot = (cur + 1) as usize;
        if next_slot >= MAX_TABLES {
            return;
        }
        // The doubled table is allocated outside the critical section; the
        // CS only installs and publishes it. Lock-only: installing a table
        // is a real (non-rollback-able) side effect, so it must not run
        // inside a hardware transaction.
        let mut fresh = Some(Table::new(buckets as usize * 2));
        s.lock.cs_plain(
            scope!("ShardedMap::resize"),
            CsOptions::new().without_htm(),
            |_cs| {
                let [cur2, prev2, _, epoch] = s.meta.load();
                if cur2 != cur || prev2 != NO_TABLE {
                    return;
                }
                if s.count.get() * 1000 <= buckets * s.max_load_permille {
                    return;
                }
                let Some(table) = fresh.take() else { return };
                if !s.tables.install(next_slot, table) {
                    return;
                }
                // Publication order: the slot is populated (release) before
                // the metadata names it.
                s.meta.store([next_slot as u64, cur2, 0, epoch + 1]);
            },
        );
    }

    /// Key count via per-shard Lock-mode sweeps (diagnostics/tests only).
    pub fn len_slow(&self) -> usize {
        (0..self.shards.len())
            .map(|si| self.shard_len_slow(si))
            .sum()
    }

    /// Key count of one shard via a Lock-mode sweep over both tables.
    pub fn shard_len_slow(&self, si: usize) -> usize {
        let s = &self.shards[si];
        s.lock.cs_plain(
            scope!("ShardedMap::len"),
            CsOptions::new().without_htm(),
            |_| {
                let [cur, prev, _, _] = s.meta.load();
                let mut n = 0;
                let mut sweep = |t: &Table| {
                    for i in 0..t.len() {
                        let mut bp = t.bucket(i).get();
                        while bp != NIL {
                            n += 1;
                            bp = s.slab.node(bp).next.get();
                        }
                    }
                };
                sweep(s.tables.get(cur));
                if prev != NO_TABLE {
                    // Chains below the cursor must already be empty; sweep
                    // the whole table so a violated invariant shows up as a
                    // count mismatch.
                    sweep(s.tables.get(prev));
                }
                n
            },
        )
    }

    /// The shard's live-key counter cell (quiescent diagnostics).
    pub fn shard_live_count(&self, si: usize) -> u64 {
        self.shards[si].count.load_consistent()
    }

    /// The published migration state of shard `si`:
    /// `[cur_slot, prev_slot | NO_TABLE, cursor, epoch]`.
    pub fn migration_state(&self, si: usize) -> [u64; 4] {
        self.shards[si].meta.load()
    }

    /// Is a migration currently live on shard `si`?
    pub fn migration_in_progress(&self, si: usize) -> bool {
        self.migration_state(si)[1] != NO_TABLE
    }

    /// Is any shard mid-migration?
    pub fn any_migration_in_progress(&self) -> bool {
        (0..self.shards.len()).any(|si| self.migration_in_progress(si))
    }

    /// The migration-cursor invariant: every old-table chain the cursor
    /// has passed is empty. Checked under the shard lock; trivially true
    /// when no migration is live.
    pub fn old_chains_empty_below_cursor(&self, si: usize) -> bool {
        let s = &self.shards[si];
        s.lock.cs_plain(
            scope!("ShardedMap::invariant"),
            CsOptions::new().without_htm(),
            |_| {
                let [_, prev, cursor, _] = s.meta.load();
                if prev == NO_TABLE {
                    return true;
                }
                let prevt = s.tables.get(prev);
                (0..(cursor as usize).min(prevt.len())).all(|i| prevt.bucket(i).get() == NIL)
            },
        )
    }

    /// Are all version stripes and table-pointer versions even (no
    /// conflicting region left open)?
    pub fn versions_even(&self) -> bool {
        self.shards.iter().all(|s| {
            s.vers.iter().all(|v| v.read(false).is_multiple_of(2))
                && s.meta.version().read(false).is_multiple_of(2)
        })
    }

    /// The ALE lock protecting shard `si` (reports, baselines).
    pub fn shard_lock(&self, si: usize) -> &AleLock<SpinLock> {
        &self.shards[si].lock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_core::AleConfig;
    use ale_vtime::Platform;

    fn ale() -> Arc<Ale> {
        use ale_core::StaticPolicy;
        Ale::new(
            AleConfig::new(Platform::testbed()).with_seed(7),
            StaticPolicy::new(0, 4),
        )
    }

    fn tiny_config(shards: usize) -> ShardedMapConfig {
        ShardedMapConfig::new(shards)
            .with_buckets_per_shard(2)
            .with_capacity_per_shard(1 << 12)
            .with_version_stripes(2)
            .with_max_load_permille(1500)
            .with_migrate_steps_per_op(1)
    }

    #[test]
    fn routes_cover_all_shards_and_stay_in_range() {
        let ale = ale();
        let map: AleShardedMap<u64> = AleShardedMap::new(&ale, ShardedMapConfig::new(8));
        let mut seen = [false; 8];
        for key in 0..4096u64 {
            let si = map.shard_of(key);
            assert!(si < 8);
            seen[si] = true;
        }
        assert!(seen.iter().all(|&s| s), "4096 keys must touch all 8 shards");
        // Single-shard map: everything routes to shard 0 without shifting
        // by 64.
        let one: AleShardedMap<u64> = AleShardedMap::new(&ale, ShardedMapConfig::new(1));
        for key in 0..128u64 {
            assert_eq!(one.shard_of(key), 0);
        }
    }

    #[test]
    fn insert_get_remove_roundtrip_across_resizes() {
        let ale = ale();
        let map: AleShardedMap<u64> = AleShardedMap::new(&ale, tiny_config(4));
        for key in 0..512u64 {
            assert!(map.insert(key, key * 3));
            assert!(!map.insert(key, key * 7), "second insert overwrites");
        }
        assert_eq!(map.len_slow(), 512);
        let mut v = 0u64;
        for key in 0..512u64 {
            assert!(map.get(key, &mut v), "key {key} lost");
            assert_eq!(v, key * 7);
        }
        assert!(!map.get(9999, &mut v));
        for key in (0..512u64).step_by(2) {
            assert!(map.remove(key));
            assert!(!map.remove(key), "double remove");
        }
        assert_eq!(map.len_slow(), 256);
        // The tiny table must have resized at least once per shard.
        for si in 0..map.shard_count() {
            assert!(
                map.migration_state(si)[3] > 0,
                "shard {si} never resized under 512 keys on 2 buckets"
            );
        }
        assert!(map.versions_even());
    }

    #[test]
    fn migration_steps_preserve_the_cursor_invariant() {
        let ale = ale();
        // No piggyback steps: the test drives every step by hand.
        let cfg = tiny_config(2).with_migrate_steps_per_op(0);
        let map: AleShardedMap<u64> = AleShardedMap::new(&ale, cfg);
        for key in 0..64u64 {
            map.insert(key, key);
        }
        assert!(map.any_migration_in_progress(), "load factor must trip");
        for si in 0..map.shard_count() {
            let mut guard = 0;
            while map.migrate_step(si) {
                assert!(
                    map.old_chains_empty_below_cursor(si),
                    "cursor invariant broken on shard {si}"
                );
                guard += 1;
                assert!(guard < 10_000, "migration never terminates");
            }
            assert!(!map.migration_in_progress(si));
        }
        assert_eq!(map.len_slow(), 64);
        let mut v = 0;
        for key in 0..64u64 {
            assert!(map.get(key, &mut v));
            assert_eq!(v, key);
        }
    }

    #[test]
    fn per_shard_counts_match_enumeration() {
        let ale = ale();
        let map: AleShardedMap<u64> = AleShardedMap::new(&ale, tiny_config(4));
        for key in 0..300u64 {
            map.insert(key, key);
        }
        for key in (0..300u64).step_by(3) {
            map.remove(key);
        }
        let mut per_shard = vec![0u64; map.shard_count()];
        let mut v = 0;
        for key in 0..300u64 {
            if map.get(key, &mut v) {
                per_shard[map.shard_of(key)] += 1;
            }
        }
        for (si, &expect) in per_shard.iter().enumerate() {
            assert_eq!(map.shard_len_slow(si) as u64, expect);
            assert_eq!(map.shard_live_count(si), expect);
        }
    }
}
