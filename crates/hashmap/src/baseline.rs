//! The uninstrumented baseline: the same chained hash table under a plain
//! single lock, with no ALE integration at all ("Uninstrumented" in the
//! paper's figures). Comparing it against an ALE-integrated, Lock-only run
//! ("Instrumented") measures the library's bookkeeping overhead.

use ale_sync::{RawLock, SpinLock};

use crate::node::{NodeSlab, NIL};

/// Plain single-lock chained hash map.
pub struct BaselineHashMap<V: Copy + Default + Send + 'static> {
    lock: SpinLock,
    buckets: Vec<ale_htm::HtmCell<u64>>,
    slab: NodeSlab<V>,
    mask: usize,
}

impl<V: Copy + Default + Send + 'static> BaselineHashMap<V> {
    pub fn new(buckets: usize, capacity: u64) -> Self {
        let buckets = buckets.next_power_of_two();
        BaselineHashMap {
            lock: SpinLock::new(),
            buckets: (0..buckets).map(|_| ale_htm::HtmCell::new(NIL)).collect(),
            slab: NodeSlab::with_capacity(capacity),
            mask: buckets - 1,
        }
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    pub fn get(&self, key: u64, ret_val: &mut V) -> bool {
        self.lock.acquire();
        let idx = self.bucket_of(key);
        let mut bp = self.buckets[idx].get();
        let mut found = false;
        while bp != NIL {
            let node = self.slab.node(bp);
            if node.key.get() == key {
                *ret_val = node.val.get();
                found = true;
                break;
            }
            bp = node.next.get();
        }
        self.lock.release();
        found
    }

    pub fn insert(&self, key: u64, val: V) -> bool {
        let new_id = self.slab.alloc(key, val);
        self.lock.acquire();
        let idx = self.bucket_of(key);
        let mut bp = self.buckets[idx].get();
        let mut inserted = true;
        while bp != NIL {
            let node = self.slab.node(bp);
            if node.key.get() == key {
                node.val.set(val);
                inserted = false;
                break;
            }
            bp = node.next.get();
        }
        if inserted {
            self.slab.node(new_id).next.set(self.buckets[idx].get());
            self.buckets[idx].set(new_id);
        }
        self.lock.release();
        if !inserted {
            self.slab.free(new_id);
        }
        inserted
    }

    pub fn remove(&self, key: u64) -> bool {
        self.lock.acquire();
        let idx = self.bucket_of(key);
        let mut prev = NIL;
        let mut bp = self.buckets[idx].get();
        while bp != NIL {
            let node = self.slab.node(bp);
            if node.key.get() == key {
                break;
            }
            prev = bp;
            bp = node.next.get();
        }
        let removed = bp != NIL;
        if removed {
            let next = self.slab.node(bp).next.get();
            if prev == NIL {
                self.buckets[idx].set(next);
            } else {
                self.slab.node(prev).next.set(next);
            }
        }
        self.lock.release();
        if removed {
            self.slab.free(bp);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let m: BaselineHashMap<u64> = BaselineHashMap::new(16, 1000);
        let mut v = 0;
        assert!(!m.get(1, &mut v));
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 11), "second insert overwrites");
        assert!(m.get(1, &mut v));
        assert_eq!(v, 11);
        assert!(m.remove(1));
        assert!(!m.remove(1));
        assert!(!m.get(1, &mut v));
    }

    #[test]
    fn many_keys_with_collisions() {
        let m: BaselineHashMap<u64> = BaselineHashMap::new(4, 10_000);
        for k in 0..500 {
            assert!(m.insert(k, k * 2));
        }
        let mut v = 0;
        for k in 0..500 {
            assert!(m.get(k, &mut v), "key {k}");
            assert_eq!(v, k * 2);
        }
        for k in (0..500).step_by(2) {
            assert!(m.remove(k));
        }
        for k in 0..500 {
            assert_eq!(m.get(k, &mut v), k % 2 == 1);
        }
    }
}
