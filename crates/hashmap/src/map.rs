//! The ALE-integrated HashMap (§3 of the paper).
//!
//! A chained hash table protected by a single lock (`tblLock`), with:
//!
//! * **Get** — SWOpt path generated from the same source as the pessimistic
//!   path via a const-generic flag (the paper's `GetImp<SWOptMode>` twin
//!   template instantiation, Figure 1), validating the version number
//!   before using any value read since the last validation;
//! * **Insert / Remove** — executed in HTM or Lock mode; the code that
//!   interferes with SWOpt readers (the unlink, the value overwrite) is
//!   bracketed with `Begin/EndConflictingAction`, and the bump is elided
//!   when `COULD_SWOPT_BE_RUNNING` says no SWOpt reader can observe it
//!   (§3.3);
//! * **fine-grained variants** (`insert_fine`/`remove_fine`, §3.3) — the
//!   search prefix runs in SWOpt mode and only the mutating suffix takes a
//!   nested, non-SWOpt critical section, re-validating before committing
//!   to the conflicting action;
//! * **self-abort variant** (`remove_self_abort`, §3.3) — the whole
//!   operation runs in SWOpt mode and *self-aborts* out of it when it
//!   discovers it must mutate;
//! * **per-bucket version numbers** — the paper's "concurrency could be
//!   improved by using multiple version numbers, say one for each HashMap
//!   bucket. We have not yet experimented with this option." We did:
//!   configure [`MapConfig::version_stripes`] > 1 (ablation A3).

use std::sync::Arc;

use ale_core::{scope, Ale, AleLock, CsOptions, CsOutcome, ScopeId};
use ale_htm::HtmCell;
use ale_sync::{CachePadded, SeqVersion, SpinLock};

use crate::node::{NodeSlab, NIL};

/// Configuration for [`AleHashMap`].
#[derive(Debug, Clone)]
pub struct MapConfig {
    /// Number of bucket chains (rounded up to a power of two).
    pub buckets: usize,
    /// Node capacity (live keys + in-flight allocations).
    pub capacity: u64,
    /// Version-number stripes: 1 = the paper's single `tblVer`; more
    /// stripes give per-bucket(-group) versions (ablation A3).
    pub version_stripes: usize,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            buckets: 1024,
            capacity: 1 << 20,
            version_stripes: 1,
        }
    }
}

impl MapConfig {
    pub fn new(buckets: usize) -> Self {
        MapConfig {
            buckets,
            ..Default::default()
        }
    }

    pub fn with_capacity(mut self, capacity: u64) -> Self {
        self.capacity = capacity;
        self
    }

    pub fn with_version_stripes(mut self, stripes: usize) -> Self {
        self.version_stripes = stripes.max(1);
        self
    }
}

/// The paper's HashMap: one lock, chained buckets, three execution modes.
///
/// Values are `Copy` and at most 16 bytes (they live in
/// [`HtmCell`]s); keys are `u64`.
pub struct AleHashMap<V: Copy + Default + Send + 'static> {
    lock: AleLock<SpinLock>,
    buckets: Vec<HtmCell<u64>>,
    /// Per-stripe version words, each padded onto its own cache line
    /// (DESIGN.md §14): stripes exist to split writer traffic, which is
    /// defeated if neighbouring stripes share a line.
    vers: Vec<CachePadded<SeqVersion>>,
    slab: NodeSlab<V>,
    mask: usize,
    ver_mask: usize,
}

impl<V: Copy + Default + Send + 'static> AleHashMap<V> {
    /// Create a map registered with `ale` under the lock label `tblLock`.
    pub fn new(ale: &Arc<Ale>, config: MapConfig) -> Self {
        let buckets = config.buckets.next_power_of_two();
        let stripes = config.version_stripes.next_power_of_two().min(buckets);
        AleHashMap {
            lock: ale.new_lock("tblLock", SpinLock::new()),
            buckets: (0..buckets).map(|_| HtmCell::new(NIL)).collect(),
            vers: (0..stripes)
                .map(|_| CachePadded::new(SeqVersion::new()))
                .collect(),
            slab: NodeSlab::with_capacity(config.capacity),
            mask: buckets - 1,
            ver_mask: stripes - 1,
        }
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        // Fibonacci hashing.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    #[inline]
    fn ver_of(&self, bucket: usize) -> &SeqVersion {
        &self.vers[bucket & self.ver_mask]
    }

    /// The paper's Figure 1: one source, two instantiations. Returns 1 if
    /// found (value copied to `ret_val`), 0 if absent, -1 on SWOpt
    /// interference.
    // ale-lint: swopt
    fn get_impl<const SWOPT: bool>(&self, key: u64, ret_val: &mut V) -> i32 {
        let idx = self.bucket_of(key);
        let ver = self.ver_of(idx);
        let v = if SWOPT { ver.read(true) } else { 0 };
        let mut bp = self.buckets[idx].get();
        if SWOPT && !ver.validate(v) {
            return -1;
        }
        while bp != NIL {
            let node = self.slab.node(bp);
            let k = node.key.get();
            if SWOPT && !ver.validate(v) {
                return -1;
            }
            if k == key {
                let val = node.val.get();
                // Self-test mutation (`mut-skip-validate`): dropping the
                // validation after copying the value lets a SWOpt reader
                // return data from a node recycled mid-read — ale-check's
                // value-integrity oracle must catch it.
                if SWOPT && !cfg!(feature = "mut-skip-validate") && !ver.validate(v) {
                    return -1;
                }
                *ret_val = val;
                return 1;
            }
            bp = node.next.get();
            if SWOPT && !ver.validate(v) {
                return -1;
            }
        }
        0
    }

    /// Look up `key`, copying its value into `ret_val`. Returns whether the
    /// key was present.
    pub fn get(&self, key: u64, ret_val: &mut V) -> bool {
        self.get_scoped(scope!("HashMap::get"), key, ret_val)
    }

    /// `get` under a caller-chosen scope (the `BEGIN_CS_NAMED` pattern:
    /// distinct call sites can adapt independently).
    pub fn get_scoped(&self, scope: &'static ScopeId, key: u64, ret_val: &mut V) -> bool {
        self.lock.cs(
            scope,
            CsOptions::new().with_swopt().non_conflicting(),
            |cs| {
                let r = if cs.is_swopt() {
                    self.get_impl::<true>(key, ret_val)
                } else {
                    self.get_impl::<false>(key, ret_val)
                };
                if r < 0 {
                    CsOutcome::SwOptFail
                } else {
                    CsOutcome::Done(r == 1)
                }
            },
        )
    }

    /// Insert `key → val`, overwriting any existing value. Returns true if
    /// the key was newly inserted.
    pub fn insert(&self, key: u64, val: V) -> bool {
        // Allocate and fill the node *outside* the critical section; only
        // the link is published inside it.
        let new_id = self.slab.alloc(key, val);
        let idx = self.bucket_of(key);
        let ver = self.ver_of(idx);
        let inserted = self
            .lock
            .cs_plain(scope!("HashMap::insert"), CsOptions::new(), |cs| {
                let mut bp = self.buckets[idx].get();
                while bp != NIL {
                    let node = self.slab.node(bp);
                    if node.key.get() == key {
                        // Overwrite: this is the conflicting region — a SWOpt
                        // reader may be about to copy this value.
                        let bump = cs.could_swopt_be_running();
                        if bump {
                            ver.begin_conflicting_action();
                        }
                        node.val.set(val);
                        if bump {
                            ver.end_conflicting_action();
                        }
                        return false;
                    }
                    bp = node.next.get();
                }
                // Link at head. Publishing a fully-initialised node is not a
                // conflicting action: readers see the old or the new chain.
                self.slab.node(new_id).next.set(self.buckets[idx].get());
                self.buckets[idx].set(new_id);
                true
            });
        if !inserted {
            self.slab.free(new_id);
        }
        inserted
    }

    /// Remove `key`. Returns whether it was present. This is the paper's
    /// §3.2 example: only the unlink is bracketed as conflicting.
    pub fn remove(&self, key: u64) -> bool {
        let idx = self.bucket_of(key);
        let ver = self.ver_of(idx);
        let removed = self
            .lock
            .cs_plain(scope!("HashMap::remove"), CsOptions::new(), |cs| {
                // <search a node containing the given key>
                let mut prev = NIL;
                let mut bp = self.buckets[idx].get();
                while bp != NIL {
                    let node = self.slab.node(bp);
                    if node.key.get() == key {
                        break;
                    }
                    prev = bp;
                    bp = node.next.get();
                }
                if bp == NIL {
                    return None;
                }
                // BeginConflictingAction(); unlink; EndConflictingAction();
                let next = self.slab.node(bp).next.get();
                // Self-test mutation (`mut-skip-version-bump`): unlinking
                // without bumping the version makes concurrent SWOpt readers
                // follow a recycled node unnoticed — ale-check must catch it.
                let bump = cs.could_swopt_be_running() && !cfg!(feature = "mut-skip-version-bump");
                if bump {
                    ver.begin_conflicting_action();
                }
                if prev == NIL {
                    self.buckets[idx].set(next);
                } else {
                    self.slab.node(prev).next.set(next);
                }
                if bump {
                    ver.end_conflicting_action();
                }
                Some(bp)
            });
        match removed {
            Some(id) => {
                // Recycle only after the unlink committed.
                self.slab.free(id);
                true
            }
            None => false,
        }
    }

    // ---------------------------------------------------------------------
    // §3.3 advanced variants
    // ---------------------------------------------------------------------

    /// Remove with the **self-abort idiom**: run the whole operation in
    /// SWOpt mode; when (and only when) a conflicting action turns out to
    /// be needed, abort out of SWOpt and redo pessimistically.
    pub fn remove_self_abort(&self, key: u64) -> bool {
        let idx = self.bucket_of(key);
        let ver = self.ver_of(idx);
        let removed = self.lock.cs(
            scope!("HashMap::remove_self_abort"),
            CsOptions::new().with_swopt(),
            |cs| {
                if cs.is_swopt() {
                    // Optimistic miss-check: absent keys need no mutation.
                    let mut unused = V::default();
                    return match self.get_impl::<true>(key, &mut unused) {
                        -1 => CsOutcome::SwOptFail,
                        0 => CsOutcome::Done(None),
                        _ => CsOutcome::SwOptSelfAbort, // present: must mutate
                    };
                }
                // Pessimistic path: identical to `remove`.
                let mut prev = NIL;
                let mut bp = self.buckets[idx].get();
                while bp != NIL {
                    let node = self.slab.node(bp);
                    if node.key.get() == key {
                        break;
                    }
                    prev = bp;
                    bp = node.next.get();
                }
                if bp == NIL {
                    return CsOutcome::Done(None);
                }
                let next = self.slab.node(bp).next.get();
                let bump = cs.could_swopt_be_running();
                if bump {
                    ver.begin_conflicting_action();
                }
                if prev == NIL {
                    self.buckets[idx].set(next);
                } else {
                    self.slab.node(prev).next.set(next);
                }
                if bump {
                    ver.end_conflicting_action();
                }
                CsOutcome::Done(Some(bp))
            },
        );
        match removed {
            Some(id) => {
                self.slab.free(id);
                true
            }
            None => false,
        }
    }

    /// Remove with a **SWOpt search prefix** and a nested, non-SWOpt
    /// critical section for the unlink (§3.3). The nested critical section
    /// first re-validates; on interference the whole operation retries
    /// after reporting the SWOpt failure.
    pub fn remove_fine(&self, key: u64) -> bool {
        let idx = self.bucket_of(key);
        let ver = self.ver_of(idx);
        let removed = self.lock.cs(
            scope!("HashMap::remove_fine"),
            CsOptions::new().with_swopt(),
            |cs| {
                if !cs.is_swopt() {
                    // HTM/Lock execution: plain pessimistic removal.
                    return CsOutcome::Done(self.remove_pessimistic(cs, idx, key));
                }
                // SWOpt search prefix.
                let v = ver.read(true);
                let mut prev = NIL;
                let mut bp = self.buckets[idx].get();
                if !ver.validate(v) {
                    return CsOutcome::SwOptFail;
                }
                while bp != NIL {
                    let node = self.slab.node(bp);
                    let k = node.key.get();
                    if !ver.validate(v) {
                        return CsOutcome::SwOptFail;
                    }
                    if k == key {
                        break;
                    }
                    prev = bp;
                    bp = node.next.get();
                    if !ver.validate(v) {
                        return CsOutcome::SwOptFail;
                    }
                }
                if bp == NIL {
                    return CsOutcome::Done(None);
                }
                // Nested critical section (no SWOpt path) for the unlink.
                let unlinked = self.lock.cs_plain(
                    scope!("HashMap::remove_fine::unlink"),
                    CsOptions::new(),
                    |ics| {
                        // "the nested critical section must first check if
                        // a conflict has occurred" (§3.3).
                        if !ver.validate(v) {
                            return None;
                        }
                        // The version said nothing conflicting happened,
                        // but non-conflicting inserts don't bump it: verify
                        // the splice point is still what we found.
                        let prev_cell = if prev == NIL {
                            &self.buckets[idx]
                        } else {
                            &self.slab.node(prev).next
                        };
                        if prev_cell.get() != bp {
                            return None;
                        }
                        let next = self.slab.node(bp).next.get();
                        let bump = ics.could_swopt_be_running();
                        if bump {
                            ver.begin_conflicting_action();
                        }
                        prev_cell.set(next);
                        if bump {
                            ver.end_conflicting_action();
                        }
                        Some(bp)
                    },
                );
                match unlinked {
                    Some(id) => CsOutcome::Done(Some(id)),
                    // Conflict detected inside the nested CS: report the
                    // SWOpt failure and retry the whole operation.
                    None => CsOutcome::SwOptFail,
                }
            },
        );
        match removed {
            Some(id) => {
                self.slab.free(id);
                true
            }
            None => false,
        }
    }

    /// Insert with a SWOpt search prefix and a nested critical section for
    /// the publication (§3.3's "we can provide a SWOpt path for the first
    /// parts of these methods too").
    pub fn insert_fine(&self, key: u64, val: V) -> bool {
        let new_id = self.slab.alloc(key, val);
        let idx = self.bucket_of(key);
        let ver = self.ver_of(idx);
        let inserted = self.lock.cs(
            scope!("HashMap::insert_fine"),
            CsOptions::new().with_swopt(),
            |cs| {
                if !cs.is_swopt() {
                    return CsOutcome::Done(self.insert_pessimistic(cs, idx, key, val, new_id));
                }
                // SWOpt search prefix: find whether the key exists.
                let v = ver.read(true);
                let mut found = NIL;
                let mut bp = self.buckets[idx].get();
                if !ver.validate(v) {
                    return CsOutcome::SwOptFail;
                }
                while bp != NIL {
                    let node = self.slab.node(bp);
                    let k = node.key.get();
                    if !ver.validate(v) {
                        return CsOutcome::SwOptFail;
                    }
                    if k == key {
                        found = bp;
                        break;
                    }
                    bp = node.next.get();
                    if !ver.validate(v) {
                        return CsOutcome::SwOptFail;
                    }
                }
                let head = self.buckets[idx].get();
                if !ver.validate(v) {
                    return CsOutcome::SwOptFail;
                }
                // Nested CS performs the mutation.
                let done = self.lock.cs_plain(
                    scope!("HashMap::insert_fine::publish"),
                    CsOptions::new(),
                    |ics| {
                        if !ver.validate(v) {
                            return None;
                        }
                        if found != NIL {
                            // Overwrite: check the node is still reachable
                            // (recycling requires a version bump, which
                            // validate caught, so key identity holds).
                            let bump = ics.could_swopt_be_running();
                            if bump {
                                ver.begin_conflicting_action();
                            }
                            self.slab.node(found).val.set(val);
                            if bump {
                                ver.end_conflicting_action();
                            }
                            return Some(false);
                        }
                        // Fresh insert: the head we saw must be unchanged,
                        // else another insert may have added our key.
                        if self.buckets[idx].get() != head {
                            return None;
                        }
                        self.slab.node(new_id).next.set(head);
                        self.buckets[idx].set(new_id);
                        Some(true)
                    },
                );
                match done {
                    Some(flag) => CsOutcome::Done(flag),
                    None => CsOutcome::SwOptFail,
                }
            },
        );
        if !inserted {
            self.slab.free(new_id);
        }
        inserted
    }

    fn remove_pessimistic(&self, cs: &ale_core::CsCtx<'_>, idx: usize, key: u64) -> Option<u64> {
        let ver = self.ver_of(idx);
        let mut prev = NIL;
        let mut bp = self.buckets[idx].get();
        while bp != NIL {
            let node = self.slab.node(bp);
            if node.key.get() == key {
                break;
            }
            prev = bp;
            bp = node.next.get();
        }
        if bp == NIL {
            return None;
        }
        let next = self.slab.node(bp).next.get();
        let bump = cs.could_swopt_be_running();
        if bump {
            ver.begin_conflicting_action();
        }
        if prev == NIL {
            self.buckets[idx].set(next);
        } else {
            self.slab.node(prev).next.set(next);
        }
        if bump {
            ver.end_conflicting_action();
        }
        Some(bp)
    }

    fn insert_pessimistic(
        &self,
        cs: &ale_core::CsCtx<'_>,
        idx: usize,
        key: u64,
        val: V,
        new_id: u64,
    ) -> bool {
        let ver = self.ver_of(idx);
        let mut bp = self.buckets[idx].get();
        while bp != NIL {
            let node = self.slab.node(bp);
            if node.key.get() == key {
                let bump = cs.could_swopt_be_running();
                if bump {
                    ver.begin_conflicting_action();
                }
                node.val.set(val);
                if bump {
                    ver.end_conflicting_action();
                }
                return false;
            }
            bp = node.next.get();
        }
        self.slab.node(new_id).next.set(self.buckets[idx].get());
        self.buckets[idx].set(new_id);
        true
    }

    /// Key count via a Lock-mode sweep (diagnostics/tests only).
    pub fn len_slow(&self) -> usize {
        self.lock.cs_plain(
            scope!("HashMap::len"),
            CsOptions::new().without_htm(),
            |_| {
                let mut n = 0;
                for b in &self.buckets {
                    let mut bp = b.get();
                    while bp != NIL {
                        n += 1;
                        bp = self.slab.node(bp).next.get();
                    }
                }
                n
            },
        )
    }

    /// The ALE lock protecting the table (reports, baselines).
    pub fn lock(&self) -> &AleLock<SpinLock> {
        &self.lock
    }

    /// Are all version stripes even (no conflicting region left open)?
    /// ale-check's post-run oracle: a crash/abort path that leaves a
    /// version odd would wedge every future SWOpt reader.
    pub fn versions_even(&self) -> bool {
        self.vers.iter().all(|v| v.read(false).is_multiple_of(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_core::{AleConfig, StaticPolicy};
    use ale_vtime::Platform;

    fn ale() -> Arc<Ale> {
        Ale::new(
            AleConfig::new(Platform::testbed()).with_seed(1),
            StaticPolicy::new(0, 4),
        )
    }

    /// Satellite: pin the documented `version_stripes` clamping behaviour.
    /// More stripes than buckets is useless (a stripe would never be the
    /// sole owner of a bucket), so construction clamps `stripes` to the
    /// rounded bucket count — and `ver_of` must never index out of bounds
    /// for *any* bucket the hash can produce, power of two or not.
    #[test]
    fn version_stripes_clamp_to_buckets() {
        let ale = ale();
        // 100 buckets round to 128; 500 stripes round to 512 then clamp.
        let map: AleHashMap<u64> = AleHashMap::new(
            &ale,
            MapConfig {
                buckets: 100,
                capacity: 1 << 10,
                version_stripes: 500,
            },
        );
        assert_eq!(map.buckets.len(), 128);
        assert_eq!(map.vers.len(), 128, "stripes must clamp to buckets");
        assert_eq!(map.ver_mask, map.vers.len() - 1);
    }

    #[test]
    fn ver_of_stays_in_bounds_for_non_power_of_two_inputs() {
        let ale = ale();
        for (buckets, stripes) in [(1, 1), (3, 7), (5, 100), (100, 6), (7, 0), (64, 64)] {
            let map: AleHashMap<u64> = AleHashMap::new(
                &ale,
                MapConfig {
                    buckets,
                    capacity: 1 << 10,
                    version_stripes: stripes,
                },
            );
            assert!(map.vers.len().is_power_of_two());
            assert!(
                map.vers.len() <= map.buckets.len(),
                "{stripes} stripes on {buckets} buckets must clamp"
            );
            // `ver_of` takes a bucket index, but must tolerate any usize a
            // caller could derive from a hash: masking keeps it in bounds.
            for raw in [0usize, 1, 2, 63, 64, 127, 1000, usize::MAX] {
                let _ = map.ver_of(raw); // would panic on out-of-bounds
            }
            // Every actual bucket maps to a live stripe.
            for b in 0..map.buckets.len() {
                let _ = map.ver_of(b);
            }
        }
    }
}
