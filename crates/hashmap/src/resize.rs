//! Bucket tables and the append-only table set behind incremental resize.
//!
//! A resizing shard never frees or reuses a bucket array: each doubling
//! installs a fresh [`Table`] into the next [`TableSet`] slot, and the
//! shard's seqlock-published metadata names tables by *slot index*, not by
//! pointer. That gives SWOpt readers the same structural guarantee the
//! [`NodeSlab`](crate::node::NodeSlab) gives for nodes — a stale traversal
//! can only ever reach mapped, well-formed memory, and validation (not
//! memory lifetime) decides whether what it read is current.
//!
//! Publication order is load bearing: a table pointer is stored into its
//! slot (release) *before* the slot index is published through the shard's
//! `SeqBuffer` metadata, so any reader that can name a slot finds it
//! populated.

use std::sync::atomic::{AtomicPtr, Ordering};

use ale_htm::HtmCell;

use crate::node::NIL;

/// Sentinel slot index meaning "no previous table" (migration idle).
pub const NO_TABLE: u64 = u64::MAX;

/// Table-set slots per shard. Starting from even a 2-bucket table, 16
/// doublings outgrow any capacity the node slab can hold.
pub const MAX_TABLES: usize = 16;

/// One bucket array: chain heads (node ids into the owning shard's slab)
/// plus the power-of-two index mask.
pub struct Table {
    buckets: Box<[HtmCell<u64>]>,
    /// `buckets.len() - 1`; bucket index is `hash & mask`.
    pub mask: usize,
}

impl Table {
    /// An empty table with `buckets` chains (rounded up to a power of two).
    pub fn new(buckets: usize) -> Self {
        let n = buckets.max(1).next_power_of_two();
        Table {
            buckets: (0..n).map(|_| HtmCell::new(NIL)).collect(),
            mask: n - 1,
        }
    }

    /// Number of bucket chains.
    pub fn len(&self) -> usize {
        self.mask + 1
    }

    pub fn is_empty(&self) -> bool {
        false // a table always has at least one bucket
    }

    /// The chain-head cell for bucket `idx`.
    #[inline]
    pub fn bucket(&self, idx: usize) -> &HtmCell<u64> {
        &self.buckets[idx]
    }
}

/// Append-only storage for a shard's bucket tables.
///
/// Slot 0 is the initial table; each resize installs the doubled table into
/// the next slot. Slots are written once and never cleared while the set
/// lives, so an index obtained from a (possibly stale but validated-later)
/// metadata snapshot always dereferences safely.
pub struct TableSet {
    slots: [AtomicPtr<Table>; MAX_TABLES],
}

// SAFETY: slot pointers are written once (install is serialised by the
// owning shard's lock) and never freed until drop; Table itself is Sync.
unsafe impl Send for TableSet {}
unsafe impl Sync for TableSet {}

impl TableSet {
    /// A set whose slot 0 holds `initial`.
    pub fn new(initial: Table) -> Self {
        let set = TableSet {
            slots: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        };
        let ok = set.install(0, initial);
        debug_assert!(ok);
        set
    }

    /// Install `table` into `slot`. Returns false (dropping `table`) if the
    /// slot is out of range or already occupied. Callers publish the slot
    /// index only after this returns true.
    pub fn install(&self, slot: usize, table: Table) -> bool {
        if slot >= MAX_TABLES {
            return false;
        }
        let ptr = Box::into_raw(Box::new(table));
        match self.slots[slot].compare_exchange(
            std::ptr::null_mut(),
            ptr,
            Ordering::Release,
            Ordering::Relaxed,
        ) {
            Ok(_) => true,
            Err(_) => {
                // SAFETY: the pointer we just created never escaped.
                unsafe { drop(Box::from_raw(ptr)) };
                false
            }
        }
    }

    /// Is `slot` populated?
    pub fn is_installed(&self, slot: usize) -> bool {
        slot < MAX_TABLES && !self.slots[slot].load(Ordering::Acquire).is_null()
    }

    /// The table at a published slot index.
    ///
    /// The index must come from this set's owning shard — either its
    /// metadata snapshot or slot 0 — which guarantees the slot was
    /// installed before it became nameable.
    #[inline]
    pub fn get(&self, slot: u64) -> &Table {
        let p = self.slots[slot as usize].load(Ordering::Acquire);
        debug_assert!(!p.is_null(), "table slot {slot} read before install");
        // SAFETY: installed slots are never cleared while the set lives.
        unsafe { &*p }
    }
}

impl Drop for TableSet {
    fn drop(&mut self) {
        for s in &self.slots {
            let p = s.load(Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: reconstruct exactly what install's into_raw made.
                unsafe { drop(Box::from_raw(p)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rounds_to_power_of_two() {
        assert_eq!(Table::new(0).len(), 1);
        assert_eq!(Table::new(3).len(), 4);
        assert_eq!(Table::new(4).len(), 4);
        let t = Table::new(6);
        assert_eq!(t.len(), 8);
        assert_eq!(t.mask, 7);
        for i in 0..t.len() {
            assert_eq!(t.bucket(i).get(), NIL);
        }
    }

    #[test]
    fn install_is_once_only() {
        let set = TableSet::new(Table::new(2));
        assert!(set.is_installed(0));
        assert!(!set.install(0, Table::new(4)), "slot 0 already taken");
        assert!(set.install(1, Table::new(4)));
        assert_eq!(set.get(1).len(), 4);
        assert!(!set.install(1, Table::new(8)));
        assert_eq!(set.get(1).len(), 4, "second install must not replace");
        assert!(!set.install(MAX_TABLES, Table::new(2)), "out of range");
        assert!(!set.is_installed(2));
    }
}
