//! The node slab: chunked, append-only storage with striped free lists.
//!
//! The paper's optimistic reads are safe because "the application does not
//! deallocate memory during its lifetime" (§3.2): a SWOpt reader may land
//! on a node that was just unlinked — validation will make it retry — but
//! the memory must stay mapped and well-formed. We get the same guarantee
//! structurally: nodes live in chunks that are *never* freed while the map
//! exists, links are integer node ids rather than pointers (so a stale
//! traversal is always memory-safe), and removed nodes are recycled through
//! free lists only after their unlink bumped the version number, which
//! forces any reader that could still see them to fail validation before
//! using recycled fields.

use ale_htm::HtmCell;
use ale_sync::TickMutex;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// Nodes per chunk (power of two).
const CHUNK_SHIFT: u32 = 12;
const CHUNK_SIZE: usize = 1 << CHUNK_SHIFT;
/// Maximum number of chunks (total capacity = 4M nodes by default).
const MAX_CHUNKS: usize = 1024;
/// Free-list stripes (match the simulator's largest platform).
const FREE_STRIPES: usize = 32;

/// A chain node. Every field a concurrent reader may touch is an
/// [`HtmCell`], so access is transactional inside HTM mode and
/// seqlock-consistent elsewhere.
pub struct Node<V: Copy> {
    pub key: HtmCell<u64>,
    pub val: HtmCell<V>,
    /// Next node id in the bucket chain; [`NIL`] terminates.
    pub next: HtmCell<u64>,
}

/// The null node id.
pub const NIL: u64 = 0;

/// Chunked node storage. Node ids are 1-based (`NIL` = 0).
pub struct NodeSlab<V: Copy + Default> {
    chunks: Vec<AtomicPtr<Node<V>>>,
    /// Bump allocator: next never-used node id.
    next_fresh: AtomicU64,
    /// Striped free lists of recycled node ids.
    free: Vec<TickMutex<Vec<u64>>>,
    /// Serialises chunk allocation.
    grow_lock: TickMutex<()>,
    capacity: u64,
}

// SAFETY: chunk pointers are written once (under grow_lock) and never
// freed until drop; Node fields are HtmCells (Sync for V: Copy + Send).
unsafe impl<V: Copy + Default + Send> Send for NodeSlab<V> {}
unsafe impl<V: Copy + Default + Send> Sync for NodeSlab<V> {}

impl<V: Copy + Default> NodeSlab<V> {
    /// A slab that can hold at least `capacity` nodes.
    pub fn with_capacity(capacity: u64) -> Self {
        let chunks_needed = capacity.div_ceil(CHUNK_SIZE as u64) as usize;
        assert!(
            chunks_needed <= MAX_CHUNKS,
            "slab capacity {capacity} exceeds the maximum ({})",
            MAX_CHUNKS * CHUNK_SIZE
        );
        NodeSlab {
            chunks: (0..MAX_CHUNKS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            next_fresh: AtomicU64::new(1),
            free: (0..FREE_STRIPES)
                .map(|_| TickMutex::new(Vec::new()))
                .collect(),
            grow_lock: TickMutex::new(()),
            capacity: (chunks_needed.max(1) * CHUNK_SIZE) as u64,
        }
    }

    fn stripe(&self) -> &TickMutex<Vec<u64>> {
        let id = ale_vtime::lane_id().unwrap_or_else(|| {
            use std::hash::{Hash, Hasher};
            let mut h = std::hash::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish() as usize
        });
        &self.free[id % FREE_STRIPES]
    }

    /// Allocate a node and initialise its fields (plain stores — callers
    /// allocate *outside* critical sections, before publication).
    pub fn alloc(&self, key: u64, val: V) -> u64 {
        let id = self
            .stripe()
            .lock()
            .pop()
            .unwrap_or_else(|| self.fresh_id());
        let n = self.node(id);
        n.key.set(key);
        n.val.set(val);
        n.next.set(NIL);
        id
    }

    fn fresh_id(&self) -> u64 {
        let id = self.next_fresh.fetch_add(1, Ordering::Relaxed);
        assert!(
            id <= self.capacity,
            "node slab exhausted ({} nodes)",
            self.capacity
        );
        let chunk_idx = ((id - 1) >> CHUNK_SHIFT) as usize;
        if self.chunks[chunk_idx].load(Ordering::Acquire).is_null() {
            let _g = self.grow_lock.lock();
            if self.chunks[chunk_idx].load(Ordering::Acquire).is_null() {
                let chunk: Box<[Node<V>]> = (0..CHUNK_SIZE)
                    .map(|_| Node {
                        key: HtmCell::new(0),
                        val: HtmCell::new(V::default()),
                        next: HtmCell::new(NIL),
                    })
                    .collect();
                let ptr = Box::into_raw(chunk) as *mut Node<V>;
                self.chunks[chunk_idx].store(ptr, Ordering::Release);
            }
        }
        id
    }

    /// Return a node to the free pool. Callers must only free ids whose
    /// unlink has completed (see module docs).
    pub fn free(&self, id: u64) {
        debug_assert_ne!(id, NIL);
        self.stripe().lock().push(id);
    }

    /// Access a node by id. The id must have been allocated.
    #[inline]
    pub fn node(&self, id: u64) -> &Node<V> {
        debug_assert_ne!(id, NIL, "dereferenced NIL node id");
        let idx = (id - 1) as usize;
        let chunk = self.chunks[idx >> CHUNK_SHIFT].load(Ordering::Acquire);
        debug_assert!(!chunk.is_null(), "node id {id} beyond allocated chunks");
        // SAFETY: chunks are allocated before any id pointing into them is
        // handed out, and never freed while the slab lives.
        unsafe { &*chunk.add(idx & (CHUNK_SIZE - 1)) }
    }

    /// Total nodes ever bump-allocated (diagnostics).
    pub fn allocated(&self) -> u64 {
        self.next_fresh.load(Ordering::Relaxed) - 1
    }
}

impl<V: Copy + Default> Drop for NodeSlab<V> {
    fn drop(&mut self) {
        for c in &self.chunks {
            let p = c.load(Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: reconstruct exactly what Box::into_raw produced.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        p, CHUNK_SIZE,
                    )));
                }
            }
        }
    }
}

impl<V: Copy + Default> Default for NodeSlab<V> {
    fn default() -> Self {
        Self::with_capacity(CHUNK_SIZE as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_initialises_and_node_reads_back() {
        let slab: NodeSlab<u64> = NodeSlab::with_capacity(100);
        let id = slab.alloc(42, 99);
        assert_ne!(id, NIL);
        let n = slab.node(id);
        assert_eq!(n.key.get(), 42);
        assert_eq!(n.val.get(), 99);
        assert_eq!(n.next.get(), NIL);
    }

    #[test]
    fn free_recycles_ids() {
        let slab: NodeSlab<u64> = NodeSlab::with_capacity(100);
        let a = slab.alloc(1, 1);
        slab.free(a);
        let b = slab.alloc(2, 2);
        assert_eq!(a, b, "freed id must be recycled by the same stripe");
        assert_eq!(slab.node(b).key.get(), 2, "fields must be re-initialised");
        assert_eq!(slab.allocated(), 1);
    }

    #[test]
    fn crosses_chunk_boundaries() {
        let slab: NodeSlab<u64> = NodeSlab::with_capacity(2 * CHUNK_SIZE as u64);
        let mut last = 0;
        for i in 0..(CHUNK_SIZE as u64 + 10) {
            last = slab.alloc(i, i);
        }
        assert_eq!(slab.node(last).key.get(), CHUNK_SIZE as u64 + 9);
        assert_eq!(slab.allocated(), CHUNK_SIZE as u64 + 10);
    }

    #[test]
    fn concurrent_alloc_yields_distinct_ids() {
        let slab: NodeSlab<u64> = NodeSlab::with_capacity(100_000);
        let ids = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let (slab, ids) = (&slab, &ids);
                s.spawn(move || {
                    let mine: Vec<u64> = (0..2000).map(|i| slab.alloc(t, i)).collect();
                    ids.lock().unwrap().extend(mine);
                });
            }
        });
        let mut all = ids.into_inner().unwrap();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "no two threads may receive the same id");
    }
}
