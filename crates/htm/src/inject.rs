//! Targeted fault injection for the transaction engine.
//!
//! `ale-check` (the dynamic-checking harness) installs an [`InjectPlan`]
//! before a run; the engine then consults [`check`] at four transaction
//! points — begin, transactional read, transactional write, and commit —
//! and aborts with the planned [`AbortStatus`] when a rule fires. This is
//! how the harness steers executions down the rarely-taken paths (capacity
//! fallback, lock-held cascades, commit-time conflicts) that real
//! best-effort HTM produces only probabilistically.
//!
//! The plan is process-global, behind an atomic fast-path flag so the
//! transaction hot path pays one relaxed load when injection is off.
//! Counters advance under a mutex, which is deterministic under the
//! simulator (exactly one lane runs at a time) — the same plan, seed and
//! schedule replay the same injected aborts.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::abort::{AbortCode, AbortStatus};

/// A transaction lifecycle point where faults can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectPoint {
    /// Right after the transaction begins (before the body runs).
    Begin,
    /// On a transactional read.
    Read,
    /// On a transactional (buffered) write.
    Write,
    /// At commit entry (after the body, before publication).
    Commit,
}

impl InjectPoint {
    fn index(self) -> usize {
        match self {
            InjectPoint::Begin => 0,
            InjectPoint::Read => 1,
            InjectPoint::Write => 2,
            InjectPoint::Commit => 3,
        }
    }
}

/// The fault class a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// A data conflict (retryable).
    Conflict,
    /// A capacity overflow (not retryable).
    Capacity,
    /// A spurious micro-architectural abort (retry hint set).
    Spurious,
    /// The explicit "elided lock was held" abort.
    LockHeld,
    /// A panic unwinding out of the critical-section body (with the
    /// [`InjectedPanic`] payload), exercising the runtime's unwind-safety
    /// paths instead of the abort protocol.
    Panic,
}

/// Unwind payload for [`InjectKind::Panic`] faults. Public so harnesses can
/// raise (`std::panic::panic_any(InjectedPanic)`) and catch the same typed
/// payload outside transactions too; the process panic hook (see
/// [`init_panic_hook`](crate::txn::init_panic_hook)) keeps these unwinds
/// silent, since they are planned control flow, not bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic;

/// What an injection point must do when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Injected {
    Abort(AbortStatus),
    Panic,
}

impl InjectKind {
    /// The action an injected fault of this kind performs.
    pub(crate) fn injected(self) -> Injected {
        match self {
            InjectKind::Conflict => Injected::Abort(AbortStatus::conflict()),
            InjectKind::Capacity => Injected::Abort(AbortStatus::capacity()),
            InjectKind::Spurious => Injected::Abort(AbortStatus::spurious(true)),
            InjectKind::LockHeld => Injected::Abort(AbortStatus::explicit(AbortCode::LOCK_HELD)),
            InjectKind::Panic => Injected::Panic,
        }
    }
}

/// One injection rule: at `point`, abort with `kind` every `every`-th
/// event (period-based, so one rule covers a whole run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectRule {
    pub point: InjectPoint,
    /// Fire when the point's event counter is a multiple of this. 0 never
    /// fires.
    pub every: u64,
    pub kind: InjectKind,
}

/// A full injection plan: rules plus a global hit budget (the replay
/// minimiser bisects `max_hits` to find the smallest failing fault count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectPlan {
    pub rules: Vec<InjectRule>,
    /// Stop injecting after this many hits. `u64::MAX` = unlimited.
    pub max_hits: u64,
    /// Virtual-time activity window `[start, end)`: rules only fire while
    /// `ale_vtime::now()` is inside it. `None` = always active. This is how
    /// the storm-recovery scenario confines an abort storm to one phase of
    /// a deterministic run.
    pub window: Option<(u64, u64)>,
    /// Thread-scope token: rules only fire on threads that hold an
    /// [`enter_scope`] guard for the same token. `None` = all threads.
    /// Lets a scenario inject faults into its own simulator lanes without
    /// perturbing unrelated work in the same process (e.g. other tests).
    pub scope: Option<u64>,
}

impl InjectPlan {
    pub fn new(rules: Vec<InjectRule>) -> Self {
        InjectPlan {
            rules,
            max_hits: u64::MAX,
            window: None,
            scope: None,
        }
    }

    /// Cap the number of injected aborts.
    pub fn limited(mut self, max_hits: u64) -> Self {
        self.max_hits = max_hits;
        self
    }

    /// Confine the plan to the virtual-time window `[start_ns, end_ns)`.
    pub fn windowed(mut self, start_ns: u64, end_ns: u64) -> Self {
        self.window = Some((start_ns, end_ns));
        self
    }

    /// Confine the plan to threads holding an [`enter_scope`] guard for
    /// `token`.
    pub fn scoped(mut self, token: u64) -> Self {
        self.scope = Some(token);
        self
    }
}

thread_local! {
    /// The calling thread's ambient injection scope (0 = unscoped).
    static SCOPE: Cell<u64> = const { Cell::new(0) };
}

/// RAII guard from [`enter_scope`]: restores the previous scope on drop.
pub struct ScopeGuard {
    prev: u64,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| s.set(self.prev));
    }
}

/// Tag the calling thread with injection-scope `token` until the guard
/// drops. Plans built with [`InjectPlan::scoped`] fire only on threads
/// holding a matching tag.
pub fn enter_scope(token: u64) -> ScopeGuard {
    let prev = SCOPE.with(|s| {
        let p = s.get();
        s.set(token);
        p
    });
    ScopeGuard { prev }
}

struct PlanState {
    plan: InjectPlan,
    /// Per-point event counters (Begin/Read/Write/Commit).
    counts: [u64; 4],
    hits: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<PlanState>> = Mutex::new(None);

/// Install `plan` process-wide. Replaces any previous plan and resets the
/// counters. The caller (ale-check) serialises runs, so there is exactly
/// one plan per schedule.
pub fn install(plan: InjectPlan) {
    let mut g = STATE.lock().unwrap();
    *g = Some(PlanState {
        plan,
        counts: [0; 4],
        hits: 0,
    });
    ACTIVE.store(true, Ordering::Release);
}

/// Remove the active plan, returning how many aborts it injected.
pub fn clear() -> u64 {
    ACTIVE.store(false, Ordering::Release);
    let mut g = STATE.lock().unwrap();
    g.take().map_or(0, |st| st.hits)
}

/// Aborts injected by the active plan so far (0 when none is installed).
pub fn hits() -> u64 {
    STATE.lock().unwrap().as_ref().map_or(0, |st| st.hits)
}

/// Consult the plan at `point`. `Some(action)` means the caller must abort
/// the current transaction (or unwind with [`InjectedPanic`]).
#[inline]
pub(crate) fn check(point: InjectPoint) -> Option<Injected> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(point)
}

#[cold]
fn check_slow(point: InjectPoint) -> Option<Injected> {
    let mut g = STATE.lock().unwrap();
    let st = g.as_mut()?;
    let idx = point.index();
    st.counts[idx] += 1;
    let c = st.counts[idx];
    if st.hits >= st.plan.max_hits {
        return None;
    }
    if let Some((start, end)) = st.plan.window {
        let t = ale_vtime::now();
        if t < start || t >= end {
            return None;
        }
    }
    if let Some(token) = st.plan.scope {
        if SCOPE.with(|s| s.get()) != token {
            return None;
        }
    }
    for r in &st.plan.rules {
        if r.point == point && r.every > 0 && c.is_multiple_of(r.every) {
            st.hits += 1;
            return Some(r.kind.injected());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::HtmCell;
    use crate::txn::attempt;
    use ale_vtime::{Platform, Rng};
    use std::sync::{Mutex as StdMutex, MutexGuard};

    /// Injection state is process-global; tests must not overlap.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn profile() -> ale_vtime::HtmProfile {
        Platform::testbed().htm.unwrap()
    }

    #[test]
    fn begin_injection_aborts_before_the_body() {
        let _g = serial();
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Begin,
            every: 1,
            kind: InjectKind::Conflict,
        }]));
        let mut ran = false;
        let r = attempt(&profile(), &mut Rng::new(1), || ran = true);
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        assert!(!ran, "the body must not run past an injected begin abort");
        assert_eq!(clear(), 1);
    }

    #[test]
    fn read_injection_counts_and_respects_period() {
        let _g = serial();
        let cells: Vec<HtmCell<u64>> = (0..6).map(HtmCell::new).collect();
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Read,
            every: 4,
            kind: InjectKind::Capacity,
        }]));
        let r = attempt(&profile(), &mut Rng::new(1), || {
            cells.iter().map(|c| c.get()).sum::<u64>()
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Capacity);
        assert_eq!(hits(), 1);
        assert_eq!(clear(), 1);
        // With the plan cleared the same body commits.
        let r = attempt(&profile(), &mut Rng::new(1), || {
            cells.iter().map(|c| c.get()).sum::<u64>()
        });
        assert_eq!(r.unwrap(), 15);
    }

    #[test]
    fn commit_injection_discards_writes() {
        let _g = serial();
        let a = HtmCell::new(0u64);
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Commit,
            every: 1,
            kind: InjectKind::LockHeld,
        }]));
        let r = attempt(&profile(), &mut Rng::new(1), || a.set(9));
        assert!(r.unwrap_err().code.is_lock_held());
        clear();
        assert_eq!(a.get(), 0, "injected commit abort must discard writes");
    }

    #[test]
    fn hit_budget_caps_injection() {
        let _g = serial();
        install(
            InjectPlan::new(vec![InjectRule {
                point: InjectPoint::Begin,
                every: 1,
                kind: InjectKind::Spurious,
            }])
            .limited(2),
        );
        let mut aborts = 0;
        for _ in 0..5 {
            if attempt(&profile(), &mut Rng::new(1), || ()).is_err() {
                aborts += 1;
            }
        }
        assert_eq!(aborts, 2, "only max_hits aborts may fire");
        assert_eq!(clear(), 2);
    }

    #[test]
    fn write_injection_fires_on_stores() {
        let _g = serial();
        let a = HtmCell::new(0u64);
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Write,
            every: 1,
            kind: InjectKind::Conflict,
        }]));
        let r = attempt(&profile(), &mut Rng::new(1), || a.set(1));
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        clear();
    }

    #[test]
    fn panic_injection_unwinds_with_typed_payload_and_discards_writes() {
        let _g = serial();
        crate::txn::init_panic_hook();
        let a = HtmCell::new(0u64);
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Write,
            every: 1,
            kind: InjectKind::Panic,
        }]));
        // AssertUnwindSafe: the engine discards speculative writes on
        // unwind, so the cell is consistent after the catch.
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = attempt(&profile(), &mut Rng::new(1), || a.set(7));
        }));
        clear();
        let payload = unwound.expect_err("an injected panic must unwind out of attempt");
        assert!(
            payload.downcast_ref::<InjectedPanic>().is_some(),
            "payload must be the typed InjectedPanic"
        );
        assert!(!crate::txn::in_txn(), "unwind must tear the txn down");
        assert_eq!(a.get(), 0, "speculative writes must be discarded");
        // The engine is reusable after the unwind.
        assert_eq!(attempt(&profile(), &mut Rng::new(2), || a.set(3)), Ok(()));
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn commit_point_panic_keeps_writes_private() {
        let _g = serial();
        crate::txn::init_panic_hook();
        let a = HtmCell::new(0u64);
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Commit,
            every: 1,
            kind: InjectKind::Panic,
        }]));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = attempt(&profile(), &mut Rng::new(1), || a.set(9));
        }));
        clear();
        assert!(unwound.is_err());
        assert!(!crate::txn::in_txn());
        assert_eq!(a.get(), 0, "a panic at commit entry must not publish");
    }

    #[test]
    fn scoped_plan_only_fires_inside_matching_scope() {
        let _g = serial();
        install(
            InjectPlan::new(vec![InjectRule {
                point: InjectPoint::Begin,
                every: 1,
                kind: InjectKind::Conflict,
            }])
            .scoped(0xDEAD),
        );
        let profile = profile();
        let mut rng = Rng::new(1);
        assert!(
            attempt(&profile, &mut rng, || ()).is_ok(),
            "unscoped thread must not be hit"
        );
        {
            let _scope = enter_scope(0xDEAD);
            assert_eq!(
                attempt(&profile, &mut rng, || ()).unwrap_err().code,
                AbortCode::Conflict,
                "matching scope must be hit"
            );
            let _inner = enter_scope(0xBEEF);
            assert!(
                attempt(&profile, &mut rng, || ()).is_ok(),
                "a different scope must not be hit"
            );
        }
        assert!(
            attempt(&profile, &mut rng, || ()).is_ok(),
            "dropping the guard must restore the previous scope"
        );
        assert_eq!(clear(), 1);
    }

    #[test]
    fn window_confines_rules_to_virtual_time_range() {
        use ale_vtime::{Event, Platform, Sim};
        let _g = serial();
        let aborts = Sim::new(Platform::testbed(), 1).run(|_| {
            install(
                InjectPlan::new(vec![InjectRule {
                    point: InjectPoint::Begin,
                    every: 1,
                    kind: InjectKind::Conflict,
                }])
                .windowed(1_000, 2_000),
            );
            let profile = profile();
            let mut rng = Rng::new(1);
            let mut aborts = [0u32; 3];
            // Phase 0: before the window opens.
            if attempt(&profile, &mut rng, || ()).is_err() {
                aborts[0] += 1;
            }
            ale_vtime::tick(Event::LocalWork(1_500)); // now inside [1000, 2000)
            if attempt(&profile, &mut rng, || ()).is_err() {
                aborts[1] += 1;
            }
            ale_vtime::tick(Event::LocalWork(1_000)); // past the window
            if attempt(&profile, &mut rng, || ()).is_err() {
                aborts[2] += 1;
            }
            clear();
            aborts
        });
        assert_eq!(
            aborts.results[0],
            [0, 1, 0],
            "the rule must fire only inside the vtime window"
        );
    }
}
