//! Targeted fault injection for the transaction engine.
//!
//! `ale-check` (the dynamic-checking harness) installs an [`InjectPlan`]
//! before a run; the engine then consults [`check`] at four transaction
//! points — begin, transactional read, transactional write, and commit —
//! and aborts with the planned [`AbortStatus`] when a rule fires. This is
//! how the harness steers executions down the rarely-taken paths (capacity
//! fallback, lock-held cascades, commit-time conflicts) that real
//! best-effort HTM produces only probabilistically.
//!
//! The plan is process-global, behind an atomic fast-path flag so the
//! transaction hot path pays one relaxed load when injection is off.
//! Counters advance under a mutex, which is deterministic under the
//! simulator (exactly one lane runs at a time) — the same plan, seed and
//! schedule replay the same injected aborts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::abort::{AbortCode, AbortStatus};

/// A transaction lifecycle point where faults can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectPoint {
    /// Right after the transaction begins (before the body runs).
    Begin,
    /// On a transactional read.
    Read,
    /// On a transactional (buffered) write.
    Write,
    /// At commit entry (after the body, before publication).
    Commit,
}

impl InjectPoint {
    fn index(self) -> usize {
        match self {
            InjectPoint::Begin => 0,
            InjectPoint::Read => 1,
            InjectPoint::Write => 2,
            InjectPoint::Commit => 3,
        }
    }
}

/// The abort class a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// A data conflict (retryable).
    Conflict,
    /// A capacity overflow (not retryable).
    Capacity,
    /// A spurious micro-architectural abort (retry hint set).
    Spurious,
    /// The explicit "elided lock was held" abort.
    LockHeld,
}

impl InjectKind {
    /// The status an injected abort of this kind reports.
    pub fn status(self) -> AbortStatus {
        match self {
            InjectKind::Conflict => AbortStatus::conflict(),
            InjectKind::Capacity => AbortStatus::capacity(),
            InjectKind::Spurious => AbortStatus::spurious(true),
            InjectKind::LockHeld => AbortStatus::explicit(AbortCode::LOCK_HELD),
        }
    }
}

/// One injection rule: at `point`, abort with `kind` every `every`-th
/// event (period-based, so one rule covers a whole run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectRule {
    pub point: InjectPoint,
    /// Fire when the point's event counter is a multiple of this. 0 never
    /// fires.
    pub every: u64,
    pub kind: InjectKind,
}

/// A full injection plan: rules plus a global hit budget (the replay
/// minimiser bisects `max_hits` to find the smallest failing fault count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectPlan {
    pub rules: Vec<InjectRule>,
    /// Stop injecting after this many hits. `u64::MAX` = unlimited.
    pub max_hits: u64,
}

impl InjectPlan {
    pub fn new(rules: Vec<InjectRule>) -> Self {
        InjectPlan {
            rules,
            max_hits: u64::MAX,
        }
    }

    /// Cap the number of injected aborts.
    pub fn limited(mut self, max_hits: u64) -> Self {
        self.max_hits = max_hits;
        self
    }
}

struct PlanState {
    plan: InjectPlan,
    /// Per-point event counters (Begin/Read/Write/Commit).
    counts: [u64; 4],
    hits: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<PlanState>> = Mutex::new(None);

/// Install `plan` process-wide. Replaces any previous plan and resets the
/// counters. The caller (ale-check) serialises runs, so there is exactly
/// one plan per schedule.
pub fn install(plan: InjectPlan) {
    let mut g = STATE.lock().unwrap();
    *g = Some(PlanState {
        plan,
        counts: [0; 4],
        hits: 0,
    });
    ACTIVE.store(true, Ordering::Release);
}

/// Remove the active plan, returning how many aborts it injected.
pub fn clear() -> u64 {
    ACTIVE.store(false, Ordering::Release);
    let mut g = STATE.lock().unwrap();
    g.take().map_or(0, |st| st.hits)
}

/// Aborts injected by the active plan so far (0 when none is installed).
pub fn hits() -> u64 {
    STATE.lock().unwrap().as_ref().map_or(0, |st| st.hits)
}

/// Consult the plan at `point`. `Some(status)` means the caller must abort
/// the current transaction with that status.
#[inline]
pub(crate) fn check(point: InjectPoint) -> Option<AbortStatus> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(point)
}

#[cold]
fn check_slow(point: InjectPoint) -> Option<AbortStatus> {
    let mut g = STATE.lock().unwrap();
    let st = g.as_mut()?;
    let idx = point.index();
    st.counts[idx] += 1;
    let c = st.counts[idx];
    if st.hits >= st.plan.max_hits {
        return None;
    }
    for r in &st.plan.rules {
        if r.point == point && r.every > 0 && c.is_multiple_of(r.every) {
            st.hits += 1;
            return Some(r.kind.status());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::HtmCell;
    use crate::txn::attempt;
    use ale_vtime::{Platform, Rng};
    use std::sync::{Mutex as StdMutex, MutexGuard};

    /// Injection state is process-global; tests must not overlap.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn profile() -> ale_vtime::HtmProfile {
        Platform::testbed().htm.unwrap()
    }

    #[test]
    fn begin_injection_aborts_before_the_body() {
        let _g = serial();
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Begin,
            every: 1,
            kind: InjectKind::Conflict,
        }]));
        let mut ran = false;
        let r = attempt(&profile(), &mut Rng::new(1), || ran = true);
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        assert!(!ran, "the body must not run past an injected begin abort");
        assert_eq!(clear(), 1);
    }

    #[test]
    fn read_injection_counts_and_respects_period() {
        let _g = serial();
        let cells: Vec<HtmCell<u64>> = (0..6).map(HtmCell::new).collect();
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Read,
            every: 4,
            kind: InjectKind::Capacity,
        }]));
        let r = attempt(&profile(), &mut Rng::new(1), || {
            cells.iter().map(|c| c.get()).sum::<u64>()
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Capacity);
        assert_eq!(hits(), 1);
        assert_eq!(clear(), 1);
        // With the plan cleared the same body commits.
        let r = attempt(&profile(), &mut Rng::new(1), || {
            cells.iter().map(|c| c.get()).sum::<u64>()
        });
        assert_eq!(r.unwrap(), 15);
    }

    #[test]
    fn commit_injection_discards_writes() {
        let _g = serial();
        let a = HtmCell::new(0u64);
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Commit,
            every: 1,
            kind: InjectKind::LockHeld,
        }]));
        let r = attempt(&profile(), &mut Rng::new(1), || a.set(9));
        assert!(r.unwrap_err().code.is_lock_held());
        clear();
        assert_eq!(a.get(), 0, "injected commit abort must discard writes");
    }

    #[test]
    fn hit_budget_caps_injection() {
        let _g = serial();
        install(
            InjectPlan::new(vec![InjectRule {
                point: InjectPoint::Begin,
                every: 1,
                kind: InjectKind::Spurious,
            }])
            .limited(2),
        );
        let mut aborts = 0;
        for _ in 0..5 {
            if attempt(&profile(), &mut Rng::new(1), || ()).is_err() {
                aborts += 1;
            }
        }
        assert_eq!(aborts, 2, "only max_hits aborts may fire");
        assert_eq!(clear(), 2);
    }

    #[test]
    fn write_injection_fires_on_stores() {
        let _g = serial();
        let a = HtmCell::new(0u64);
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Write,
            every: 1,
            kind: InjectKind::Conflict,
        }]));
        let r = attempt(&profile(), &mut Rng::new(1), || a.set(1));
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        clear();
    }
}
