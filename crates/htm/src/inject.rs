//! Targeted fault injection for the transaction engine.
//!
//! `ale-check` (the dynamic-checking harness) installs an [`InjectPlan`]
//! before a run; the engine then consults [`check`] at four transaction
//! points — begin, transactional read, transactional write, and commit —
//! and aborts with the planned [`AbortStatus`] when a rule fires. This is
//! how the harness steers executions down the rarely-taken paths (capacity
//! fallback, lock-held cascades, commit-time conflicts) that real
//! best-effort HTM produces only probabilistically.
//!
//! The plan is process-global, behind an atomic fast-path flag so the
//! transaction hot path pays one relaxed load when injection is off.
//! Counters advance under a mutex, which is deterministic under the
//! simulator (exactly one lane runs at a time) — the same plan, seed and
//! schedule replay the same injected aborts.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::abort::{AbortCode, AbortStatus};

/// A transaction lifecycle point where faults can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectPoint {
    /// Right after the transaction begins (before the body runs).
    Begin,
    /// On a transactional read.
    Read,
    /// On a transactional (buffered) write.
    Write,
    /// At commit entry (after the body, before publication).
    Commit,
}

impl InjectPoint {
    fn index(self) -> usize {
        match self {
            InjectPoint::Begin => 0,
            InjectPoint::Read => 1,
            InjectPoint::Write => 2,
            InjectPoint::Commit => 3,
        }
    }
}

/// The fault class a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// A data conflict (retryable).
    Conflict,
    /// A capacity overflow (not retryable).
    Capacity,
    /// A spurious micro-architectural abort (retry hint set).
    Spurious,
    /// The explicit "elided lock was held" abort.
    LockHeld,
    /// A panic unwinding out of the critical-section body (with the
    /// [`InjectedPanic`] payload), exercising the runtime's unwind-safety
    /// paths instead of the abort protocol.
    Panic,
}

/// Unwind payload for [`InjectKind::Panic`] faults. Public so harnesses can
/// raise (`std::panic::panic_any(InjectedPanic)`) and catch the same typed
/// payload outside transactions too; the process panic hook (see
/// [`init_panic_hook`](crate::txn::init_panic_hook)) keeps these unwinds
/// silent, since they are planned control flow, not bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic;

/// What an injection point must do when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Injected {
    Abort(AbortStatus),
    Panic,
}

impl InjectKind {
    /// The action an injected fault of this kind performs.
    pub(crate) fn injected(self) -> Injected {
        match self {
            InjectKind::Conflict => Injected::Abort(AbortStatus::conflict()),
            InjectKind::Capacity => Injected::Abort(AbortStatus::capacity()),
            InjectKind::Spurious => Injected::Abort(AbortStatus::spurious(true)),
            InjectKind::LockHeld => Injected::Abort(AbortStatus::explicit(AbortCode::LOCK_HELD)),
            InjectKind::Panic => Injected::Panic,
        }
    }
}

/// One injection rule: at `point`, abort with `kind` every `every`-th
/// event (period-based, so one rule covers a whole run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectRule {
    pub point: InjectPoint,
    /// Fire when the point's event counter is a multiple of this. 0 never
    /// fires.
    pub every: u64,
    pub kind: InjectKind,
}

/// A full injection plan: rules plus a global hit budget (the replay
/// minimiser bisects `max_hits` to find the smallest failing fault count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectPlan {
    pub rules: Vec<InjectRule>,
    /// Stop injecting after this many hits. `u64::MAX` = unlimited.
    pub max_hits: u64,
    /// Virtual-time activity window `[start, end)`: rules only fire while
    /// `ale_vtime::now()` is inside it. `None` = always active. This is how
    /// the storm-recovery scenario confines an abort storm to one phase of
    /// a deterministic run.
    pub window: Option<(u64, u64)>,
    /// Thread-scope token: rules only fire on threads that hold an
    /// [`enter_scope`] guard for the same token. `None` = all threads.
    /// Lets a scenario inject faults into its own simulator lanes without
    /// perturbing unrelated work in the same process (e.g. other tests).
    pub scope: Option<u64>,
}

impl InjectPlan {
    pub fn new(rules: Vec<InjectRule>) -> Self {
        InjectPlan {
            rules,
            max_hits: u64::MAX,
            window: None,
            scope: None,
        }
    }

    /// Cap the number of injected aborts.
    pub fn limited(mut self, max_hits: u64) -> Self {
        self.max_hits = max_hits;
        self
    }

    /// Confine the plan to the virtual-time window `[start_ns, end_ns)`.
    pub fn windowed(mut self, start_ns: u64, end_ns: u64) -> Self {
        self.window = Some((start_ns, end_ns));
        self
    }

    /// Confine the plan to threads holding an [`enter_scope`] guard for
    /// `token`.
    pub fn scoped(mut self, token: u64) -> Self {
        self.scope = Some(token);
        self
    }
}

// ---------------------------------------------------------------------------
// Crash-point injection (process-death simulation)
// ---------------------------------------------------------------------------

/// A durability boundary where a simulated process death can be planted.
///
/// Unlike the abort faults above, a crash is not an event the program
/// recovers from in place: once it fires, the "process" is dead — the
/// durable-medium freeze in `ale-kyoto`'s WAL refuses further appends, the
/// harness tears the in-memory state down, and only what the log had
/// absorbed survives into recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Entry of a WAL append: the record is not yet durable.
    WalAppend,
    /// After the record is durable, before the in-memory commit.
    PreCommit,
    /// After the in-memory commit, before the caller is acknowledged.
    PostCommit,
    /// In the middle of writing the record bytes: the tail record is torn
    /// (truncated or bit-flipped, per [`TornMode`]).
    MidRecord,
}

/// What a [`CrashPoint::MidRecord`] crash leaves behind in the tail record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornMode {
    /// Only a prefix of the record's bytes reached the medium.
    Truncate,
    /// All bytes landed, but some were corrupted in flight.
    Flip,
}

/// A crash plan: die at the `after`-th consultation of `point`. Fires at
/// most once process-wide (a process only dies once per run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    pub point: CrashPoint,
    /// Fire on the `after`-th consult of `point` (1 = the first). 0 never
    /// fires.
    pub after: u64,
    /// Tail-record damage for [`CrashPoint::MidRecord`] (`None` defaults
    /// to [`TornMode::Truncate`]); ignored at the other points.
    pub torn: Option<TornMode>,
    /// Thread-scope token (see [`enter_scope`]). `None` = all threads.
    pub scope: Option<u64>,
}

impl CrashPlan {
    pub fn new(point: CrashPoint, after: u64) -> Self {
        CrashPlan {
            point,
            after,
            torn: None,
            scope: None,
        }
    }

    /// Choose the torn-write damage mode for mid-record crashes.
    pub fn with_torn(mut self, torn: TornMode) -> Self {
        self.torn = Some(torn);
        self
    }

    /// Confine the plan to threads holding an [`enter_scope`] guard for
    /// `token`.
    pub fn scoped(mut self, token: u64) -> Self {
        self.scope = Some(token);
        self
    }
}

/// Unwind payload for injected crashes. Raised by [`crash_at`] /
/// [`crash_now`]; silenced by the process panic hook like
/// [`InjectedPanic`]. Everything that catches it must treat the run's
/// volatile state as lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedCrash;

struct CrashState {
    plan: CrashPlan,
    /// Consults of the planned point so far.
    count: u64,
}

static CRASH_ACTIVE: AtomicBool = AtomicBool::new(false);
/// Sticky "the process is dead" flag: set when the plan fires (or by
/// [`crash_now`]), cleared only by [`install_crash`]/[`clear_crash`].
static CRASHED: AtomicBool = AtomicBool::new(false);
static CRASH_STATE: Mutex<Option<CrashState>> = Mutex::new(None);

/// Install a crash plan process-wide, replacing any previous plan and
/// clearing the [`crashed`] flag.
pub fn install_crash(plan: CrashPlan) {
    let mut g = CRASH_STATE.lock().unwrap_or_else(|p| p.into_inner());
    *g = Some(CrashState { plan, count: 0 });
    CRASHED.store(false, Ordering::Release);
    CRASH_ACTIVE.store(plan.after > 0, Ordering::Release);
}

/// Remove the active crash plan and reset the [`crashed`] flag. Returns
/// whether the plan fired.
pub fn clear_crash() -> bool {
    CRASH_ACTIVE.store(false, Ordering::Release);
    let mut g = CRASH_STATE.lock().unwrap_or_else(|p| p.into_inner());
    g.take();
    CRASHED.swap(false, Ordering::AcqRel)
}

/// Has the planned crash fired? After this turns true the simulated
/// process is dead: the WAL freezes, and harness lanes stop issuing work.
#[inline]
pub fn crashed() -> bool {
    CRASHED.load(Ordering::Acquire)
}

/// Die now: mark the process crashed and unwind with [`InjectedCrash`].
pub fn crash_now() -> ! {
    CRASHED.store(true, Ordering::Release);
    std::panic::panic_any(InjectedCrash)
}

/// Consult the plan at `point`; fires at most once. `Some(torn)` = the
/// plan fires *here*: the state is already marked crashed, and the caller
/// must apply the torn damage (mid-record only) and then [`crash_now`].
fn crash_fire(point: CrashPoint) -> Option<Option<TornMode>> {
    let mut g = CRASH_STATE.lock().unwrap_or_else(|p| p.into_inner());
    let st = g.as_mut()?;
    if CRASHED.load(Ordering::Relaxed) || st.plan.point != point {
        return None;
    }
    if let Some(token) = st.plan.scope {
        if SCOPE.with(|s| s.get()) != token {
            return None;
        }
    }
    st.count += 1;
    if st.count >= st.plan.after {
        CRASHED.store(true, Ordering::Release);
        return Some(st.plan.torn);
    }
    None
}

/// Consult the crash plan at a whole-record boundary
/// ([`CrashPoint::WalAppend`], [`CrashPoint::PreCommit`],
/// [`CrashPoint::PostCommit`]). Does not return if the plan fires.
#[inline]
pub fn crash_at(point: CrashPoint) {
    if !CRASH_ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    if crash_fire(point).is_some() {
        std::panic::panic_any(InjectedCrash)
    }
}

/// Consult the crash plan mid-record-write. `Some(mode)` = the plan fires:
/// the caller must write the torn bytes (per `mode`) to the durable medium
/// and then call [`crash_now`].
#[inline]
pub fn crash_at_mid_record() -> Option<TornMode> {
    if !CRASH_ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    crash_fire(CrashPoint::MidRecord).map(|t| t.unwrap_or(TornMode::Truncate))
}

thread_local! {
    /// The calling thread's ambient injection scope (0 = unscoped).
    static SCOPE: Cell<u64> = const { Cell::new(0) };
}

/// RAII guard from [`enter_scope`]: restores the previous scope on drop.
pub struct ScopeGuard {
    prev: u64,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| s.set(self.prev));
    }
}

/// Tag the calling thread with injection-scope `token` until the guard
/// drops. Plans built with [`InjectPlan::scoped`] fire only on threads
/// holding a matching tag.
pub fn enter_scope(token: u64) -> ScopeGuard {
    let prev = SCOPE.with(|s| {
        let p = s.get();
        s.set(token);
        p
    });
    ScopeGuard { prev }
}

struct PlanState {
    plan: InjectPlan,
    /// Per-point event counters (Begin/Read/Write/Commit).
    counts: [u64; 4],
    hits: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<PlanState>> = Mutex::new(None);

/// Install `plan` process-wide. Replaces any previous plan and resets the
/// counters. The caller (ale-check) serialises runs, so there is exactly
/// one plan per schedule.
pub fn install(plan: InjectPlan) {
    let mut g = STATE.lock().unwrap();
    *g = Some(PlanState {
        plan,
        counts: [0; 4],
        hits: 0,
    });
    ACTIVE.store(true, Ordering::Release);
}

/// Remove the active plan, returning how many aborts it injected.
pub fn clear() -> u64 {
    ACTIVE.store(false, Ordering::Release);
    let mut g = STATE.lock().unwrap();
    g.take().map_or(0, |st| st.hits)
}

/// Aborts injected by the active plan so far (0 when none is installed).
pub fn hits() -> u64 {
    STATE.lock().unwrap().as_ref().map_or(0, |st| st.hits)
}

/// Consult the plan at `point`. `Some(action)` means the caller must abort
/// the current transaction (or unwind with [`InjectedPanic`]).
#[inline]
pub(crate) fn check(point: InjectPoint) -> Option<Injected> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(point)
}

#[cold]
fn check_slow(point: InjectPoint) -> Option<Injected> {
    let mut g = STATE.lock().unwrap();
    let st = g.as_mut()?;
    let idx = point.index();
    st.counts[idx] += 1;
    let c = st.counts[idx];
    if st.hits >= st.plan.max_hits {
        return None;
    }
    if let Some((start, end)) = st.plan.window {
        let t = ale_vtime::now();
        if t < start || t >= end {
            return None;
        }
    }
    if let Some(token) = st.plan.scope {
        if SCOPE.with(|s| s.get()) != token {
            return None;
        }
    }
    for r in &st.plan.rules {
        if r.point == point && r.every > 0 && c.is_multiple_of(r.every) {
            st.hits += 1;
            return Some(r.kind.injected());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::HtmCell;
    use crate::txn::attempt;
    use ale_vtime::{Platform, Rng};
    use std::sync::{Mutex as StdMutex, MutexGuard};

    /// Injection state is process-global; tests must not overlap.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn profile() -> ale_vtime::HtmProfile {
        Platform::testbed().htm.unwrap()
    }

    #[test]
    fn begin_injection_aborts_before_the_body() {
        let _g = serial();
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Begin,
            every: 1,
            kind: InjectKind::Conflict,
        }]));
        let mut ran = false;
        let r = attempt(&profile(), &mut Rng::new(1), || ran = true);
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        assert!(!ran, "the body must not run past an injected begin abort");
        assert_eq!(clear(), 1);
    }

    #[test]
    fn read_injection_counts_and_respects_period() {
        let _g = serial();
        let cells: Vec<HtmCell<u64>> = (0..6).map(HtmCell::new).collect();
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Read,
            every: 4,
            kind: InjectKind::Capacity,
        }]));
        let r = attempt(&profile(), &mut Rng::new(1), || {
            cells.iter().map(|c| c.get()).sum::<u64>()
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Capacity);
        assert_eq!(hits(), 1);
        assert_eq!(clear(), 1);
        // With the plan cleared the same body commits.
        let r = attempt(&profile(), &mut Rng::new(1), || {
            cells.iter().map(|c| c.get()).sum::<u64>()
        });
        assert_eq!(r.unwrap(), 15);
    }

    #[test]
    fn commit_injection_discards_writes() {
        let _g = serial();
        let a = HtmCell::new(0u64);
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Commit,
            every: 1,
            kind: InjectKind::LockHeld,
        }]));
        let r = attempt(&profile(), &mut Rng::new(1), || a.set(9));
        assert!(r.unwrap_err().code.is_lock_held());
        clear();
        assert_eq!(a.get(), 0, "injected commit abort must discard writes");
    }

    #[test]
    fn hit_budget_caps_injection() {
        let _g = serial();
        install(
            InjectPlan::new(vec![InjectRule {
                point: InjectPoint::Begin,
                every: 1,
                kind: InjectKind::Spurious,
            }])
            .limited(2),
        );
        let mut aborts = 0;
        for _ in 0..5 {
            if attempt(&profile(), &mut Rng::new(1), || ()).is_err() {
                aborts += 1;
            }
        }
        assert_eq!(aborts, 2, "only max_hits aborts may fire");
        assert_eq!(clear(), 2);
    }

    #[test]
    fn write_injection_fires_on_stores() {
        let _g = serial();
        let a = HtmCell::new(0u64);
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Write,
            every: 1,
            kind: InjectKind::Conflict,
        }]));
        let r = attempt(&profile(), &mut Rng::new(1), || a.set(1));
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        clear();
    }

    #[test]
    fn panic_injection_unwinds_with_typed_payload_and_discards_writes() {
        let _g = serial();
        crate::txn::init_panic_hook();
        let a = HtmCell::new(0u64);
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Write,
            every: 1,
            kind: InjectKind::Panic,
        }]));
        // AssertUnwindSafe: the engine discards speculative writes on
        // unwind, so the cell is consistent after the catch.
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = attempt(&profile(), &mut Rng::new(1), || a.set(7));
        }));
        clear();
        let payload = unwound.expect_err("an injected panic must unwind out of attempt");
        assert!(
            payload.downcast_ref::<InjectedPanic>().is_some(),
            "payload must be the typed InjectedPanic"
        );
        assert!(!crate::txn::in_txn(), "unwind must tear the txn down");
        assert_eq!(a.get(), 0, "speculative writes must be discarded");
        // The engine is reusable after the unwind.
        assert_eq!(attempt(&profile(), &mut Rng::new(2), || a.set(3)), Ok(()));
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn commit_point_panic_keeps_writes_private() {
        let _g = serial();
        crate::txn::init_panic_hook();
        let a = HtmCell::new(0u64);
        install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Commit,
            every: 1,
            kind: InjectKind::Panic,
        }]));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = attempt(&profile(), &mut Rng::new(1), || a.set(9));
        }));
        clear();
        assert!(unwound.is_err());
        assert!(!crate::txn::in_txn());
        assert_eq!(a.get(), 0, "a panic at commit entry must not publish");
    }

    #[test]
    fn scoped_plan_only_fires_inside_matching_scope() {
        let _g = serial();
        install(
            InjectPlan::new(vec![InjectRule {
                point: InjectPoint::Begin,
                every: 1,
                kind: InjectKind::Conflict,
            }])
            .scoped(0xDEAD),
        );
        let profile = profile();
        let mut rng = Rng::new(1);
        assert!(
            attempt(&profile, &mut rng, || ()).is_ok(),
            "unscoped thread must not be hit"
        );
        {
            let _scope = enter_scope(0xDEAD);
            assert_eq!(
                attempt(&profile, &mut rng, || ()).unwrap_err().code,
                AbortCode::Conflict,
                "matching scope must be hit"
            );
            let _inner = enter_scope(0xBEEF);
            assert!(
                attempt(&profile, &mut rng, || ()).is_ok(),
                "a different scope must not be hit"
            );
        }
        assert!(
            attempt(&profile, &mut rng, || ()).is_ok(),
            "dropping the guard must restore the previous scope"
        );
        assert_eq!(clear(), 1);
    }

    #[test]
    fn crash_plan_fires_once_at_the_planned_consult() {
        let _g = serial();
        crate::txn::init_panic_hook();
        install_crash(CrashPlan::new(CrashPoint::PreCommit, 3));
        assert!(!crashed());
        crash_at(CrashPoint::PreCommit); // 1
        crash_at(CrashPoint::WalAppend); // other points don't count
        crash_at(CrashPoint::PreCommit); // 2
        assert!(!crashed());
        let died = std::panic::catch_unwind(|| crash_at(CrashPoint::PreCommit)); // 3
        let payload = died.expect_err("the third consult must fire");
        assert!(payload.downcast_ref::<InjectedCrash>().is_some());
        assert!(crashed(), "firing must mark the process dead");
        // One-shot: further consults are inert on the dead process.
        crash_at(CrashPoint::PreCommit);
        assert!(clear_crash(), "clear must report the plan fired");
        assert!(!crashed());
        crash_at(CrashPoint::PreCommit); // no plan installed: inert
        assert!(!clear_crash());
    }

    #[test]
    fn mid_record_crash_returns_torn_mode_for_the_caller() {
        let _g = serial();
        crate::txn::init_panic_hook();
        install_crash(CrashPlan::new(CrashPoint::MidRecord, 1).with_torn(TornMode::Flip));
        let mode = crash_at_mid_record();
        assert_eq!(mode, Some(TornMode::Flip));
        assert!(
            crashed(),
            "a firing mid-record consult marks the process dead before the caller corrupts"
        );
        let died = std::panic::catch_unwind(|| crash_now());
        assert!(died
            .expect_err("crash_now must unwind")
            .downcast_ref::<InjectedCrash>()
            .is_some());
        assert!(clear_crash());
        // Default damage mode is Truncate.
        install_crash(CrashPlan::new(CrashPoint::MidRecord, 1));
        assert_eq!(crash_at_mid_record(), Some(TornMode::Truncate));
        assert!(clear_crash());
    }

    #[test]
    fn scoped_crash_only_fires_inside_matching_scope() {
        let _g = serial();
        crate::txn::init_panic_hook();
        install_crash(CrashPlan::new(CrashPoint::WalAppend, 1).scoped(0xD1E));
        crash_at(CrashPoint::WalAppend); // unscoped thread: not counted
        assert!(!crashed());
        {
            let _scope = enter_scope(0xD1E);
            let died = std::panic::catch_unwind(|| crash_at(CrashPoint::WalAppend));
            assert!(died.is_err(), "matching scope must die");
        }
        assert!(clear_crash());
    }

    #[test]
    fn zero_after_never_fires() {
        let _g = serial();
        install_crash(CrashPlan::new(CrashPoint::PostCommit, 0));
        for _ in 0..10 {
            crash_at(CrashPoint::PostCommit);
        }
        assert!(!crashed());
        assert!(!clear_crash());
    }

    #[test]
    fn window_confines_rules_to_virtual_time_range() {
        use ale_vtime::{Event, Platform, Sim};
        let _g = serial();
        let aborts = Sim::new(Platform::testbed(), 1).run(|_| {
            install(
                InjectPlan::new(vec![InjectRule {
                    point: InjectPoint::Begin,
                    every: 1,
                    kind: InjectKind::Conflict,
                }])
                .windowed(1_000, 2_000),
            );
            let profile = profile();
            let mut rng = Rng::new(1);
            let mut aborts = [0u32; 3];
            // Phase 0: before the window opens.
            if attempt(&profile, &mut rng, || ()).is_err() {
                aborts[0] += 1;
            }
            ale_vtime::tick(Event::LocalWork(1_500)); // now inside [1000, 2000)
            if attempt(&profile, &mut rng, || ()).is_err() {
                aborts[1] += 1;
            }
            ale_vtime::tick(Event::LocalWork(1_000)); // past the window
            if attempt(&profile, &mut rng, || ()).is_err() {
                aborts[2] += 1;
            }
            clear();
            aborts
        });
        assert_eq!(
            aborts.results[0],
            [0, 1, 0],
            "the rule must fire only inside the vtime window"
        );
    }
}
