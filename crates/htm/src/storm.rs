//! Abort-storm circuit breaker and startup HTM capability probing.
//!
//! Best-effort HTM has a pathological failure mode the paper's retry
//! budgets alone do not contain: when many threads conflict on the same
//! cache lines, every transaction aborts, every thread retries on a
//! near-synchronised schedule, and the machine burns its entire HTM budget
//! in lockstep before each execution falls back to the lock anyway — an
//! *abort storm*. The breaker in this module gives each granule a cheap
//! sliding-window abort-rate estimate and a three-state circuit:
//!
//! * **Closed** — HTM allowed. Storm-class aborts (conflict, capacity) and
//!   commits are counted in two half-window buckets; when the abort rate
//!   over the window reaches `trip_permille` (with at least `min_samples`
//!   events) the breaker trips.
//! * **Open** — HTM denied; executions go straight to their fallback. The
//!   circuit stays open for a cool-down of `cooldown_ns × 2^(level−1)`
//!   (capped at `max_cooldown_ns`), jittered to ±50 % so granules that
//!   tripped together do not probe together.
//! * **Half-open** — the cool-down elapsed; the whole cohort may attempt
//!   HTM again, over a freshly reset rate window. One committed
//!   transaction closes the circuit (restoring HTM and resetting the
//!   level); the abort rate re-crossing the threshold reopens it one
//!   level deeper. Probing as a cohort rather than via a single winner
//!   matters: while the circuit is open every execution runs the lock,
//!   and that convoy churns the lock word so continuously that a lone
//!   probe transaction almost always conflicts with it — recovery would
//!   never happen. When everyone probes at once the lock falls quiet,
//!   exactly like the storm-free steady state the probe is detecting.
//!
//! All state is in relaxed atomics: races between concurrent recorders can
//! at worst delay a trip by a few events, and under the deterministic
//! simulator (one lane at a time) the whole machine is exactly
//! reproducible.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use ale_vtime::{now, HtmProfile, Rng};

/// Circuit-breaker thresholds. The defaults suit the simulated platforms'
/// nanosecond scales; real deployments would widen the windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Width of the sliding abort-rate window (two half-window buckets).
    pub window_ns: u64,
    /// Storm-class abort rate (per mille of attempts in the window) at
    /// which the circuit trips.
    pub trip_permille: u32,
    /// Minimum attempts in the window before the rate is believed.
    pub min_samples: u32,
    /// Base cool-down after a trip; doubles per consecutive failed probe.
    pub cooldown_ns: u64,
    /// Cool-down growth cap.
    pub max_cooldown_ns: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window_ns: 20_000,
            trip_permille: 800,
            min_samples: 16,
            cooldown_ns: 100_000,
            max_cooldown_ns: 800_000,
        }
    }
}

/// The circuit's current position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// A state change worth reporting (drives `check_hooks` events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    None,
    /// Closed → Open: HTM is now denied for this granule.
    Tripped,
    /// Half-open probe committed: HTM is restored.
    Restored,
}

const CLOSED: u32 = 0;
const OPEN: u32 = 1;
const HALF_OPEN: u32 = 2;

/// The sliding-window half-buckets, grouped and aligned onto their own
/// cache line (DESIGN.md §14 false-sharing audit). Every commit and abort
/// writes these counters, while `state`/`open_until` are only *read* on
/// the hot `allow()` admission check; without the separation each bucket
/// write would invalidate the line the whole cohort polls.
#[derive(Debug, Default)]
#[repr(align(128))]
struct RateWindow {
    /// Virtual-time start of the current half-bucket.
    bucket_start: AtomicU64,
    cur_aborts: AtomicU32,
    cur_attempts: AtomicU32,
    prev_aborts: AtomicU32,
    prev_attempts: AtomicU32,
}

/// Per-granule abort-storm circuit breaker. See the module docs.
#[derive(Debug)]
pub struct StormBreaker {
    cfg: BreakerConfig,
    state: AtomicU32,
    /// Virtual-time instant the current cool-down expires.
    open_until: AtomicU64,
    /// Consecutive failed probes + 1 while open (drives cool-down growth).
    trip_level: AtomicU32,
    /// Sliding abort-rate window, padded onto its own cache line.
    window: RateWindow,
    trips: AtomicU64,
    restores: AtomicU64,
    /// Interned trace label for breaker-edge events (0 = unlabelled).
    trace_label: AtomicU32,
}

impl StormBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        StormBreaker {
            cfg,
            state: AtomicU32::new(CLOSED),
            open_until: AtomicU64::new(0),
            trip_level: AtomicU32::new(0),
            window: RateWindow::default(),
            trips: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            trace_label: AtomicU32::new(0),
        }
    }

    /// Attach an interned `ale_trace` label id; breaker-edge trace events
    /// carry it so the merged stream attributes edges to a granule.
    pub fn set_trace_label(&self, id: u16) {
        self.trace_label.store(id as u32, Ordering::Relaxed);
    }

    /// Trace hook for a circuit edge `from` → `to` (0 Closed, 1 Open,
    /// 2 HalfOpen). `ale_trace::emit` self-gates to one branch when
    /// tracing is disabled; the extra loads here only run on edges, which
    /// are rare by construction.
    fn trace_edge(&self, from: u8, to: u8, level: u32) {
        if !ale_trace::is_enabled() {
            return;
        }
        let cooldown = if to == OPEN as u8 {
            self.open_until
                .load(Ordering::Relaxed)
                .saturating_sub(now())
        } else {
            0
        };
        ale_trace::emit(ale_trace::TraceEvent::breaker_edge(
            self.trace_label.load(Ordering::Relaxed) as u16,
            from,
            to,
            level.min(u8::MAX as u32) as u8,
            cooldown,
        ));
    }

    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Relaxed) {
            OPEN => BreakerState::Open,
            HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Closed→Open transitions so far (deepening re-opens not counted).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Successful probe restorations so far.
    pub fn restores(&self) -> u64 {
        self.restores.load(Ordering::Relaxed)
    }

    /// May this execution attempt HTM right now? While open, the first
    /// caller past the cool-down flips the circuit half-open; from then on
    /// the *whole cohort* may probe until a commit closes the circuit or
    /// the abort rate re-trips it. A single-winner probe cannot work here:
    /// while the circuit is open every other execution runs the lock, and
    /// that convoy churns the lock word continuously, so a lone probe
    /// transaction almost always conflicts with it — the all-lock state
    /// would be self-sustaining. Letting everyone probe at once drains the
    /// lock traffic exactly like the storm-free steady state the probe is
    /// trying to detect.
    #[inline]
    pub fn allow(&self) -> bool {
        match self.state.load(Ordering::Relaxed) {
            CLOSED => true,
            OPEN => {
                if now() < self.open_until.load(Ordering::Relaxed) {
                    return false;
                }
                // Cool-down over: flip half-open. The winner resets the
                // rate window so the cohort's verdict is based on fresh
                // samples only; losers just join the probing cohort.
                if self
                    .state
                    .compare_exchange(OPEN, HALF_OPEN, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    self.reset_buckets();
                    self.trace_edge(1, 2, self.trip_level.load(Ordering::Relaxed));
                }
                true
            }
            _ => true, // half-open: the probing cohort
        }
    }

    /// Record an HTM commit. Closes the circuit if a probe cohort is in
    /// flight: one genuine commit proves the storm has passed.
    pub fn record_commit(&self) -> BreakerTransition {
        self.roll_window();
        self.window.cur_attempts.fetch_add(1, Ordering::Relaxed);
        if self.state.load(Ordering::Relaxed) == HALF_OPEN
            && self
                .state
                .compare_exchange(HALF_OPEN, CLOSED, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            self.reset_buckets();
            self.trip_level.store(0, Ordering::Relaxed);
            self.restores.fetch_add(1, Ordering::Relaxed);
            self.trace_edge(2, 0, 0);
            return BreakerTransition::Restored;
        }
        BreakerTransition::None
    }

    /// Record an HTM abort; `storm_class` marks conflict/capacity aborts
    /// (the kinds a storm is made of — lock-held and spurious aborts don't
    /// count toward tripping). Trips the circuit when the windowed rate
    /// crosses the threshold: from closed that is a fresh (counted) trip
    /// at the base cool-down; from half-open it is a failed probe cohort,
    /// reopening one level deeper (uncounted).
    pub fn record_abort(&self, storm_class: bool, rng: &mut Rng) -> BreakerTransition {
        self.roll_window();
        self.window.cur_attempts.fetch_add(1, Ordering::Relaxed);
        if storm_class {
            self.window.cur_aborts.fetch_add(1, Ordering::Relaxed);
        }
        if !storm_class {
            return BreakerTransition::None;
        }
        let from = self.state.load(Ordering::Relaxed);
        if from == OPEN {
            return BreakerTransition::None;
        }
        let (aborts, attempts) = self.window_counts();
        if attempts >= self.cfg.min_samples
            && aborts.saturating_mul(1000) >= attempts.saturating_mul(self.cfg.trip_permille)
            && self
                .state
                .compare_exchange(from, OPEN, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            if from == CLOSED {
                self.trip_level.store(1, Ordering::Relaxed);
                self.arm_cooldown(1, rng);
                self.trips.fetch_add(1, Ordering::Relaxed);
                self.trace_edge(0, 1, 1);
                return BreakerTransition::Tripped;
            }
            // A probe cohort re-confirmed the storm: deepen, don't count.
            let level = self.trip_level.fetch_add(1, Ordering::Relaxed) + 1;
            self.arm_cooldown(level, rng);
            self.trace_edge(2, 1, level);
        }
        BreakerTransition::None
    }

    /// Cool-down for `level` consecutive failures: exponential growth,
    /// capped, with ±50 % decorrelation jitter.
    fn arm_cooldown(&self, level: u32, rng: &mut Rng) {
        let base = self
            .cfg
            .cooldown_ns
            .saturating_mul(1u64 << (level - 1).min(6))
            .min(self.cfg.max_cooldown_ns)
            .max(1);
        let jittered = base / 2 + rng.gen_range(base / 2 + 1);
        self.open_until
            .store(now().saturating_add(jittered), Ordering::Relaxed);
    }

    fn window_counts(&self) -> (u32, u32) {
        let aborts = self.window.cur_aborts.load(Ordering::Relaxed)
            + self.window.prev_aborts.load(Ordering::Relaxed);
        let attempts = self.window.cur_attempts.load(Ordering::Relaxed)
            + self.window.prev_attempts.load(Ordering::Relaxed);
        (aborts, attempts)
    }

    fn reset_buckets(&self) {
        self.window.cur_aborts.store(0, Ordering::Relaxed);
        self.window.cur_attempts.store(0, Ordering::Relaxed);
        self.window.prev_aborts.store(0, Ordering::Relaxed);
        self.window.prev_attempts.store(0, Ordering::Relaxed);
        self.window.bucket_start.store(now(), Ordering::Relaxed);
    }

    /// Advance the two half-window buckets. One racing recorder wins the
    /// shift via CAS on the bucket start; losers just record into whichever
    /// bucket is current — at worst the window is a half-bucket stale.
    fn roll_window(&self) {
        let half = (self.cfg.window_ns / 2).max(1);
        let t = now();
        let start = self.window.bucket_start.load(Ordering::Relaxed);
        if t < start.saturating_add(half) {
            return;
        }
        if self
            .window
            .bucket_start
            .compare_exchange(start, t, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        if t >= start.saturating_add(half * 2) {
            // Idle gap longer than the whole window: both buckets are stale.
            self.window.prev_aborts.store(0, Ordering::Relaxed);
            self.window.prev_attempts.store(0, Ordering::Relaxed);
        } else {
            self.window.prev_aborts.store(
                self.window.cur_aborts.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
            self.window.prev_attempts.store(
                self.window.cur_attempts.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
        self.window.cur_aborts.store(0, Ordering::Relaxed);
        self.window.cur_attempts.store(0, Ordering::Relaxed);
    }
}

/// Startup HTM capability probe: can this profile commit an empty
/// transaction at all? A few attempts absorb spurious aborts; `false`
/// means HTM is effectively unavailable (e.g. no RTM on the host) and the
/// runtime should degrade to SWOpt+Lock instead of burning a retry budget
/// on every critical section.
pub fn htm_supported(profile: &HtmProfile, rng: &mut Rng) -> bool {
    const PROBE_ATTEMPTS: u32 = 8;
    for _ in 0..PROBE_ATTEMPTS {
        if crate::txn::attempt(profile, rng, || ()).is_ok() {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_vtime::Platform;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window_ns: 1_000,
            trip_permille: 500,
            min_samples: 4,
            cooldown_ns: 10_000,
            max_cooldown_ns: 80_000,
        }
    }

    #[test]
    fn trips_on_abort_storm_and_denies_htm() {
        use ale_vtime::Sim;
        Sim::new(Platform::testbed(), 1).run(|_| {
            let b = StormBreaker::new(cfg());
            let mut rng = Rng::new(1);
            assert!(b.allow());
            let mut tripped = false;
            for _ in 0..8 {
                tripped |= b.record_abort(true, &mut rng) == BreakerTransition::Tripped;
            }
            assert!(tripped, "sustained storm-class aborts must trip");
            assert_eq!(b.state(), BreakerState::Open);
            assert_eq!(b.trips(), 1);
            assert!(!b.allow(), "open circuit denies HTM during cool-down");
        });
    }

    #[test]
    fn benign_aborts_do_not_trip() {
        let b = StormBreaker::new(cfg());
        let mut rng = Rng::new(2);
        for _ in 0..64 {
            assert_eq!(b.record_abort(false, &mut rng), BreakerTransition::None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn commits_keep_rate_below_threshold() {
        use ale_vtime::Sim;
        Sim::new(Platform::testbed(), 1).run(|_| {
            let b = StormBreaker::new(cfg());
            let mut rng = Rng::new(3);
            for _ in 0..32 {
                b.record_commit();
                b.record_abort(true, &mut rng);
                b.record_commit();
            }
            assert_eq!(b.state(), BreakerState::Closed, "1/3 abort rate < 50%");
        });
    }

    #[test]
    fn probe_after_cooldown_restores_or_deepens() {
        use ale_vtime::Sim;
        let report = Sim::new(Platform::testbed(), 1).run(|_| {
            let b = StormBreaker::new(cfg());
            let mut rng = Rng::new(4);
            while b.record_abort(true, &mut rng) != BreakerTransition::Tripped {}
            assert!(!b.allow());
            // Sit out the cool-down in virtual time.
            ale_vtime::tick(ale_vtime::Event::LocalWork(200_000));
            assert!(b.allow(), "cool-down over: the circuit flips half-open");
            assert_eq!(b.state(), BreakerState::HalfOpen);
            assert!(b.allow(), "the whole cohort may probe");
            // The cohort's verdict is rate-based over a fresh window: the
            // storm is still blowing, so aborts re-trip it one level
            // deeper (uncounted in `trips`).
            let mut reopened = false;
            for _ in 0..8 {
                b.record_abort(true, &mut rng);
                reopened |= b.state() == BreakerState::Open;
            }
            assert!(reopened, "a storming probe cohort must reopen");
            assert_eq!(b.trips(), 1, "deepening re-opens are not counted");
            assert!(!b.allow());
            ale_vtime::tick(ale_vtime::Event::LocalWork(400_000));
            assert!(b.allow());
            // A probe commits: restored.
            assert_eq!(b.record_commit(), BreakerTransition::Restored);
            assert_eq!(b.state(), BreakerState::Closed);
            assert!(b.allow());
            b.restores()
        });
        assert_eq!(report.results[0], 1);
    }

    #[test]
    fn benign_probe_aborts_do_not_reopen_the_circuit() {
        use ale_vtime::Sim;
        Sim::new(Platform::testbed(), 1).run(|_| {
            let b = StormBreaker::new(cfg());
            let mut rng = Rng::new(7);
            while b.record_abort(true, &mut rng) != BreakerTransition::Tripped {}
            ale_vtime::tick(ale_vtime::Event::LocalWork(20_000));
            assert!(b.allow(), "cool-down over: half-open");
            // Probes losing benign rounds to the lock convoy (lock-held,
            // spurious) say nothing about the storm: the circuit stays
            // half-open and the cohort keeps probing.
            for _ in 0..32 {
                b.record_abort(false, &mut rng);
                assert_eq!(b.state(), BreakerState::HalfOpen);
                assert!(b.allow(), "cohort keeps probing");
            }
            assert_eq!(b.record_commit(), BreakerTransition::Restored);
            assert_eq!(b.state(), BreakerState::Closed);
        });
    }

    #[test]
    fn idle_gap_decays_the_window() {
        use ale_vtime::Sim;
        Sim::new(Platform::testbed(), 1).run(|_| {
            let b = StormBreaker::new(cfg());
            let mut rng = Rng::new(5);
            // Aborts just below the sample threshold, then a long gap.
            for _ in 0..3 {
                b.record_abort(true, &mut rng);
            }
            ale_vtime::tick(ale_vtime::Event::LocalWork(10_000));
            // Old aborts decayed out: these three alone cannot trip either.
            for _ in 0..3 {
                assert_eq!(b.record_abort(true, &mut rng), BreakerTransition::None);
            }
            assert_eq!(b.state(), BreakerState::Closed);
        });
    }

    #[test]
    fn htm_probe_reports_capability() {
        let mut rng = Rng::new(6);
        let p = Platform::testbed().htm.unwrap();
        assert!(htm_supported(&p, &mut rng));
    }
}
