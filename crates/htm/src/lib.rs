//! # ale-htm — software-emulated best-effort hardware transactional memory
//!
//! The ALE paper's Transactional Lock Elision mode requires HTM (Rock's
//! checkpointing HTM or Intel TSX). This crate substitutes a **software
//! emulation** with the same observable interface a TLE runtime needs:
//!
//! * **Atomicity & isolation** — transactions buffer writes (TL2-style lazy
//!   versioning over a global version clock) and publish them atomically at
//!   commit, so speculative state is never visible to other threads, exactly
//!   like real HTM.
//! * **Conflict detection** — against other transactions *and* against
//!   non-transactional writes (e.g. a Lock-mode critical section storing to
//!   an [`HtmCell`], or a lock acquisition bumping the lock word a
//!   transaction has subscribed to). Every transactional read is opaque:
//!   it can never observe inconsistent state; instead the transaction
//!   aborts.
//! * **Best-effort failures** — per-platform read/write-set capacity limits
//!   and spurious aborts (probabilistic, deterministic under a seeded
//!   [`Rng`](ale_vtime::Rng)), with abort status codes and an Intel-style
//!   "retry may succeed" hint. See [`ale_vtime::HtmProfile`].
//!
//! Data that may be accessed transactionally lives in [`HtmCell`]s. Inside
//! a transaction (see [`attempt`]) `get`/`set` are transactional; outside,
//! they are seqlock-consistent plain accesses — which is what the paper's
//! SWOpt and Lock modes use. This mirrors real HTM, where the same loads
//! and stores are transactional or not depending on context.
//!
//! Aborts transfer control out of the transaction body by unwinding with a
//! private payload (caught in [`attempt`]), mirroring real HTM's
//! control-flow reset to the abort handler. User code never observes the
//! unwind.
//!
//! With the `real-rtm` cargo feature on x86-64, the [`rtm`] module provides
//! an [`attempt`]-shaped entry point that executes on actual Intel RTM
//! hardware when available at runtime.
//!
//! ## Example
//!
//! ```
//! use ale_htm::{attempt, HtmCell};
//! use ale_vtime::{Platform, Rng};
//!
//! let profile = Platform::haswell().htm.unwrap();
//! let mut rng = Rng::new(1);
//! let a = HtmCell::new(1u64);
//! let b = HtmCell::new(2u64);
//! // Swap a and b atomically.
//! let r = attempt(&profile, &mut rng, || {
//!     let (x, y) = (a.get(), b.get());
//!     a.set(y);
//!     b.set(x);
//! });
//! assert!(r.is_ok());
//! assert_eq!((a.get(), b.get()), (2, 1));
//! ```

pub mod abort;
pub mod besteffort;
pub mod cell;
pub mod inject;
#[cfg(all(feature = "real-rtm", target_arch = "x86_64"))]
pub mod rtm;
pub mod storm;
pub mod txn;

pub use abort::{AbortCode, AbortStatus};
pub use cell::HtmCell;
pub use inject::{
    CrashPlan, CrashPoint, InjectKind, InjectPlan, InjectPoint, InjectRule, InjectedCrash,
    InjectedPanic, TornMode,
};
pub use storm::{htm_supported, BreakerConfig, BreakerState, BreakerTransition, StormBreaker};
pub use txn::{attempt, explicit_abort, in_txn, init_panic_hook, read_set_len, write_set_len};
