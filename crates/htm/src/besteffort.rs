//! The best-effort failure model layered over the TL2 engine.
//!
//! Real HTMs are *best effort*: they may abort for reasons unrelated to
//! data conflicts — capacity overflow, TLB misses, interrupts, unfriendly
//! instructions. The ALE policies' whole job is coping with this, so the
//! emulation reproduces it faithfully and *deterministically*: capacity
//! limits are exact set-size checks and "spurious" events are drawn from a
//! seeded per-transaction random stream, so a simulation replays
//! identically.

use ale_vtime::{HtmProfile, Rng};

/// Per-transaction failure state: the platform's HTM profile plus a
/// deterministic random stream for spurious events.
#[derive(Debug)]
pub struct FailureModel {
    profile: HtmProfile,
    rng: Rng,
}

impl FailureModel {
    pub fn new(profile: HtmProfile, rng: Rng) -> Self {
        FailureModel { profile, rng }
    }

    /// Should this transaction abort spuriously right at begin?
    pub fn txn_spurious(&mut self) -> bool {
        self.profile.spurious_abort_per_txn > 0.0
            && self.rng.gen_bool(self.profile.spurious_abort_per_txn)
    }

    /// Should this transactional access abort spuriously?
    pub fn access_spurious(&mut self) -> bool {
        self.profile.spurious_abort_per_access > 0.0
            && self.rng.gen_bool(self.profile.spurious_abort_per_access)
    }

    /// Does a spurious abort on this platform hint that a retry may help?
    pub fn spurious_retry_hint(&self) -> bool {
        self.profile.spurious_retry_hint
    }

    /// Has the read set outgrown the platform?
    pub fn read_capacity_exceeded(&self, distinct_reads: usize) -> bool {
        distinct_reads > self.profile.max_read_set
    }

    /// Has the write set outgrown the platform?
    pub fn write_capacity_exceeded(&self, distinct_writes: usize) -> bool {
        distinct_writes > self.profile.max_write_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_vtime::Platform;

    fn model(p: fn() -> Platform) -> FailureModel {
        FailureModel::new(p().htm.expect("platform has HTM"), Rng::new(7))
    }

    #[test]
    fn testbed_never_fails_spuriously() {
        let mut m = model(Platform::testbed);
        for _ in 0..10_000 {
            assert!(!m.txn_spurious());
            assert!(!m.access_spurious());
        }
        assert!(!m.read_capacity_exceeded(1 << 16));
        assert!(m.read_capacity_exceeded((1 << 16) + 1));
    }

    #[test]
    fn rock_fails_more_than_haswell() {
        let mut rock = model(Platform::rock);
        let mut haswell = model(Platform::haswell);
        let rock_fails = (0..20_000).filter(|_| rock.txn_spurious()).count();
        let haswell_fails = (0..20_000).filter(|_| haswell.txn_spurious()).count();
        assert!(
            rock_fails > haswell_fails * 2,
            "rock {rock_fails} vs haswell {haswell_fails}"
        );
    }

    #[test]
    fn capacity_checks_match_profile() {
        let m = model(Platform::rock);
        assert!(!m.write_capacity_exceeded(32));
        assert!(m.write_capacity_exceeded(33));
        assert!(!m.read_capacity_exceeded(2048));
        assert!(m.read_capacity_exceeded(2049));
    }

    #[test]
    fn spurious_streams_are_deterministic() {
        let mut a = model(Platform::rock);
        let mut b = model(Platform::rock);
        let va: Vec<bool> = (0..1000).map(|_| a.txn_spurious()).collect();
        let vb: Vec<bool> = (0..1000).map(|_| b.txn_spurious()).collect();
        assert_eq!(va, vb);
    }
}
