//! Abort status codes, mirroring the information real best-effort HTMs
//! report (Intel RTM's EAX status word, Rock's CPS register).
//!
//! The ALE library's policies consume two things from a failed transaction:
//! the *reason class* (so lock-held aborts can be accounted "in a much
//! lighter way than others", §4) and a *retry hint* (whether the hardware
//! believes retrying could succeed — capacity aborts will not, conflicts
//! may).

/// Why a hardware transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCode {
    /// A data conflict with another transaction or a non-transactional
    /// write (including a lock acquisition on a subscribed lock word).
    Conflict,
    /// The read or write set exceeded the platform's capacity.
    Capacity,
    /// The transaction body requested an abort (`xabort`-style), carrying a
    /// user code. ALE uses this for "lock was held at subscription time"
    /// and for the SWOpt self-abort idiom.
    Explicit(u8),
    /// A micro-architectural event unrelated to the program (interrupt,
    /// TLB miss, unfriendly instruction…).
    Spurious,
}

impl AbortCode {
    /// The conventional explicit code TLE uses when the elided lock was
    /// held at subscription time.
    pub const LOCK_HELD: u8 = 0xFF;

    /// Explicit code for "this operation cannot run transactionally"
    /// (e.g. taking an internal data mutex — the analogue of real HTM
    /// aborting on unfriendly instructions/syscalls/malloc). Retrying in a
    /// transaction is pointless; fall back to another mode.
    pub const TX_UNFRIENDLY: u8 = 0xFD;

    /// True if this is the explicit lock-held abort.
    pub fn is_lock_held(self) -> bool {
        matches!(self, AbortCode::Explicit(Self::LOCK_HELD))
    }

    /// Stable small integer for trace records: 0 conflict, 1 capacity,
    /// 2 explicit, 3 spurious. Part of the trace event schema (DESIGN.md
    /// §11) — extend only by appending.
    pub fn class(self) -> u8 {
        match self {
            AbortCode::Conflict => 0,
            AbortCode::Capacity => 1,
            AbortCode::Explicit(_) => 2,
            AbortCode::Spurious => 3,
        }
    }

    /// The detail byte accompanying [`AbortCode::class`]: the user code of
    /// an explicit abort, 0 otherwise.
    pub fn detail(self) -> u8 {
        match self {
            AbortCode::Explicit(code) => code,
            _ => 0,
        }
    }
}

/// Full abort status: code plus the hardware's retry hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortStatus {
    pub code: AbortCode,
    /// Whether the status word suggests an immediate retry might succeed.
    /// (On Intel this is the `_XABORT_RETRY` bit; Rock's status register
    /// was far less informative, which `HtmProfile::spurious_retry_hint`
    /// models.)
    pub may_retry: bool,
}

impl AbortStatus {
    pub fn conflict() -> Self {
        AbortStatus {
            code: AbortCode::Conflict,
            may_retry: true,
        }
    }

    pub fn capacity() -> Self {
        AbortStatus {
            code: AbortCode::Capacity,
            may_retry: false,
        }
    }

    pub fn explicit(user_code: u8) -> Self {
        // Explicit aborts are deliberate; retrying blindly is pointless —
        // the caller decides what the code means.
        AbortStatus {
            code: AbortCode::Explicit(user_code),
            may_retry: false,
        }
    }

    pub fn lock_held() -> Self {
        Self::explicit(AbortCode::LOCK_HELD)
    }

    pub fn spurious(retry_hint: bool) -> Self {
        AbortStatus {
            code: AbortCode::Spurious,
            may_retry: retry_hint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        assert_eq!(AbortStatus::conflict().code, AbortCode::Conflict);
        assert!(AbortStatus::conflict().may_retry);
        assert_eq!(AbortStatus::capacity().code, AbortCode::Capacity);
        assert!(!AbortStatus::capacity().may_retry);
        assert_eq!(AbortStatus::explicit(3).code, AbortCode::Explicit(3));
        assert!(AbortStatus::lock_held().code.is_lock_held());
        assert!(!AbortCode::Conflict.is_lock_held());
        assert!(!AbortCode::Explicit(1).is_lock_held());
        assert!(AbortStatus::spurious(true).may_retry);
        assert!(!AbortStatus::spurious(false).may_retry);
    }
}
