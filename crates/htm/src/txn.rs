//! The transaction engine: TL2-style lazy versioning with a global version
//! clock, plus the best-effort failure model.
//!
//! One [`attempt`] is one hardware transaction:
//!
//! 1. **Begin** — snapshot the global version clock (`rv`); maybe abort
//!    spuriously (per-transaction probability).
//! 2. **Body** — [`HtmCell::get`](crate::HtmCell::get) validates each read
//!    against `rv` (opacity: an inconsistent view is impossible — the
//!    transaction aborts instead); `set` buffers into the write set.
//!    Capacity and per-access spurious aborts are checked here.
//! 3. **Commit** — lock the write-set cells (bounded spin, else conflict
//!    abort), validate the read set, advance the global clock, publish the
//!    buffered writes, release with the new version.
//!
//! Aborts unwind with a private payload caught in [`attempt`] — control
//! never returns into the body, matching real HTM. A process-wide panic
//! hook silences these control-flow unwinds (they are not errors).
//!
//! Nested [`attempt`]s are *flattened* into the enclosing transaction,
//! which is also what the ALE library expects of HTM (§4.1 of the paper).

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Once;

use ale_vtime::{tick, tick_n, Event, HtmProfile, Rng};

use crate::abort::AbortStatus;
use crate::besteffort::FailureModel;
use crate::cell::{is_locked, ver_of, HtmCell, GLOBAL_VCLOCK, LOCKED, MAX_CELL_SIZE};

/// How long a committer spins on a locked write-set cell before declaring a
/// conflict. Small: commit-time locks are held only for the publish phase.
const COMMIT_SPIN_LIMIT: u32 = 64;

/// Sliding window scanned to suppress duplicate read-set entries.
const READ_DEDUP_WINDOW: usize = 8;

struct WriteEntry {
    meta: *const AtomicU64,
    value_ptr: *mut u8,
    size: usize,
    buf: [u8; MAX_CELL_SIZE],
}

struct TxState {
    rv: u64,
    reads: Vec<*const AtomicU64>,
    writes: Vec<WriteEntry>,
    fm: FailureModel,
}

thread_local! {
    static TX: RefCell<Option<TxState>> = const { RefCell::new(None) };
    /// Recycled set buffers so repeated attempts don't allocate.
    static SCRATCH: RefCell<(Vec<*const AtomicU64>, Vec<WriteEntry>)> =
        RefCell::new((Vec::with_capacity(64), Vec::with_capacity(16)));
}

/// Unwind payload used for abort control flow. Private: user code cannot
/// catch it by type, and [`attempt`] re-raises anything else.
struct TxAbortUnwind(AbortStatus);

fn do_abort(status: AbortStatus) -> ! {
    std::panic::panic_any(TxAbortUnwind(status))
}

fn do_injected_panic() -> ! {
    std::panic::panic_any(crate::inject::InjectedPanic)
}

/// Install (once) a panic hook that keeps control-flow unwinds silent:
/// abort unwinds (normal transaction control flow) and
/// [`InjectedPanic`](crate::inject::InjectedPanic) payloads (planned faults
/// raised by the checking harness).
fn init_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.downcast_ref::<TxAbortUnwind>().is_none()
                && p.downcast_ref::<crate::inject::InjectedPanic>().is_none()
                && p.downcast_ref::<crate::inject::InjectedCrash>().is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Install the quiet panic hook eagerly. [`attempt`] does this on first
/// use; harnesses that raise [`InjectedPanic`](crate::inject::InjectedPanic)
/// faults in Lock or SWOpt mode (where no transaction ever begins) call
/// this first so planned unwinds stay silent there too.
pub fn init_panic_hook() {
    init_hook();
}

/// True while the calling thread is inside a transaction.
#[inline]
pub fn in_txn() -> bool {
    TX.with(|t| t.borrow().is_some())
}

/// Number of entries currently in the read set (0 outside a transaction).
pub fn read_set_len() -> usize {
    TX.with(|t| t.borrow().as_ref().map_or(0, |tx| tx.reads.len()))
}

/// Number of entries currently in the write set (0 outside a transaction).
pub fn write_set_len() -> usize {
    TX.with(|t| t.borrow().as_ref().map_or(0, |tx| tx.writes.len()))
}

/// Explicitly abort the enclosing transaction with a user code
/// (the `xabort imm8` analogue). Panics if no transaction is active.
pub fn explicit_abort(code: u8) -> ! {
    assert!(in_txn(), "explicit_abort called outside a transaction");
    do_abort(AbortStatus::explicit(code))
}

/// Run `body` as one best-effort hardware transaction.
///
/// Returns `Ok(body's value)` on commit, or the [`AbortStatus`] on abort.
/// On abort no effect of `body` is visible (writes were buffered). The
/// caller decides whether and how to retry — that is the ALE policy's job.
///
/// `rng` drives the deterministic spurious-failure stream. If a
/// transaction is already active the call is flattened into it.
pub fn attempt<R>(
    profile: &HtmProfile,
    rng: &mut Rng,
    body: impl FnOnce() -> R,
) -> Result<R, AbortStatus> {
    if in_txn() {
        // Flat nesting: run inside the enclosing transaction.
        return Ok(body());
    }
    init_hook();
    tick(Event::HtmBegin);

    match crate::inject::check(crate::inject::InjectPoint::Begin) {
        Some(crate::inject::Injected::Abort(status)) => {
            tick(Event::HtmAbort);
            return Err(status);
        }
        Some(crate::inject::Injected::Panic) => {
            // The planned fault is a CS body that panics: nothing
            // transactional has started, so the unwind carries straight to
            // the critical-section driver's unwind-safety machinery.
            tick(Event::HtmAbort);
            do_injected_panic();
        }
        None => {}
    }

    let mut fm = FailureModel::new(profile.clone(), rng.fork(0x7854_6E67));
    if fm.txn_spurious() {
        tick(Event::HtmAbort);
        return Err(AbortStatus::spurious(fm.spurious_retry_hint()));
    }

    let (reads, writes) = SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        (std::mem::take(&mut s.0), std::mem::take(&mut s.1))
    });
    let rv = GLOBAL_VCLOCK.load(Ordering::Acquire);
    TX.with(|t| {
        *t.borrow_mut() = Some(TxState {
            rv,
            reads,
            writes,
            fm,
        });
    });

    let outcome = catch_unwind(AssertUnwindSafe(body));
    let st = TX
        .with(|t| t.borrow_mut().take())
        .expect("transaction state vanished");

    let result = match outcome {
        Ok(value) => {
            let committed = match crate::inject::check(crate::inject::InjectPoint::Commit) {
                Some(crate::inject::Injected::Abort(status)) => Err(status),
                Some(crate::inject::Injected::Panic) => {
                    // Planned panic at commit entry: the transaction dies
                    // with its buffered writes and the unwind reaches the
                    // driver, exactly like a body panic would.
                    tick(Event::HtmAbort);
                    recycle(st);
                    do_injected_panic();
                }
                None => commit(&st),
            };
            match committed {
                Ok(()) => {
                    tick(Event::HtmCommit);
                    Ok(value)
                }
                Err(status) => {
                    tick(Event::HtmAbort);
                    Err(status)
                }
            }
        }
        Err(payload) => {
            tick(Event::HtmAbort);
            match payload.downcast::<TxAbortUnwind>() {
                Ok(ab) => Err(ab.0),
                Err(other) => {
                    recycle(st);
                    resume_unwind(other)
                }
            }
        }
    };
    recycle(st);
    result
}

fn recycle(mut st: TxState) {
    st.reads.clear();
    st.writes.clear();
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        if s.0.capacity() < st.reads.capacity() {
            s.0 = st.reads;
        }
        if s.1.capacity() < st.writes.capacity() {
            s.1 = st.writes;
        }
    });
}

/// Transactional read of `cell` (called from `HtmCell::get`).
pub(crate) fn tx_read<T: Copy>(cell: &HtmCell<T>) -> T {
    tick(Event::SharedLoad);
    match crate::inject::check(crate::inject::InjectPoint::Read) {
        Some(crate::inject::Injected::Abort(status)) => do_abort(status),
        Some(crate::inject::Injected::Panic) => do_injected_panic(),
        None => {}
    }
    TX.with(|slot| {
        let mut borrow = slot.borrow_mut();
        let tx = borrow.as_mut().expect("tx_read outside transaction");

        // Read-after-write: return the buffered value.
        let vp = cell.value_ptr() as *mut u8;
        if let Some(w) = tx.writes.iter().find(|w| w.value_ptr == vp) {
            // SAFETY: buf holds a valid T written by tx_write for this cell.
            return unsafe { std::ptr::read_unaligned(w.buf.as_ptr() as *const T) };
        }

        if tx.fm.access_spurious() {
            let hint = tx.fm.spurious_retry_hint();
            do_abort(AbortStatus::spurious(hint));
        }

        let meta = cell.meta_word();
        let m1 = meta.load(Ordering::Acquire);
        if is_locked(m1) || ver_of(m1) > tx.rv {
            do_abort(AbortStatus::conflict());
        }
        // SAFETY: value race resolved by the version re-check below.
        let v = unsafe { std::ptr::read_volatile(cell.value_ptr()) };
        fence(Ordering::Acquire);
        let m2 = meta.load(Ordering::Relaxed);
        if m1 != m2 {
            do_abort(AbortStatus::conflict());
        }

        let mp = meta as *const AtomicU64;
        let start = tx.reads.len().saturating_sub(READ_DEDUP_WINDOW);
        if !tx.reads[start..].contains(&mp) {
            tx.reads.push(mp);
            if tx.fm.read_capacity_exceeded(tx.reads.len()) {
                do_abort(AbortStatus::capacity());
            }
        }
        v
    })
}

/// Transactional (buffered) write of `cell` (called from `HtmCell::set`).
pub(crate) fn tx_write<T: Copy>(cell: &HtmCell<T>, value: T) {
    tick(Event::SharedStore);
    match crate::inject::check(crate::inject::InjectPoint::Write) {
        Some(crate::inject::Injected::Abort(status)) => do_abort(status),
        Some(crate::inject::Injected::Panic) => do_injected_panic(),
        None => {}
    }
    TX.with(|slot| {
        let mut borrow = slot.borrow_mut();
        let tx = borrow.as_mut().expect("tx_write outside transaction");

        if tx.fm.access_spurious() {
            let hint = tx.fm.spurious_retry_hint();
            do_abort(AbortStatus::spurious(hint));
        }

        let size = std::mem::size_of::<T>();
        let mut buf = [0u8; MAX_CELL_SIZE];
        // SAFETY: size_of::<T>() <= MAX_CELL_SIZE (enforced by HtmCell::new).
        unsafe {
            std::ptr::copy_nonoverlapping(&value as *const T as *const u8, buf.as_mut_ptr(), size);
        }

        let vp = cell.value_ptr() as *mut u8;
        if let Some(w) = tx.writes.iter_mut().find(|w| w.value_ptr == vp) {
            w.buf = buf;
            return;
        }

        // Eager conflict check: writing a cell someone else already
        // published to (or holds locked) cannot commit against our rv if we
        // also read it; even for blind writes, bailing early is cheaper.
        let meta = cell.meta_word();
        let m = meta.load(Ordering::Acquire);
        if is_locked(m) {
            do_abort(AbortStatus::conflict());
        }

        tx.writes.push(WriteEntry {
            meta: meta as *const AtomicU64,
            value_ptr: vp,
            size,
            buf,
        });
        if tx.fm.write_capacity_exceeded(tx.writes.len()) {
            do_abort(AbortStatus::capacity());
        }
    });
}

/// Commit: lock write cells, validate reads, publish, release.
fn commit(st: &TxState) -> Result<(), AbortStatus> {
    if st.writes.is_empty() {
        // Read-only transactions were validated read-by-read against rv.
        return Ok(());
    }

    // Phase 1: lock every write-set cell.
    let mut locked = 0usize;
    // Saved metas live outside `st` so the unlock path can restore them.
    let mut saved_metas: Vec<u64> = Vec::with_capacity(st.writes.len());
    'locking: for w in &st.writes {
        // SAFETY: cells outlive the transactions that access them.
        let meta = unsafe { &*w.meta };
        let mut spins = 0u32;
        loop {
            let m = meta.load(Ordering::Relaxed);
            tick(Event::Cas);
            if !is_locked(m)
                && meta
                    .compare_exchange_weak(m, m | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                saved_metas.push(m);
                locked += 1;
                continue 'locking;
            }
            spins += 1;
            if spins > COMMIT_SPIN_LIMIT {
                unlock(&st.writes[..locked], &saved_metas);
                return Err(AbortStatus::conflict());
            }
            std::hint::spin_loop();
        }
    }

    // Phase 2: validate the read set.
    tick_n(Event::SharedLoad, st.reads.len() as u64);
    for &rp in &st.reads {
        // SAFETY: as above.
        let m = unsafe { &*rp }.load(Ordering::Acquire);
        if is_locked(m) {
            // Locked by us is fine if the pre-lock version was valid.
            match st.writes.iter().position(|w| w.meta == rp) {
                Some(i) if ver_of(saved_metas[i]) <= st.rv => {}
                _ => {
                    unlock(&st.writes[..locked], &saved_metas);
                    return Err(AbortStatus::conflict());
                }
            }
        } else if ver_of(m) > st.rv {
            unlock(&st.writes[..locked], &saved_metas);
            return Err(AbortStatus::conflict());
        }
    }

    // Phase 3: publish.
    let wv = GLOBAL_VCLOCK.fetch_add(1, Ordering::Relaxed) + 1;
    tick_n(Event::SharedStore, st.writes.len() as u64);
    for w in &st.writes {
        // SAFETY: we hold the cell lock; readers retry while locked.
        unsafe {
            std::ptr::copy_nonoverlapping(w.buf.as_ptr(), w.value_ptr, w.size);
        }
        fence(Ordering::Release);
        // SAFETY: as above.
        unsafe { &*w.meta }.store(wv << 1, Ordering::Release);
    }
    Ok(())
}

fn unlock(writes: &[WriteEntry], saved_metas: &[u64]) {
    for (w, &m) in writes.iter().zip(saved_metas) {
        // SAFETY: we locked these cells in `commit`.
        unsafe { &*w.meta }.store(m, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abort::AbortCode;
    use ale_vtime::Platform;

    fn profile() -> HtmProfile {
        Platform::testbed().htm.unwrap()
    }

    fn rng() -> Rng {
        Rng::new(99)
    }

    #[test]
    fn commit_publishes_all_writes() {
        let a = HtmCell::new(0u64);
        let b = HtmCell::new(0u64);
        let r = attempt(&profile(), &mut rng(), || {
            a.set(1);
            b.set(2);
            assert_eq!(a.get(), 1, "read-after-write sees buffered value");
        });
        assert!(r.is_ok());
        assert_eq!((a.get(), b.get()), (1, 2));
    }

    #[test]
    fn abort_discards_all_writes() {
        let a = HtmCell::new(10u64);
        let r: Result<(), _> = attempt(&profile(), &mut rng(), || {
            a.set(99);
            explicit_abort(7);
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Explicit(7));
        assert_eq!(a.get(), 10, "aborted write must not be visible");
    }

    #[test]
    fn plain_store_invalidates_readers() {
        let a = HtmCell::new(0u64);
        let r: Result<u64, _> = attempt(&profile(), &mut rng(), || {
            let v = a.get();
            // A non-transactional store lands after our snapshot…
            a.plain_store(123);
            // …so our next transactional read of the cell must abort.
            v + a.get()
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        assert_eq!(a.get(), 123);
    }

    #[test]
    fn commit_validation_catches_interleaved_store() {
        // Read a cell transactionally, then have the "outside world" bump it
        // before commit; a write-set member forces a full commit validation.
        let observed = HtmCell::new(0u64);
        let unrelated = HtmCell::new(0u64);
        let r = attempt(&profile(), &mut rng(), || {
            let v = observed.get();
            unrelated.set(1);
            observed.plain_store(v + 1); // simulates a concurrent writer
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        assert_eq!(unrelated.get(), 0, "aborted transaction published nothing");
    }

    #[test]
    fn write_capacity_aborts() {
        let mut p = profile();
        p.max_write_set = 4;
        let cells: Vec<HtmCell<u64>> = (0..10).map(HtmCell::new).collect();
        let r = attempt(&p, &mut rng(), || {
            for c in &cells {
                c.set(0);
            }
        });
        let st = r.unwrap_err();
        assert_eq!(st.code, AbortCode::Capacity);
        assert!(!st.may_retry, "capacity aborts must not suggest retry");
    }

    #[test]
    fn read_capacity_aborts() {
        let mut p = profile();
        p.max_read_set = 4;
        let cells: Vec<HtmCell<u64>> = (0..10).map(HtmCell::new).collect();
        let r = attempt(&p, &mut rng(), || {
            cells.iter().map(|c| c.get()).sum::<u64>()
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Capacity);
    }

    #[test]
    fn duplicate_reads_do_not_exhaust_capacity() {
        let mut p = profile();
        p.max_read_set = 4;
        let a = HtmCell::new(7u64);
        let r = attempt(&p, &mut rng(), || {
            let mut sum = 0;
            for _ in 0..100 {
                sum += a.get();
            }
            sum
        });
        assert_eq!(r.unwrap(), 700);
    }

    #[test]
    fn spurious_aborts_happen_at_profile_rate() {
        let p = Platform::rock().htm.unwrap();
        let mut r = rng();
        let mut aborts = 0;
        let trials = 5000;
        for _ in 0..trials {
            if attempt(&p, &mut r, || ()).is_err() {
                aborts += 1;
            }
        }
        // rock: 2% per-txn spurious rate; empty body → no per-access rate.
        let rate = aborts as f64 / trials as f64;
        assert!((0.01..0.04).contains(&rate), "spurious rate {rate}");
    }

    #[test]
    fn nested_attempts_are_flattened() {
        let a = HtmCell::new(0u64);
        let r = attempt(&profile(), &mut rng(), || {
            a.set(1);
            let inner = attempt(&profile(), &mut rng(), || {
                assert!(in_txn());
                a.set(2);
                a.get()
            });
            assert_eq!(inner.unwrap(), 2);
            a.get()
        });
        assert_eq!(r.unwrap(), 2);
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn explicit_abort_in_nested_scope_aborts_outer() {
        let a = HtmCell::new(0u64);
        let r: Result<(), _> = attempt(&profile(), &mut rng(), || {
            a.set(5);
            let _ = attempt(&profile(), &mut rng(), || explicit_abort(3));
            unreachable!("flattened abort must unwind the outer attempt");
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Explicit(3));
        assert_eq!(a.get(), 0);
    }

    #[test]
    fn user_panics_propagate_and_clean_up() {
        let a = HtmCell::new(0u64);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = attempt(&profile(), &mut rng(), || {
                a.set(1);
                panic!("user bug");
            });
        }));
        assert!(caught.is_err());
        assert!(!in_txn(), "tx state must be cleared after a user panic");
        assert_eq!(a.get(), 0);
    }

    #[test]
    fn set_lengths_report_and_reset() {
        assert_eq!(read_set_len(), 0);
        assert_eq!(write_set_len(), 0);
        let a = HtmCell::new(0u64);
        let b = HtmCell::new(0u64);
        let r = attempt(&profile(), &mut rng(), || {
            let _ = a.get();
            b.set(1);
            (read_set_len(), write_set_len())
        });
        assert_eq!(r.unwrap(), (1, 1));
        assert_eq!(read_set_len(), 0);
    }

    #[test]
    fn concurrent_increments_are_atomic() {
        // Classic counter test: N threads × M transactional increments with
        // retry-until-commit must not lose updates.
        let counter = HtmCell::new(0u64);
        let p = profile();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let counter = &counter;
                let p = p.clone();
                s.spawn(move || {
                    let mut r = Rng::new(1000 + t);
                    for _ in 0..2000 {
                        loop {
                            let ok = attempt(&p, &mut r, || {
                                let v = counter.get();
                                counter.set(v + 1);
                            });
                            if ok.is_ok() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(counter.get(), 8000);
    }

    #[test]
    fn concurrent_disjoint_transactions_commit() {
        // Transactions touching disjoint cells shouldn't conflict (beyond
        // rare commit-window overlaps, resolved by retry).
        let cells: Vec<HtmCell<u64>> = (0..8).map(|_| HtmCell::new(0)).collect();
        let p = profile();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let cells = &cells;
                let p = p.clone();
                s.spawn(move || {
                    let mut r = Rng::new(t as u64);
                    for _ in 0..1000 {
                        loop {
                            let ok = attempt(&p, &mut r, || {
                                let v = cells[t].get();
                                cells[t].set(v + 1);
                            });
                            if ok.is_ok() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        for c in &cells {
            assert_eq!(c.get(), 1000);
        }
    }

    #[test]
    fn atomic_swap_invariant_under_contention() {
        // Two cells always sum to 100; concurrent transfers must preserve it.
        let a = HtmCell::new(50u64);
        let b = HtmCell::new(50u64);
        let p = profile();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (a, b) = (&a, &b);
                let p = p.clone();
                s.spawn(move || {
                    let mut r = Rng::new(t);
                    for i in 0..2000u64 {
                        loop {
                            let ok = attempt(&p, &mut r, || {
                                let (x, y) = (a.get(), b.get());
                                assert_eq!(x + y, 100, "opacity violated");
                                if i % 2 == 0 && x > 0 {
                                    a.set(x - 1);
                                    b.set(y + 1);
                                } else if y > 0 {
                                    a.set(x + 1);
                                    b.set(y - 1);
                                }
                            });
                            if ok.is_ok() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(a.get() + b.get(), 100);
    }
}
