//! Transactionally-accessible memory cells.
//!
//! Real HTM tracks raw loads and stores through the cache-coherence
//! protocol; a software emulation needs an instrumentation point instead.
//! An [`HtmCell`] is one word of "transactional memory": inside a
//! transaction its `get`/`set` are tracked (TL2-style) and buffered;
//! outside a transaction they are *seqlock-consistent* plain accesses —
//! a reader never observes a torn or in-flight value, and every
//! non-transactional store advances the cell's version so concurrent
//! transactions that read the cell abort. That last property is exactly
//! what makes Transactional Lock Elision sound: the elided lock stores its
//! state in an `HtmCell`, a transaction "subscribes" by reading it, and a
//! Lock-mode acquisition invalidates all subscribed transactions.
//!
//! Cells hold any `Copy` type up to [`MAX_CELL_SIZE`] bytes. The
//! value-plus-version layout follows crossbeam's seqlock technique
//! (volatile value access bracketed by version checks).

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU64, Ordering};

use ale_vtime::{tick, Event};

use crate::txn;

/// Maximum payload size of an [`HtmCell`] in bytes.
pub const MAX_CELL_SIZE: usize = 16;

/// Low bit of the meta word: set while a writer (transactional committer or
/// plain store) owns the cell.
pub(crate) const LOCKED: u64 = 1;

/// Version number carried by a meta word.
#[inline]
pub(crate) fn ver_of(meta: u64) -> u64 {
    meta >> 1
}

#[inline]
pub(crate) fn is_locked(meta: u64) -> bool {
    meta & LOCKED != 0
}

/// The TL2 global version clock. Plain stores and transaction commits
/// advance it; transactions snapshot it at begin and treat any version
/// newer than the snapshot as a conflict.
pub(crate) static GLOBAL_VCLOCK: AtomicU64 = AtomicU64::new(0);

/// Current value of the global version clock (exposed for tests/stats).
pub fn global_version() -> u64 {
    GLOBAL_VCLOCK.load(Ordering::Acquire)
}

/// One word of transactional memory. See the module docs.
///
/// ```
/// use ale_htm::HtmCell;
/// let c = HtmCell::new(5u64);
/// assert_eq!(c.get(), 5);             // plain consistent read (no txn)
/// c.set(6);                           // plain versioned store
/// assert_eq!(c.compare_exchange(6, 7), Ok(6));
/// assert_eq!(c.get(), 7);
/// ```
#[repr(C)]
pub struct HtmCell<T: Copy> {
    meta: AtomicU64,
    value: UnsafeCell<T>,
}

// SAFETY: all concurrent access to `value` is mediated by the seqlock
// protocol on `meta` (plain accesses) or the TL2 protocol (transactional
// accesses); `T: Copy` rules out drop hazards, `T: Send` lets values move
// between threads.
unsafe impl<T: Copy + Send> Send for HtmCell<T> {}
unsafe impl<T: Copy + Send> Sync for HtmCell<T> {}

impl<T: Copy> HtmCell<T> {
    /// Create a cell holding `value`.
    pub fn new(value: T) -> Self {
        const {
            assert!(
                std::mem::size_of::<T>() <= MAX_CELL_SIZE,
                "HtmCell payload exceeds MAX_CELL_SIZE"
            );
        }
        HtmCell {
            meta: AtomicU64::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Read the cell. Transactional when called inside [`attempt`]
    /// (tracked in the read set, opaque — aborts rather than observing an
    /// inconsistent value); otherwise a seqlock-consistent plain read.
    ///
    /// [`attempt`]: crate::attempt
    #[inline]
    pub fn get(&self) -> T {
        if txn::in_txn() {
            txn::tx_read(self)
        } else {
            self.load_consistent()
        }
    }

    /// Write the cell. Transactional (buffered until commit) inside a
    /// transaction; otherwise a version-advancing plain store.
    #[inline]
    pub fn set(&self, value: T) {
        if txn::in_txn() {
            txn::tx_write(self, value);
        } else {
            self.plain_store(value);
        }
    }

    /// Seqlock-consistent read that is never transactional, even inside a
    /// transaction. Used by statistics and debugging paths that must not
    /// grow the read set.
    // ale-lint: htm-body — callable from inside transactions by design, so
    // it must stay alloc/IO/park-free transitively.
    pub fn load_consistent(&self) -> T {
        loop {
            let m1 = self.meta.load(Ordering::Acquire);
            if is_locked(m1) {
                tick(Event::SharedLoad);
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: racing reads are resolved by the version re-check:
            // a value observed while m1 == m2 and unlocked was stable for
            // the whole read (crossbeam seqlock technique).
            let v = unsafe { std::ptr::read_volatile(self.value.get()) };
            fence(Ordering::Acquire);
            let m2 = self.meta.load(Ordering::Relaxed);
            if m1 == m2 {
                tick(Event::SharedLoad);
                return v;
            }
            tick(Event::SharedLoad);
        }
    }

    /// Best-effort seqlock-consistent read that charges **no virtual
    /// time** and never waits: for `debug_assert!` conditions and `Debug`
    /// impls only. Anything that ticks inside a `debug_assert!` makes
    /// debug and release builds simulate different schedules, splitting
    /// their determinism digests; and anything that *waits* without
    /// ticking can livelock the cooperative simulator. So this neither
    /// ticks nor waits: it returns `None` if the cell stays locked or
    /// unstable for a few attempts (callers treat that as "unknown").
    // ale-lint: htm-body — callable from inside transactions by design, so
    // it must stay alloc/IO/park-free transitively.
    pub fn try_peek(&self) -> Option<T> {
        for _ in 0..8 {
            let m1 = self.meta.load(Ordering::Acquire);
            if is_locked(m1) {
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: racing reads are resolved by the version re-check:
            // a value observed while m1 == m2 and unlocked was stable for
            // the whole read (crossbeam seqlock technique).
            let v = unsafe { std::ptr::read_volatile(self.value.get()) };
            fence(Ordering::Acquire);
            let m2 = self.meta.load(Ordering::Relaxed);
            if m1 == m2 {
                return Some(v);
            }
        }
        None
    }

    /// Non-transactional store: lock the cell, write, release with a fresh
    /// global version (invalidating concurrent transactional readers).
    pub(crate) fn plain_store(&self, value: T) {
        let mut spins = 0u32;
        loop {
            let m = self.meta.load(Ordering::Relaxed);
            if !is_locked(m)
                && self
                    .meta
                    .compare_exchange_weak(m, m | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            tick(Event::Cas);
            if spins > 6 {
                tick(Event::Backoff(spins.min(16)));
            }
            spins += 1;
            std::hint::spin_loop();
        }
        // SAFETY: we hold the cell lock; seqlock readers retry while locked.
        unsafe { std::ptr::write_volatile(self.value.get(), value) };
        let wv = GLOBAL_VCLOCK.fetch_add(1, Ordering::Relaxed) + 1;
        self.meta.store(wv << 1, Ordering::Release);
        tick(Event::SharedStore);
    }

    /// Atomic compare-exchange on the cell value. Succeeds (storing `new`
    /// and returning `Ok(current)`) iff the cell holds `current`.
    ///
    /// Outside a transaction this is a real lock-free-style RMW on the cell
    /// (meta word briefly locked). Inside a transaction it is the natural
    /// transactional read-test-write, tracked like any other access. Locks
    /// built over `HtmCell` use this so that transactions subscribing to the
    /// lock word observe acquisitions, which is the TLE correctness
    /// requirement.
    pub fn compare_exchange(&self, current: T, new: T) -> Result<T, T>
    where
        T: PartialEq,
    {
        if txn::in_txn() {
            let seen = txn::tx_read(self);
            return if seen == current {
                txn::tx_write(self, new);
                Ok(seen)
            } else {
                Err(seen)
            };
        }
        let mut spins = 0u32;
        loop {
            let m = self.meta.load(Ordering::Relaxed);
            if !is_locked(m)
                && self
                    .meta
                    .compare_exchange_weak(m, m | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                tick(Event::Cas);
                // SAFETY: we hold the cell lock.
                let seen = unsafe { std::ptr::read_volatile(self.value.get()) };
                if seen == current {
                    unsafe { std::ptr::write_volatile(self.value.get(), new) };
                    let wv = GLOBAL_VCLOCK.fetch_add(1, Ordering::Relaxed) + 1;
                    self.meta.store(wv << 1, Ordering::Release);
                    return Ok(seen);
                }
                // No write happened: restore the original meta so
                // subscribed transactions are not invalidated needlessly.
                self.meta.store(m, Ordering::Release);
                return Err(seen);
            }
            tick(Event::Cas);
            if spins > 6 {
                tick(Event::Backoff(spins.min(16)));
            }
            spins += 1;
            std::hint::spin_loop();
        }
    }

    /// Exclusive read through `&mut` (no synchronisation needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }

    /// Consume the cell, returning its value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    // --- raw accessors for the transaction engine -------------------------

    #[inline]
    pub(crate) fn meta_word(&self) -> &AtomicU64 {
        &self.meta
    }

    #[inline]
    pub(crate) fn value_ptr(&self) -> *mut T {
        self.value.get()
    }
}

impl<T: Copy + Default> Default for HtmCell<T> {
    fn default() -> Self {
        HtmCell::new(T::default())
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for HtmCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HtmCell")
            .field("value", &self.try_peek())
            .field("version", &ver_of(self.meta.load(Ordering::Relaxed)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_get_set_roundtrip() {
        let c = HtmCell::new(41u64);
        assert_eq!(c.get(), 41);
        c.set(42);
        assert_eq!(c.get(), 42);
        assert_eq!(c.load_consistent(), 42);
    }

    #[test]
    fn stores_advance_the_version() {
        let c = HtmCell::new(0u32);
        let v0 = ver_of(c.meta.load(Ordering::Relaxed));
        c.set(1);
        c.set(2);
        let v2 = ver_of(c.meta.load(Ordering::Relaxed));
        assert!(
            v2 > v0,
            "two stores must advance the version ({v0} -> {v2})"
        );
        assert!(!is_locked(c.meta.load(Ordering::Relaxed)));
    }

    #[test]
    fn wide_payloads_work() {
        let c = HtmCell::new([1u8; 16]);
        c.set([7u8; 16]);
        assert_eq!(c.get(), [7u8; 16]);
        let c2 = HtmCell::new((1u64, 2u64));
        c2.set((3, 4));
        assert_eq!(c2.get(), (3, 4));
    }

    #[test]
    fn get_mut_and_into_inner() {
        let mut c = HtmCell::new(5i32);
        *c.get_mut() = 9;
        assert_eq!(c.into_inner(), 9);
    }

    #[test]
    fn default_and_debug() {
        let c: HtmCell<u64> = HtmCell::default();
        assert_eq!(c.get(), 0);
        let s = format!("{c:?}");
        assert!(s.contains("HtmCell"), "{s}");
    }

    #[test]
    fn compare_exchange_inside_transaction_is_buffered() {
        use crate::txn::attempt;
        use ale_vtime::{Platform, Rng};
        let c = HtmCell::new(1u64);
        let p = Platform::testbed().htm.unwrap();
        let mut rng = Rng::new(3);
        // Failed tx-CAS, then aborted tx-CAS, then committed tx-CAS.
        let r = attempt(&p, &mut rng, || c.compare_exchange(7, 8));
        assert_eq!(r.unwrap(), Err(1));
        let r: Result<(), _> = attempt(&p, &mut rng, || {
            c.compare_exchange(1, 2).unwrap();
            crate::txn::explicit_abort(1);
        });
        assert!(r.is_err());
        assert_eq!(c.get(), 1, "aborted tx-CAS must not publish");
        let r = attempt(&p, &mut rng, || c.compare_exchange(1, 2));
        assert_eq!(r.unwrap(), Ok(1));
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn compare_exchange_semantics() {
        let c = HtmCell::new(5u64);
        assert_eq!(c.compare_exchange(4, 9), Err(5));
        assert_eq!(c.get(), 5, "failed CAS must not write");
        assert_eq!(c.compare_exchange(5, 9), Ok(5));
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn failed_compare_exchange_keeps_version() {
        let c = HtmCell::new(1u32);
        let before = c.meta.load(Ordering::Relaxed);
        assert!(c.compare_exchange(2, 3).is_err());
        assert_eq!(
            c.meta.load(Ordering::Relaxed),
            before,
            "failed CAS must not advance the version (no needless tx invalidation)"
        );
    }

    #[test]
    fn concurrent_cas_counter_loses_nothing() {
        let c = HtmCell::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..5000 {
                        loop {
                            let v = c.get();
                            if c.compare_exchange(v, v + 1).is_ok() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(c.get(), 20_000);
    }

    #[test]
    fn concurrent_plain_stores_are_not_torn() {
        // Writers store (x, x); readers must never see (a, b) with a != b.
        let cell = HtmCell::new((0u64, 0u64));
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..20_000u64 {
                        let x = w * 1_000_000 + i;
                        cell.set((x, x));
                    }
                });
            }
            for _ in 0..2 {
                let cell = &cell;
                s.spawn(move || {
                    for _ in 0..40_000 {
                        let (a, b) = cell.get();
                        assert_eq!(a, b, "torn read: ({a}, {b})");
                    }
                });
            }
        });
    }
}
