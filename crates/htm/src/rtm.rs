//! Experimental Intel RTM backend (`real-rtm` cargo feature, x86-64 only).
//!
//! When the CPU really supports TSX/RTM, [`attempt_rtm`] runs a closure
//! inside an actual hardware transaction (`xbegin`/`xend`) and maps the
//! abort status word onto [`AbortStatus`]. All memory the closure touches
//! is transactional by hardware, so [`HtmCell`](crate::HtmCell) plain
//! accesses are atomic within it — no read/write-set bookkeeping at all.
//!
//! Caveats (this backend is a demonstrator; the emulation in
//! [`txn`](crate::txn) is the supported path):
//!
//! * Most post-2021 Intel parts fuse TSX off or force-abort it in
//!   microcode (TAA mitigations); [`rtm_supported`] only checks CPUID, so
//!   a "supported" machine may still abort every transaction. Callers must
//!   treat persistent aborts as "HTM unavailable", exactly like ALE's
//!   policies do.
//! * The closure must not panic, make syscalls, or touch enough data to
//!   overflow the L1-bounded write set — any of these aborts the
//!   transaction (which is safe, just unsuccessful).
//! * `HtmCell::plain_store` bumps the global version clock; doing that
//!   inside a real transaction serialises concurrent transactions on the
//!   clock's cache line. Prefer read-mostly bodies with this backend.

use crate::abort::{AbortCode, AbortStatus};

/// `xbegin` falls through with EAX unchanged when the transaction starts;
/// we preload this sentinel.
const STARTED: u32 = u32::MAX;

// Intel SDM status-word bits.
const XABORT_EXPLICIT: u32 = 1 << 0;
const XABORT_RETRY: u32 = 1 << 1;
const XABORT_CONFLICT: u32 = 1 << 2;
const XABORT_CAPACITY: u32 = 1 << 3;

/// Does CPUID advertise RTM? (Microcode may still force-abort; see module
/// docs.)
pub fn rtm_supported() -> bool {
    std::arch::is_x86_feature_detected!("rtm")
}

/// # Safety
/// Requires RTM support (check [`rtm_supported`]; `xbegin` is #UD without
/// TSX). A `STARTED` return must be paired with exactly one [`xend`] on
/// the commit path, with no syscall/fault/pause before it.
#[inline(always)]
unsafe fn xbegin() -> u32 {
    let mut status: u32 = STARTED;
    // On abort, control re-enters at the label with EAX = status word.
    core::arch::asm!(
        "xbegin 2f",
        "2:",
        inout("eax") status,
        options(nostack),
    );
    status
}

/// # Safety
///
/// Must only execute inside a transaction begun by [`xbegin`]; `xend`
/// outside one raises #GP. Requires RTM support.
#[inline(always)]
unsafe fn xend() {
    core::arch::asm!("xend", options(nostack));
}

/// Explicitly abort the current hardware transaction with an 8-bit code.
/// No-op (well, #UD-safe: RTM ignores xabort outside a transaction).
///
/// # Safety
///
/// Requires RTM support — the instruction itself is #UD on non-TSX CPUs
/// even though it is architecturally a no-op outside a transaction.
#[inline(always)]
pub unsafe fn xabort<const CODE: u8>() {
    core::arch::asm!("xabort {}", const CODE, options(nostack));
}

fn decode(status: u32) -> AbortStatus {
    let may_retry = status & XABORT_RETRY != 0;
    if status & XABORT_EXPLICIT != 0 {
        AbortStatus::explicit((status >> 24) as u8)
    } else if status & XABORT_CAPACITY != 0 {
        AbortStatus::capacity()
    } else if status & XABORT_CONFLICT != 0 {
        AbortStatus::conflict()
    } else {
        AbortStatus::spurious(may_retry)
    }
}

/// Run `body` inside one real hardware transaction.
///
/// Returns `Err(spurious)` immediately when RTM is not advertised, so
/// callers can fall back to the emulation (or the lock) uniformly.
pub fn attempt_rtm<R>(body: impl FnOnce() -> R) -> Result<R, AbortStatus> {
    if !rtm_supported() {
        return Err(AbortStatus {
            code: AbortCode::Spurious,
            may_retry: false,
        });
    }
    // SAFETY: xbegin/xend bracket the transactional region; the abort path
    // re-enters at the xbegin fallback label with all architectural state
    // rolled back.
    unsafe {
        let status = xbegin();
        if status == STARTED {
            let r = body();
            xend();
            Ok(r)
        } else {
            Err(decode(status))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_maps_status_bits() {
        assert_eq!(decode(XABORT_CAPACITY).code, AbortCode::Capacity);
        assert_eq!(
            decode(XABORT_CONFLICT | XABORT_RETRY).code,
            AbortCode::Conflict
        );
        assert!(decode(XABORT_CONFLICT | XABORT_RETRY).may_retry);
        assert_eq!(
            decode(XABORT_EXPLICIT | (0x2A << 24)).code,
            AbortCode::Explicit(0x2A)
        );
        assert_eq!(decode(0).code, AbortCode::Spurious);
        assert!(!decode(0).may_retry);
    }

    #[test]
    fn attempt_rtm_is_safe_whether_or_not_tsx_works() {
        // On machines without working TSX every attempt aborts (or is
        // refused); with TSX it may commit. Both are valid outcomes — what
        // must hold is memory safety and a coherent result.
        let cell = std::sync::atomic::AtomicU64::new(0);
        let mut commits = 0;
        for _ in 0..100 {
            let r = attempt_rtm(|| {
                cell.store(1, std::sync::atomic::Ordering::Relaxed);
            });
            if r.is_ok() {
                commits += 1;
            }
        }
        if commits > 0 {
            assert_eq!(cell.load(std::sync::atomic::Ordering::Relaxed), 1);
        }
        println!("RTM commits: {commits}/100 (0 is normal on TSX-disabled hosts)");
    }
}
