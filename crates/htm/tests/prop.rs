//! Property-based tests: the transaction engine against a sequential
//! reference model, under arbitrary operation scripts.

use ale_htm::{attempt, AbortCode, HtmCell};
use ale_vtime::{Platform, Rng};
use proptest::prelude::*;

/// One step of a transaction script.
#[derive(Debug, Clone)]
enum Op {
    Read(usize),
    Write(usize, u64),
    Cas(usize, u64, u64),
    Abort(u8),
}

fn op_strategy(cells: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..cells).prop_map(Op::Read),
        4 => (0..cells, any::<u64>()).prop_map(|(i, v)| Op::Write(i, v)),
        2 => (0..cells, 0u64..4, any::<u64>()).prop_map(|(i, c, v)| Op::Cas(i, c, v)),
        1 => (1u8..20).prop_map(Op::Abort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A committed transaction behaves exactly like running the script on a
    /// plain array; an aborted one leaves no trace.
    #[test]
    fn tx_matches_sequential_model(
        script in proptest::collection::vec(op_strategy(6), 0..40),
        init in proptest::collection::vec(0u64..4, 6),
        seed in any::<u64>(),
    ) {
        let cells: Vec<HtmCell<u64>> = init.iter().copied().map(HtmCell::new).collect();
        let mut model: Vec<u64> = init.clone();
        let profile = Platform::testbed().htm.unwrap(); // no spurious aborts
        let mut rng = Rng::new(seed);

        let mut model_reads = Vec::new();
        let mut expect_abort = None;
        // Run the script on the model first (stopping at an explicit abort).
        for op in &script {
            match *op {
                Op::Read(i) => model_reads.push(model[i]),
                Op::Write(i, v) => model[i] = v,
                Op::Cas(i, c, v) => {
                    if model[i] == c {
                        model[i] = v;
                    }
                }
                Op::Abort(code) => {
                    expect_abort = Some(code);
                    break;
                }
            }
        }

        let mut tx_reads = Vec::new();
        let result = attempt(&profile, &mut rng, || {
            for op in &script {
                match *op {
                    Op::Read(i) => tx_reads.push(cells[i].get()),
                    Op::Write(i, v) => cells[i].set(v),
                    Op::Cas(i, c, v) => {
                        let _ = cells[i].compare_exchange(c, v);
                    }
                    Op::Abort(code) => ale_htm::explicit_abort(code),
                }
            }
        });

        match expect_abort {
            Some(code) => {
                prop_assert_eq!(result.unwrap_err().code, AbortCode::Explicit(code));
                // No writes took effect.
                for (cell, &want) in cells.iter().zip(&init) {
                    prop_assert_eq!(cell.get(), want);
                }
            }
            None => {
                prop_assert!(result.is_ok());
                for (cell, &want) in cells.iter().zip(&model) {
                    prop_assert_eq!(cell.get(), want);
                }
            }
        }
        // Reads observed inside the tx match the model prefix in both cases
        // (opacity: a doomed tx still only sees consistent values — here,
        // single-threaded, exactly the model's).
        prop_assert_eq!(tx_reads, model_reads);
    }

    /// Capacity limits are exact: touching more distinct cells than the
    /// budget aborts with Capacity; staying within it commits.
    #[test]
    fn capacity_is_exact(n in 1usize..40, cap in 1usize..40) {
        let mut profile = Platform::testbed().htm.unwrap();
        profile.max_write_set = cap;
        let cells: Vec<HtmCell<u64>> = (0..n).map(|_| HtmCell::new(0)).collect();
        let mut rng = Rng::new(7);
        let r = attempt(&profile, &mut rng, || {
            for c in &cells {
                c.set(1);
            }
        });
        if n <= cap {
            prop_assert!(r.is_ok());
        } else {
            prop_assert_eq!(r.unwrap_err().code, AbortCode::Capacity);
        }
    }

    /// Non-transactional stores to disjoint cell sets never interfere with
    /// a committed transaction's cells.
    #[test]
    fn disjoint_plain_stores_do_not_doom(init in any::<u64>(), other in any::<u64>()) {
        let a = HtmCell::new(init);
        let b = HtmCell::new(0u64);
        let profile = Platform::testbed().htm.unwrap();
        let mut rng = Rng::new(3);
        let r = attempt(&profile, &mut rng, || {
            let v = a.get();
            // Plain store to an *untouched* cell via another thread.
            std::thread::scope(|s| {
                s.spawn(|| b.set(other));
            });
            a.set(v.wrapping_add(1));
        });
        prop_assert!(r.is_ok());
        prop_assert_eq!(a.get(), init.wrapping_add(1));
        prop_assert_eq!(b.get(), other);
    }
}
