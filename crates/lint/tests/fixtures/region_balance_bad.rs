//! Fixture: broken conflicting-region bracketing. Expect four
//! `conflicting-region-balance` findings: a `return` escape, a `?` escape,
//! a `break` escape, and an unclosed region.

pub fn escapes_with_return(v: &SeqVersion, bail: bool) {
    v.begin_conflicting_action();
    if bail {
        return; // leaves the version odd forever
    }
    v.end_conflicting_action();
}

pub fn escapes_with_question(v: &SeqVersion, r: Result<u32, ()>) -> Result<u32, ()> {
    v.begin_conflicting_action();
    let x = r?;
    v.end_conflicting_action();
    Ok(x)
}

pub fn escapes_with_break(v: &SeqVersion, items: &[u32]) {
    for i in items {
        v.begin_conflicting_action();
        if *i == 0 {
            break;
        }
        v.end_conflicting_action();
    }
}

pub fn never_closes(v: &SeqVersion) {
    v.begin_conflicting_action();
}
