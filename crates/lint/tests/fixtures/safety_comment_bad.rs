//! Fixture: `unsafe` with no SAFETY annotation anywhere nearby. Expect one
//! `safety-comment` finding (the suppressed site stays silent).

pub fn naked(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn silenced(p: *const u32) -> u32 {
    // ale-lint: allow(safety-comment)
    unsafe { *p }
}
