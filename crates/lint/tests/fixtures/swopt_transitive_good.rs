//! Good fixture: SWOpt read paths whose call chains stay pure, including a
//! writer helper that is only ever called inside a conflicting-region
//! bracket (the explicit exemption).

// ale-lint: swopt
fn lookup(db: &Db) -> u64 {
    let snap = db.ver.read();
    let v = pure_helper(db);
    db.ver.begin_conflicting_action();
    writer_helper(db);
    db.ver.end_conflicting_action();
    db.ver.validate(snap);
    v
}

fn pure_helper(db: &Db) -> u64 {
    deeper_pure_helper(db)
}

fn deeper_pure_helper(db: &Db) -> u64 {
    db.cell.get()
}

fn writer_helper(db: &Db) {
    db.cell.set(1);
}
