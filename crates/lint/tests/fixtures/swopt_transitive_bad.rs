//! Bad fixture: SWOpt read paths that *reach* impure effects through call
//! chains. The line-local `swopt-purity` rule cannot see any of these —
//! every root body is textually pure.

// ale-lint: swopt
fn lookup(db: &Db) -> u64 {
    let snap = db.ver.read();
    let v = helper_level_one(db);
    db.ver.validate(snap);
    v
}

fn helper_level_one(db: &Db) -> u64 {
    helper_level_two(db)
}

fn helper_level_two(db: &Db) -> u64 {
    db.stats.set(1);
    0
}

// ale-lint: swopt
fn lookup_locked(db: &Db) -> u64 {
    slow_path(db)
}

fn slow_path(db: &Db) -> u64 {
    db.mlock.acquire();
    let v = db.cell.get();
    db.mlock.release();
    v
}

// ale-lint: swopt
fn lookup_alloc(db: &Db) -> u64 {
    sneaky_alloc(db)
}

fn sneaky_alloc(db: &Db) -> u64 {
    let copy = vec![db.cell.get()];
    copy[0]
}
