//! Fixture: SWOpt paths that mutate shared state outside the bracket.
//! Expect four `swopt-purity` findings: a bare `store(`, a `fetch_add`, a
//! `get_mut`, and a `lock()`.

// ale-lint: swopt
pub fn stores_unbracketed(cell: &Atomic) {
    cell.store(1, Ordering::Release);
}

// ale-lint: swopt
pub fn rmw_unbracketed(cell: &Atomic) -> u64 {
    cell.fetch_add(1, Ordering::AcqRel)
}

// ale-lint: swopt
pub fn takes_exclusive_access(slot: &mut Slot) {
    slot.cells.get_mut(0);
}

// ale-lint: swopt
pub fn falls_back_to_locking(m: &Mutex) {
    let _g = m.lock();
}
