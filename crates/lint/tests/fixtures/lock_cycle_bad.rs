//! Bad fixture: inconsistent lock-acquisition order, with one leg of the
//! cycle hidden behind a call.

impl Db {
    fn put(&self) {
        self.mlock.acquire();
        self.slot.acquire();
        self.slot.release();
        self.mlock.release();
    }

    fn rebalance(&self) {
        self.slot.acquire();
        grab_meta(self);
        self.slot.release();
    }
}

fn grab_meta(db: &Db) {
    db.mlock.acquire();
    db.mlock.release();
}
