//! Fixture: transaction bodies that emit trace events. The event rings are
//! HTM-safe by construction, so `trace::emit(..)` / `ale_trace::emit(..)`
//! call spans inside HTM-executed code are exempt from the hygiene scan —
//! even when an argument expression contains a token the rule would
//! otherwise flag. Expect zero `htm-body-hygiene` findings.

pub fn traced_transaction(profile: &HtmProfile, rng: &mut Rng, cell: &HtmCell) {
    let _ = attempt(profile, rng, || {
        let v = cell.get();
        trace::emit(TraceEvent::mode_decision(label, Mode::Htm as u64));
        cell.set(v + 1);
    });
}

// ale-lint: htm-body
pub fn marked_traced_helper(cell: &HtmCell, label: u16) -> u64 {
    // The `.unwrap()` below sits inside the emit's argument span, which the
    // rule skips wholesale; outside that span it would flag.
    ale_trace::emit(TraceEvent::abort(label, code_for(cell).unwrap()));
    cell.get().wrapping_add(1)
}
