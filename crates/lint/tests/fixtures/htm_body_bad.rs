//! Fixture: transaction bodies doing transaction-hostile things. Expect
//! six `htm-body-hygiene` findings: `Box::new`, `.push(`, `println!`,
//! `panic!`, `.unwrap()`, `.expect()`.

pub fn dirty_transaction(profile: &HtmProfile, rng: &mut Rng, log: &mut Vec<u64>) {
    let _ = attempt(profile, rng, || {
        let boxed = Box::new(1u64);
        log.push(*boxed);
        println!("inside a hardware transaction");
    });
}

// ale-lint: htm-body
pub fn panicky_helper(v: Option<u64>, r: Result<u64, ()>) -> u64 {
    if v.is_none() {
        panic!("no value");
    }
    v.unwrap() + r.expect("engine invariant")
}
