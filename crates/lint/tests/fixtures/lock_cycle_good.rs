//! Good fixture: every path acquires `mlock` before `slot`, directly or
//! through calls, and release tracking keeps disjoint critical sections
//! from fabricating edges.

impl Db {
    fn put(&self) {
        self.mlock.acquire();
        self.slot.acquire();
        self.slot.release();
        self.mlock.release();
    }

    fn scan(&self) {
        self.mlock.acquire();
        grab_slot(self);
        self.mlock.release();
        self.slot.acquire();
        self.slot.release();
    }
}

fn grab_slot(db: &Db) {
    db.slot.acquire();
    db.slot.release();
}
