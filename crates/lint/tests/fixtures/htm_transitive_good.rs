//! Good fixture: transaction bodies whose call chains only read, and emit
//! trace events (exempt by construction).

fn run(db: &Db, profile: &Profile, rng: &mut Rng) {
    attempt(profile, rng, || {
        read_helper(db);
    });
}

fn read_helper(db: &Db) -> u64 {
    trace::emit(TraceEvent::probe(db.seq));
    deeper_read(db)
}

fn deeper_read(db: &Db) -> u64 {
    db.cell.get()
}
