//! Fixture: well-bracketed conflicting regions. Expect zero
//! `conflicting-region-balance` findings.

pub fn tight_bracket(v: &SeqVersion, cell: &Cell) {
    v.begin_conflicting_action();
    cell.set(1);
    v.end_conflicting_action();
}

pub fn early_return_outside_region(v: &SeqVersion, skip: bool) -> Option<u32> {
    if skip {
        return None;
    }
    v.begin_conflicting_action();
    v.end_conflicting_action();
    Some(1)
}

pub fn question_mark_on_sized_bound<T: ?Sized>(_t: &T) {}
