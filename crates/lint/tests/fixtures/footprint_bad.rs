//! Bad fixture: a transaction body whose estimated footprint exceeds the
//! backend's best-effort capacity. Eight distinct cells written inside a
//! loop estimate to 8 × 64 = 512 write cells (> 448, the default haswell
//! write limit; > 32, the rock limit); 33 distinct cells read in the loop
//! estimate to 33 × 64 = 2112 read cells (> 2048, the rock read limit,
//! while still under the 4096 haswell one).

fn bulk_update(db: &Db, profile: &Profile, rng: &mut Rng) {
    attempt(profile, rng, || {
        for i in 0..db.n {
            db.w1.set(i);
            db.w2.set(i);
            db.w3.set(i);
            db.w4.set(i);
            db.w5.set(i);
            db.w6.set(i);
            db.w7.set(i);
            db.w8.set(i);
            db.r01.get();
            db.r02.get();
            db.r03.get();
            db.r04.get();
            db.r05.get();
            db.r06.get();
            db.r07.get();
            db.r08.get();
            db.r09.get();
            db.r10.get();
            db.r11.get();
            db.r12.get();
            db.r13.get();
            db.r14.get();
            db.r15.get();
            db.r16.get();
            db.r17.get();
            db.r18.get();
            db.r19.get();
            db.r20.get();
            db.r21.get();
            db.r22.get();
            db.r23.get();
            db.r24.get();
            db.r25.get();
            db.r26.get();
            db.r27.get();
            db.r28.get();
            db.r29.get();
            db.r30.get();
            db.r31.get();
            db.r32.get();
            db.r33.get();
        }
    });
}
