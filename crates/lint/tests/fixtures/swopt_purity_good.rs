//! Fixture: a pure SWOpt path — writes happen only inside the
//! conflicting-region bracket. Expect zero `swopt-purity` findings.

// ale-lint: swopt
pub fn optimistic_lookup(v: &SeqVersion, cell: &Cell) -> Option<u32> {
    let snap = v.read(true);
    let value = cell.get();
    if v.validate(snap) {
        Some(value)
    } else {
        None
    }
}

// ale-lint: swopt
pub fn bracketed_write(v: &SeqVersion, cell: &Atomic) {
    v.begin_conflicting_action();
    cell.store(1, Ordering::Release);
    v.end_conflicting_action();
}

pub fn unmarked_writer(cell: &Atomic) {
    // Not a SWOpt path: writes here are out of the rule's scope.
    cell.store(2, Ordering::Release);
}
