//! Fixture: transaction bodies that stay allocation-, IO-, and
//! panic-free. Expect zero `htm-body-hygiene` findings.

pub fn clean_transaction(profile: &HtmProfile, rng: &mut Rng, cell: &HtmCell) {
    let _ = attempt(profile, rng, || {
        let v = cell.get();
        cell.set(v + 1);
    });
}

// ale-lint: htm-body
pub fn marked_helper(cell: &HtmCell) -> u64 {
    cell.get().wrapping_add(1)
}

// The function below is deliberately *not* marked: code outside any
// transaction body may allocate freely. (These filler lines also keep it
// out of the marker-detection window of the helper above.)
pub fn unmarked_code_may_allocate() -> Box<u64> {
    let mut v = Vec::new();
    v.push(1u64);
    Box::new(v[0])
}
