//! Fixture: publication stores use Release (or stronger); Relaxed is
//! confined to plain statistics. Expect zero `ordering-discipline`
//! findings.

pub fn publishes_with_release(s: &State) {
    s.version.store(2, Ordering::Release);
    s.lock.store(0, Ordering::SeqCst);
}

pub fn stats_may_be_relaxed(s: &State) {
    // `hits` is not a lock word or version field.
    s.hits.store(1, Ordering::Relaxed);
}

pub fn relaxed_loads_are_fine(s: &State) -> u64 {
    s.version.load(Ordering::Relaxed)
}
