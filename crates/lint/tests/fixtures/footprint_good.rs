//! Good fixture: a transaction body whose estimated footprint fits the
//! default backend capacity — a few direct accesses plus one looped read
//! (1 × 64), well under 4096 reads / 448 writes.

fn small_update(db: &Db, profile: &Profile, rng: &mut Rng) {
    attempt(profile, rng, || {
        let a = db.head.get();
        let b = db.tail.get();
        for i in 0..a {
            db.ring.get();
        }
        db.head.set(b);
    });
}
