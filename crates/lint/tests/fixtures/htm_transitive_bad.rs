//! Bad fixture: transaction bodies reaching allocation / IO / parking
//! through call chains the line-local `htm-body-hygiene` rule cannot see.

fn run(db: &Db, profile: &Profile, rng: &mut Rng) {
    attempt(profile, rng, || {
        db.cell.get();
        log_it(db);
    });
}

fn log_it(db: &Db) {
    format_row(db);
}

fn format_row(db: &Db) {
    println!("row {}", db.cell.get());
}

// ale-lint: htm-body
fn hot_path(db: &Db) {
    db.cell.get();
    helper_sleep();
}

fn helper_sleep() {
    thread::sleep(BACKOFF);
}
