//! Fixture: Relaxed stores to lock words and version/publication fields.
//! Expect three `ordering-discipline` findings.

pub fn unlocks_relaxed(s: &State) {
    s.lock.store(0, Ordering::Relaxed);
}

pub fn publishes_version_relaxed(s: &State) {
    s.version.store(2, Ordering::Relaxed);
}

pub fn bumps_global_clock_relaxed() {
    GLOBAL_VCLOCK.store(1, Ordering::Relaxed);
}
