//! Fixture: every `unsafe` is annotated. Expect zero `safety-comment`
//! findings. (Never compiled — consumed as text by the lint tests.)

/// # Safety
/// The caller must ensure `p` is valid and aligned.
pub unsafe fn deref(p: *const u32) -> u32 {
    // SAFETY: caller contract, see above.
    unsafe { *p }
}

pub fn masked_mentions() {
    let _s = "unsafe in a string literal is not code";
    // A comment saying unsafe is not code either.
}
