//! Integration: the real workspace must be clean under `--deny` semantics
//! (zero findings after the checked-in baseline), and the baseline file
//! must only contain keys that still correspond to real findings.

use std::collections::HashSet;

#[test]
fn workspace_is_clean_after_baseline() {
    let root = ale_lint::default_workspace_root();
    let findings = ale_lint::lint_workspace(&root).expect("workspace readable");
    let baseline = ale_lint::load_baseline(&root.join("lint-baseline.txt"));
    let remaining = ale_lint::apply_baseline(findings, &baseline);
    assert!(
        remaining.is_empty(),
        "workspace has un-baselined lint findings:\n{}",
        remaining
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_has_no_stale_entries() {
    let root = ale_lint::default_workspace_root();
    let findings = ale_lint::lint_workspace(&root).expect("workspace readable");
    let live: HashSet<String> = findings.iter().map(|f| f.baseline_key()).collect();
    let baseline = ale_lint::load_baseline(&root.join("lint-baseline.txt"));
    let stale: Vec<&String> = baseline.iter().filter(|k| !live.contains(*k)).collect();
    assert!(
        stale.is_empty(),
        "baseline entries no longer match any finding (delete them): {stale:#?}"
    );
}

#[test]
fn baseline_is_burned_down_and_only_shrinks() {
    // The baseline reached zero entries when the interprocedural rules
    // landed, and it is a ratchet: new findings must be fixed or
    // explicitly allowed at the site with a justified comment, never
    // re-grandfathered here.
    let root = ale_lint::default_workspace_root();
    let baseline = ale_lint::load_baseline(&root.join("lint-baseline.txt"));
    assert!(
        baseline.is_empty(),
        "lint-baseline.txt must only shrink; new entries are forbidden:\n{baseline:#?}"
    );
}

#[test]
fn workspace_walk_covers_all_crates() {
    let root = ale_lint::default_workspace_root();
    let files = ale_lint::workspace_files(&root);
    let as_str: Vec<String> = files
        .iter()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    for krate in ["core", "htm", "sync", "hashmap", "kyoto", "vtime", "lint"] {
        assert!(
            as_str
                .iter()
                .any(|p| p.contains(&format!("crates/{krate}/src/"))),
            "walk missed crates/{krate}/src"
        );
    }
    // Fixtures with intentional violations must stay out of the walk.
    assert!(
        as_str.iter().all(|p| !p.contains("tests/fixtures/")),
        "fixtures leaked into the default walk"
    );
}
