//! Fixture-based tests: each rule has a good fixture (zero findings) and a
//! bad fixture (a known set of findings). Fixtures live under
//! `tests/fixtures/` and are consumed as text, never compiled.

use std::path::Path;

/// Lint a fixture as if it were src code, returning only `rule`'s findings.
fn lint_fixture(name: &str, rule: &str) -> Vec<ale_lint::Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    ale_lint::lint_source_as(&format!("fixtures/{name}"), &src, true)
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

fn assert_clean(name: &str, rule: &str) {
    let findings = lint_fixture(name, rule);
    assert!(
        findings.is_empty(),
        "{name} should be clean for {rule}, got: {findings:#?}"
    );
}

#[test]
fn safety_comment_good_is_clean() {
    assert_clean("safety_comment_good.rs", "safety-comment");
}

#[test]
fn safety_comment_bad_flags_naked_unsafe_only() {
    let findings = lint_fixture("safety_comment_bad.rs", "safety-comment");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].line, 5);
    assert!(findings[0].line_content.contains("unsafe"));
}

#[test]
fn region_balance_good_is_clean() {
    assert_clean("region_balance_good.rs", "conflicting-region-balance");
}

#[test]
fn region_balance_bad_flags_every_escape() {
    let findings = lint_fixture("region_balance_bad.rs", "conflicting-region-balance");
    let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(findings.len(), 4, "{findings:#?}");
    assert!(msgs.iter().any(|m| m.contains("`return` escapes")));
    assert!(msgs.iter().any(|m| m.contains("`?` escapes")));
    assert!(msgs.iter().any(|m| m.contains("`break` escapes")));
    assert!(msgs.iter().any(|m| m.contains("no matching")));
}

#[test]
fn swopt_purity_good_is_clean() {
    assert_clean("swopt_purity_good.rs", "swopt-purity");
}

#[test]
fn swopt_purity_bad_flags_each_write_kind() {
    let findings = lint_fixture("swopt_purity_bad.rs", "swopt-purity");
    assert_eq!(findings.len(), 4, "{findings:#?}");
    let tokens: Vec<bool> = ["store", "fetch_add", "get_mut", "lock"]
        .iter()
        .map(|t| {
            findings
                .iter()
                .any(|f| f.message.contains(&format!("(`{t}`)")))
        })
        .collect();
    assert_eq!(tokens, vec![true; 4], "{findings:#?}");
}

#[test]
fn htm_body_good_is_clean() {
    assert_clean("htm_body_good.rs", "htm-body-hygiene");
}

#[test]
fn htm_body_bad_flags_all_six_hazards() {
    let findings = lint_fixture("htm_body_bad.rs", "htm-body-hygiene");
    assert_eq!(findings.len(), 6, "{findings:#?}");
    for tok in ["Box", "push", "println", "panic", "unwrap", "expect"] {
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains(&format!("`{tok}`"))),
            "missing `{tok}` finding in {findings:#?}"
        );
    }
}

#[test]
fn htm_body_trace_emits_are_exempt() {
    // `trace::emit(..)` / `ale_trace::emit(..)` spans inside transaction
    // bodies are skipped wholesale — including an `.unwrap()` that sits
    // inside an emit's argument list.
    assert_clean("htm_body_trace_good.rs", "htm-body-hygiene");
}

#[test]
fn ordering_good_is_clean() {
    assert_clean("ordering_good.rs", "ordering-discipline");
}

#[test]
fn ordering_bad_flags_publication_stores() {
    let findings = lint_fixture("ordering_bad.rs", "ordering-discipline");
    assert_eq!(findings.len(), 3, "{findings:#?}");
    for field in ["lock", "version", "GLOBAL_VCLOCK"] {
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains(&format!("`{field}`"))),
            "missing `{field}` finding in {findings:#?}"
        );
    }
}

#[test]
fn counters_file_is_exempt_from_ordering_rule() {
    // Same source as the bad fixture, but attributed to the statistics
    // counters module, which is allowlisted wholesale.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ordering_bad.rs");
    let src = std::fs::read_to_string(path).unwrap();
    let findings = ale_lint::lint_source_as("crates/sync/src/counters.rs", &src, true);
    assert!(
        findings.iter().all(|f| f.rule != "ordering-discipline"),
        "{findings:#?}"
    );
}

#[test]
fn swopt_transitive_good_is_clean() {
    assert_clean("swopt_transitive_good.rs", "swopt-purity-transitive");
}

#[test]
fn swopt_transitive_bad_flags_write_lock_and_alloc_chains() {
    let findings = lint_fixture("swopt_transitive_bad.rs", "swopt-purity-transitive");
    assert_eq!(findings.len(), 3, "{findings:#?}");
    let by_msg = |needle: &str| {
        findings
            .iter()
            .find(|f| f.message.contains(needle))
            .unwrap_or_else(|| panic!("no finding containing {needle:?}: {findings:#?}"))
    };
    let write = by_msg("write to `stats`");
    assert!(
        write
            .message
            .contains("via lookup → helper_level_one → helper_level_two"),
        "{}",
        write.message
    );
    assert!(write.line_content.contains("fn lookup"), "{write:#?}");
    let lock = by_msg("lock acquisition on `mlock`");
    assert!(lock.message.contains("via lookup_locked → slow_path"));
    let alloc = by_msg("allocation (`vec!`)");
    assert!(alloc.message.contains("via lookup_alloc → sneaky_alloc"));
}

#[test]
fn htm_transitive_good_is_clean() {
    assert_clean("htm_transitive_good.rs", "htm-body-hygiene-transitive");
}

#[test]
fn htm_transitive_bad_flags_io_and_park_chains() {
    let findings = lint_fixture("htm_transitive_bad.rs", "htm-body-hygiene-transitive");
    assert_eq!(findings.len(), 2, "{findings:#?}");
    let io = findings
        .iter()
        .find(|f| f.message.contains("IO (`println!`)"))
        .expect("IO finding");
    assert!(
        io.message
            .contains("`attempt(..) in run` reaches IO (`println!`)"),
        "{}",
        io.message
    );
    assert!(io
        .message
        .contains("via attempt(..) in run → log_it → format_row"));
    let park = findings
        .iter()
        .find(|f| f.message.contains("thread-parking (`sleep(`)"))
        .expect("park finding");
    assert!(park.message.contains("via hot_path → helper_sleep"));
}

#[test]
fn lock_cycle_good_is_clean() {
    assert_clean("lock_cycle_good.rs", "lock-order-cycle");
}

#[test]
fn lock_cycle_bad_reports_the_exact_acquisition_path() {
    let findings = lint_fixture("lock_cycle_bad.rs", "lock-order-cycle");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let msg = &findings[0].message;
    assert!(
        msg.contains("lock-order cycle `mlock` → `slot` → `mlock`"),
        "{msg}"
    );
    assert!(msg.contains("`mlock` → `slot` at fixtures/lock_cycle_bad.rs:7 (in `Db::put`)"));
    assert!(msg.contains(
        "`slot` → `mlock` at fixtures/lock_cycle_bad.rs:14 (in `Db::rebalance`, via `grab_meta`)"
    ));
}

#[test]
fn footprint_good_is_clean() {
    assert_clean("footprint_good.rs", "htm-footprint");
}

#[test]
fn footprint_bad_exceeds_default_write_capacity() {
    // Default (haswell-shaped) capacity: the looped 8-cell write set
    // estimates to 512 > 448; the 2112-cell read estimate still fits 4096.
    let findings = lint_fixture("footprint_bad.rs", "htm-footprint");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].message.contains("write footprint of ~512"));
    assert!(findings[0].message.contains("capacity of 448"));
}

#[test]
fn footprint_bad_exceeds_rock_read_and_write_capacity() {
    // With the rock-profile limits (2048 reads, 32 writes — see
    // `HtmProfile::rock` in ale-vtime) both directions overflow.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/footprint_bad.rs");
    let src = std::fs::read_to_string(path).unwrap();
    let analysis =
        ale_lint::Analysis::of_sources(vec![("fixtures/footprint_bad.rs".to_string(), src, true)]);
    let findings: Vec<_> = analysis
        .findings(ale_lint::Capacity {
            reads: 2048,
            writes: 32,
        })
        .into_iter()
        .filter(|f| f.rule == "htm-footprint")
        .collect();
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("read footprint of ~2112")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("write footprint of ~512")));
}

#[test]
fn src_only_rules_skip_test_surface() {
    // The same impure SWOpt code reported under a tests/ path produces no
    // swopt-purity findings (the rule is src-only).
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/swopt_purity_bad.rs");
    let src = std::fs::read_to_string(path).unwrap();
    let findings = ale_lint::lint_source("crates/x/tests/prop.rs", &src);
    assert!(
        findings.iter().all(|f| f.rule != "swopt-purity"),
        "{findings:#?}"
    );
}
