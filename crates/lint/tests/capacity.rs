//! Cross-checks the `htm-footprint` capacity model against the platform
//! profiles the emulation actually enforces (`ale-vtime`). If a profile's
//! best-effort limits drift, these tests fail and the lint defaults (plus
//! the documented `--capacity` presets) must be updated alongside.

use ale_lint::Capacity;
use ale_vtime::Platform;

#[test]
fn default_capacity_matches_the_haswell_profile() {
    let htm = Platform::haswell().htm.expect("haswell advertises HTM");
    assert_eq!(
        Capacity::DEFAULT.reads,
        htm.max_read_set as u64,
        "Capacity::DEFAULT.reads out of sync with Platform::haswell()"
    );
    assert_eq!(
        Capacity::DEFAULT.writes,
        htm.max_write_set as u64,
        "Capacity::DEFAULT.writes out of sync with Platform::haswell()"
    );
}

#[test]
fn documented_rock_preset_matches_the_rock_profile() {
    // CI and the README use `--capacity 2048,32` as the Rock preset.
    let htm = Platform::rock().htm.expect("rock advertises HTM");
    assert_eq!(htm.max_read_set, 2048, "rock read-set limit drifted");
    assert_eq!(htm.max_write_set, 32, "rock write-set limit drifted");
}
