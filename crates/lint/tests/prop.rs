//! Property tests for the interprocedural layer (vendored proptest stub,
//! same idiom as the other crates' `tests/prop.rs`).
//!
//! Three contracts the whole-program rules lean on:
//! * the full pipeline (lex → parse → call graph → effects → rules) never
//!   panics, whatever bytes or token soup it is fed;
//! * effect propagation reaches a genuine fixed point and terminates, on
//!   arbitrary call topologies including cycles;
//! * propagation is monotone — adding call edges can only grow (never
//!   shrink) any node's effect set.

use ale_lint::callgraph::CallEdge;
use ale_lint::effects::{local_effects, propagate};
use ale_lint::Analysis;
use proptest::prelude::*;

/// Fragments that exercise every lexer state and parser path, including
/// deliberately unterminated ones.
const SOUP: [&str; 36] = [
    "fn",
    "impl",
    "unsafe",
    "for",
    "while",
    "loop",
    "match",
    "attempt",
    "f0",
    "f1",
    "helper",
    "self",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ".",
    "::",
    ";",
    ",",
    "=",
    "==",
    "!",
    "?",
    "<",
    ">",
    "\"str\"",
    "r#\"raw\"#",
    "br#\"b\"#",
    "'a'",
    "// line\n",
    "/* block */",
    "/* open",
    "\\",
];

/// A random multi-function source whose calls, locks, reads, writes, and
/// loops are drawn from a small grammar — realistic enough to build call
/// graphs with cycles, fan-out, and every op kind.
fn gen_source(fns: usize, ops: &[(usize, usize)]) -> String {
    let mut src = String::new();
    for i in 0..fns {
        src.push_str(&format!("fn f{i}(db: &Db) {{\n"));
        for &(kind, arg) in ops.iter().filter(|&&(k, _)| k % fns == i) {
            let a = arg % fns.max(1);
            let line = match kind % 7 {
                0 => format!("    f{a}(db);\n"),
                1 => format!("    db.cell{a}.set(1);\n"),
                2 => format!("    db.cell{a}.get();\n"),
                3 => format!("    db.lock{a}.acquire();\n"),
                4 => format!("    db.lock{a}.release();\n"),
                5 => "    let v = vec![1];\n".to_string(),
                _ => format!("    for x in 0..9 {{ db.cell{a}.get(); }}\n"),
            };
            src.push_str(&line);
        }
        src.push_str("}\n");
    }
    src
}

fn analyze(src: &str) -> Analysis {
    Analysis::of_sources(vec![(
        "crates/x/src/gen.rs".to_string(),
        src.to_string(),
        true,
    )])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup: the whole pipeline terminates without
    /// panicking and produces deterministic output.
    #[test]
    fn pipeline_never_panics_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let src: String = bytes.iter().map(|&b| (b % 128) as char).collect();
        let a = ale_lint::lint_source_as("crates/x/src/fuzz.rs", &src, true);
        let b = ale_lint::lint_source_as("crates/x/src/fuzz.rs", &src, true);
        prop_assert_eq!(a, b, "nondeterministic findings");
    }

    /// Arbitrary *token* soup — unterminated strings and comments,
    /// unbalanced delimiters, keywords in illegal positions — never
    /// panics either.
    #[test]
    fn pipeline_never_panics_on_token_soup(
        picks in proptest::collection::vec((0usize..SOUP.len(), any::<bool>()), 0..200),
    ) {
        let mut src = String::new();
        for (i, space) in picks {
            src.push_str(SOUP[i]);
            src.push(if space { ' ' } else { '\n' });
        }
        ale_lint::lint_source_as("crates/x/src/fuzz.rs", &src, true);
    }

    /// Propagation terminates on arbitrary topologies (cycles included)
    /// and lands on a true fixed point: every node's effects subsume its
    /// local effects and every callee's effects.
    #[test]
    fn propagation_reaches_a_fixed_point(
        fns in 1usize..8,
        ops in proptest::collection::vec((0usize..64, 0usize..64), 0..48),
    ) {
        let analysis = analyze(&gen_source(fns, &ops));
        let p = &analysis.program;
        let eff = &analysis.effects;
        for (id, node) in p.nodes.iter().enumerate() {
            prop_assert!(
                eff[id].subsumes(&local_effects(&node.ops)),
                "node {id} lost local effects"
            );
            for e in &p.edges[id] {
                prop_assert!(
                    eff[id].subsumes(&eff[e.callee]),
                    "node {id} missing callee {} effects", e.callee
                );
            }
        }
    }

    /// Monotonicity: adding a call edge can only grow effect sets.
    #[test]
    fn propagation_is_monotone_under_added_edges(
        fns in 2usize..8,
        ops in proptest::collection::vec((0usize..64, 0usize..64), 0..32),
        extra_from in 0usize..8,
        extra_to in 0usize..8,
    ) {
        let mut analysis = analyze(&gen_source(fns, &ops));
        let before = analysis.effects.clone();
        let n = analysis.program.nodes.len();
        prop_assert!(n >= 2);
        let (from, to) = (extra_from % n, extra_to % n);
        analysis.program.edges[from].push(CallEdge { op_idx: 0, callee: to });
        let after = propagate(&analysis.program);
        for id in 0..n {
            prop_assert!(
                after[id].subsumes(&before[id]),
                "effects shrank at node {id} after adding edge {from}→{to}"
            );
        }
    }
}
