//! A lightweight item parser on top of the [`crate::lexer`] token stream.
//!
//! The whole-program rules need more structure than per-line token scans:
//! which functions exist (and under which `impl`), what each function
//! *does* — calls, lock acquisitions/releases, shared-state writes,
//! footprint-relevant reads/writes, effect-bearing tokens — and in which
//! context each operation happens (inside a loop? inside a
//! `begin/end_conflicting_action` bracket? inside an `attempt(..)`
//! transaction extent?). This module extracts exactly that, per file; the
//! [`crate::callgraph`] module stitches files into a program.
//!
//! This is deliberately *not* a Rust parser: resolution is name-based and
//! syntactic, conservative in the same way the line-local rules are. The
//! known imprecision is documented in DESIGN.md §7.

use crate::lexer::{match_delim, FileModel, FnExtent, Tok, TokKind};

/// Footprint weight for accesses inside a `for`/`while`/`loop` body: one
/// loop iteration rarely touches one cell, so a looped access is estimated
/// to touch this many distinct locations. See DESIGN.md §7 for why 64.
pub const LOOP_WEIGHT: u32 = 64;

/// Effect-flag bits carried by [`OpKind::Flag`] and
/// [`crate::effects::Effects::flags`].
pub mod flag {
    /// Heap allocation (`Box::new`, `vec![..]`, `.push(..)`, `format!`, …).
    pub const ALLOC: u8 = 1 << 0;
    /// IO / syscalls (`println!`, `File::`, `stdout`, …).
    pub const IO: u8 = 1 << 1;
    /// May unwind (`panic!`, `.unwrap()`, `assert!`, …).
    pub const PANIC: u8 = 1 << 2;
    /// May park or block the thread (`park`, `sleep`, `.wait(`, `.recv(`).
    pub const PARK: u8 = 1 << 3;
    /// Touches atomic orderings (`Ordering::`, `.load(`, `fetch_*`, CAS).
    pub const ATOMIC: u8 = 1 << 4;

    /// Human-readable names for a flag set, in bit order.
    pub fn names(flags: u8) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (bit, name) in [
            (ALLOC, "allocates"),
            (IO, "does-io"),
            (PANIC, "panics"),
            (PARK, "parks"),
            (ATOMIC, "atomic-ordering-touch"),
        ] {
            if flags & bit != 0 {
                out.push(name);
            }
        }
        out
    }
}

/// One operation extracted from a function body, in source order.
#[derive(Debug, Clone)]
pub struct Op {
    pub kind: OpKind,
    /// 0-based source line.
    pub line: usize,
    /// `begin/end_conflicting_action` bracket depth at this op.
    pub cr_depth: u32,
    /// Footprint multiplier: [`LOOP_WEIGHT`] inside a loop body, else 1.
    pub weight: u32,
}

/// How a call names its target, which decides resolution strategy (see
/// [`crate::callgraph`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallQual {
    /// `name(..)` or `module::name(..)`: resolved by bare name.
    Bare,
    /// `.name(..)`: resolved by bare name, most conservatively (subject to
    /// the std-collision deny list).
    Method,
    /// `Type::name(..)`: resolved only against `impl Type` methods, so
    /// `Vec::new(..)` never links to an unrelated workspace `new`.
    Typed(String),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// A call that may resolve to a workspace function.
    Call { callee: String, qual: CallQual },
    /// A lock acquisition on the receiver named `lock`.
    Acquire { lock: String },
    /// A lock release on the receiver named `lock`.
    Release { lock: String },
    /// A footprint-relevant shared read (`.get(`, `.load(`, `.read(`).
    Read { key: String },
    /// A footprint-relevant shared write. `purity_relevant` marks the
    /// write classes the SWOpt purity rule cares about (`.store(`,
    /// `fetch_*`, `.set(`, `.get_mut(`) as opposed to plain field/deref
    /// assignments (which may target locals or out-params).
    Write { key: String, purity_relevant: bool },
    /// An intrinsic effect token (see [`flag`]): `what` is the offending
    /// token text, for diagnostics.
    Flag { bits: u8, what: String },
}

/// A parsed function item.
#[derive(Debug, Clone)]
pub struct PFn {
    /// Bare name (resolution key).
    pub name: String,
    /// Display name: `Type::name` when inside an `impl Type`, else `name`.
    pub qual: String,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// Inside `#[cfg(test)]`: excluded from resolution and from rules.
    pub is_test: bool,
    /// Marked `// ale-lint: swopt` (or auto-detected; see
    /// [`crate::rules`]): a root for the transitive SWOpt purity rule.
    pub swopt: bool,
    /// Marked `// ale-lint: htm-body`: a root for the transitive HTM
    /// hygiene and footprint rules.
    pub htm_body: bool,
    pub ops: Vec<Op>,
}

/// The argument extent of an `attempt(..)` / `attempt_rtm(..)` call — code
/// handed to the HTM engine, a root for the transitive HTM rules.
#[derive(Debug, Clone)]
pub struct HtmExtent {
    /// Display label, e.g. `attempt(..) in cs_once`.
    pub what: String,
    /// 0-based line of the `attempt` token.
    pub line: usize,
    pub ops: Vec<Op>,
}

/// Per-file parse result.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub fns: Vec<PFn>,
    pub htm_extents: Vec<HtmExtent>,
}

/// Method names that acquire a lock when called on a receiver.
const LOCK_ACQUIRE: [&str; 10] = [
    "lock",
    "acquire",
    "acquire_shared",
    "acquire_excl",
    "try_acquire",
    "try_acquire_shared",
    "try_acquire_excl",
    "try_acquire_for",
    "try_acquire_shared_for",
    "try_acquire_excl_for",
];

/// Method names that release a lock on a receiver.
const LOCK_RELEASE: [&str; 4] = ["unlock", "release", "release_shared", "release_excl"];

/// Macro names (followed by `!`) mapped to effect flags.
fn macro_flag(name: &str) -> u8 {
    match name {
        "vec" | "format" => flag::ALLOC,
        "println" | "eprintln" | "print" | "eprint" | "dbg" | "write" | "writeln" => flag::IO,
        "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
        | "assert_ne" => flag::PANIC,
        _ => 0,
    }
}

/// Method names (preceded by `.`) mapped to effect flags.
fn method_flag(name: &str) -> u8 {
    match name {
        "push" | "to_string" | "to_vec" | "to_owned" | "reserve" | "collect" => flag::ALLOC,
        "unwrap" | "expect" => flag::PANIC,
        "wait" | "recv" | "join_all" => flag::PARK,
        "load" | "compare_exchange" | "compare_exchange_weak" | "swap" => flag::ATOMIC,
        _ => 0,
    }
}

/// Free/path-call names mapped to effect flags.
fn call_flag(name: &str) -> u8 {
    match name {
        "with_capacity" => flag::ALLOC,
        "park" | "park_timeout" | "sleep" | "yield_now" => flag::PARK,
        _ => 0,
    }
}

/// Method names whose *call alone* never links into the workspace call
/// graph: they collide with std/container methods, so a name match would
/// wire unrelated code together (e.g. every `HashMap::get` call in the
/// standard library sense linking to `AleHashMap::get`). Their intrinsic
/// effects are still recorded via the tables above where relevant.
const METHOD_LINK_DENY: [&str; 38] = [
    "get",
    "set",
    "load",
    "store",
    "lock",
    "push",
    "insert",
    "remove",
    "len",
    "is_empty",
    "new",
    "clone",
    "next",
    "iter",
    "read",
    "write",
    "contains",
    "free",
    "alloc",
    "node",
    "drain",
    "run",
    "report",
    "name",
    "min",
    "max",
    "abs",
    "swap",
    "take",
    "get_mut",
    "unwrap",
    "expect",
    "with",
    "borrow",
    "borrow_mut",
    "kind",
    "collect",
    "count",
];

/// Names that are never calls into the program: control keywords, common
/// std free functions, bracket markers, the HTM engine entry (its closure
/// is scanned in place), and the instrumentation hooks. `tick(..)` is the
/// `ale-vtime` time-accounting hook — every sync primitive charges virtual
/// time through it, so linking it would thread the *scheduler's* effects
/// into every analyzed path; like `trace::emit(..)`, it is exempt by
/// construction (simulation substrate, not modeled algorithm).
fn is_noncall(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "fn"
            | "drop"
            | "Some"
            | "Ok"
            | "Err"
            | "begin_conflicting_action"
            | "end_conflicting_action"
            | "attempt"
            | "attempt_rtm"
            | "emit"
            | "tick"
    )
}

/// Parse one file. `fns` and `test_ranges` come from the lexer
/// ([`crate::lexer::functions`] / [`crate::lexer::cfg_test_ranges`]);
/// `swopt_auto` enables name-based SWOpt auto-detection (the two
/// Figure-1 files; see [`crate::rules`]).
pub fn parse_file(
    model: &FileModel,
    toks: &[Tok],
    fns: &[FnExtent],
    test_ranges: &[(usize, usize)],
    swopt_auto: bool,
) -> ParsedFile {
    let mut out = ParsedFile::default();
    let impl_types = impl_type_by_token(toks);
    let comment_nearby = |line0: usize, needle: &str| -> bool {
        let lo = line0.saturating_sub(5);
        model.comments[lo..=line0.min(model.comments.len().saturating_sub(1))]
            .iter()
            .any(|c| c.contains(needle))
    };

    for (fi, f) in fns.iter().enumerate() {
        // Token spans of *nested* fn items, excluded from this fn's ops.
        let nested: Vec<(usize, usize)> = fns
            .iter()
            .enumerate()
            .filter(|&(gi, g)| gi != fi && g.body_open > f.body_open && g.body_close < f.body_close)
            .map(|(_, g)| (g.body_open, g.body_close))
            .collect();
        let is_test = test_ranges
            .iter()
            .any(|&(a, b)| a <= f.body_open && f.body_open <= b);
        let swopt = comment_nearby(f.sig_line, "ale-lint: swopt")
            || (swopt_auto && (f.name.contains("swopt") || f.name.contains("optimistic")));
        let htm_body = comment_nearby(f.sig_line, "ale-lint: htm-body");
        let ops = scan_ops(toks, f.body_open, f.body_close, &nested);
        let qual = impl_types
            .iter()
            .rev()
            .find(|&&(a, b, _)| a <= f.body_open && f.body_close <= b)
            .map_or_else(|| f.name.clone(), |(_, _, ty)| format!("{ty}::{}", f.name));
        out.fns.push(PFn {
            name: f.name.clone(),
            qual,
            sig_line: f.sig_line,
            is_test,
            swopt,
            htm_body,
            ops,
        });
    }

    // attempt(..) / attempt_rtm(..) argument extents outside test code.
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let is_attempt = (t.is_ident("attempt") || t.is_ident("attempt_rtm"))
            && !(i > 0 && toks[i - 1].is_ident("fn"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if is_attempt && !test_ranges.iter().any(|&(a, b)| a <= i && i <= b) {
            let close = match_delim(toks, i + 1, '(', ')');
            let host = fns
                .iter()
                .filter(|f| f.body_open <= i && i <= f.body_close)
                .min_by_key(|f| f.body_close - f.body_open)
                .map_or_else(String::new, |f| format!(" in {}", f.name));
            out.htm_extents.push(HtmExtent {
                what: format!("{}(..){host}", t.text),
                line: t.line,
                ops: scan_ops(toks, i + 1, close, &[]),
            });
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// `(body_open, body_close, type name)` for every `impl` block, used to
/// qualify method display names.
fn impl_type_by_token(toks: &[Tok]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // An `impl` *item* starts after an item boundary; `impl Trait` in
        // type position (`f: impl FnOnce() -> R`) follows `(`/`,`/`:`/…
        // and must not be mistaken for a block.
        let item_position = i == 0
            || toks[i - 1].is_punct('}')
            || toks[i - 1].is_punct('{')
            || toks[i - 1].is_punct(';')
            || toks[i - 1].is_punct(']')
            || toks[i - 1].is_ident("unsafe");
        if toks[i].is_ident("impl") && item_position {
            // Skip the generic-parameter list (`impl<K, V, S> …`), if any.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('<')) {
                let mut depth = 0i64;
                while j < toks.len() {
                    if toks[j].is_punct('<') {
                        depth += 1;
                    } else if toks[j].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // The head ident names the trait-or-type; a later `for`
            // re-points at the implemented type. The type's own generic
            // arguments trail the head ident, so the first (last path
            // segment of the) head is the right name.
            let mut ty: Option<String> = None;
            let mut want_head = true;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                if toks[j].is_ident("for") {
                    want_head = true;
                } else if toks[j].is_ident("where") {
                    want_head = false;
                } else if want_head && toks[j].kind == TokKind::Ident {
                    ty = Some(toks[j].text.clone());
                    // Stay on the head through `path::segments`.
                    want_head = toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(j + 2).is_some_and(|t| t.is_punct(':'));
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let close = match_delim(toks, j, '{', '}');
                if let Some(ty) = ty {
                    out.push((j, close, ty));
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Walk back from the token *before* a `.` at `dot_idx` to find the
/// receiver's innermost field/base name, skipping index and call suffixes:
/// `self.slot_locks[si].acquire` → `slot_locks`; `registry().lock` →
/// `registry`; `*ret_val` → `ret_val`.
fn receiver_name(toks: &[Tok], dot_idx: usize) -> Option<String> {
    let mut j = dot_idx.checked_sub(1)?;
    loop {
        let t = &toks[j];
        if t.is_punct(']') || t.is_punct(')') {
            // Skip to the matching opener.
            let (open, close) = if t.is_punct(']') {
                ('[', ']')
            } else {
                ('(', ')')
            };
            let mut depth = 0i64;
            loop {
                if toks[j].is_punct(close) {
                    depth += 1;
                } else if toks[j].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            j = j.checked_sub(1)?;
        } else if t.kind == TokKind::Ident {
            return Some(t.text.clone());
        } else {
            return None;
        }
    }
}

/// Token-index ranges of loop bodies (`for`/`while`/`loop` … `{ .. }`)
/// within `[start, end]`.
fn loop_ranges(toks: &[Tok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.is_ident("for") || t.is_ident("while") || t.is_ident("loop") {
            // `for` in `impl<T> for` position can't appear inside a body;
            // find the loop body's `{` (stopping at `;` for safety).
            let mut j = i + 1;
            while j <= end && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j <= end && toks[j].is_punct('{') {
                out.push((j, match_delim(toks, j, '{', '}')));
            }
        }
    }
    out
}

/// After an ident at `i`, skip a turbofish (`::<..>`) if present and return
/// the index of the would-be `(`.
fn after_turbofish(toks: &[Tok], i: usize) -> usize {
    if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
    {
        let mut depth = 0i64;
        for (j, t) in toks.iter().enumerate().skip(i + 3) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
    }
    i + 1
}

/// Scan `[start, end]` (token indices) into an op list, skipping the
/// `skip` spans (nested fn items).
fn scan_ops(toks: &[Tok], start: usize, end: usize, skip: &[(usize, usize)]) -> Vec<Op> {
    let mut ops = Vec::new();
    let end = end.min(toks.len().saturating_sub(1));
    let loops = loop_ranges(toks, start, end);
    let mut cr_depth: u32 = 0;
    let mut i = start;
    while i <= end {
        if let Some(&(_, close)) = skip.iter().find(|&&(a, b)| a <= i && i <= b) {
            i = close + 1;
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let line = t.line;
        let weight = if loops.iter().any(|&(a, b)| a < i && i < b) {
            LOOP_WEIGHT
        } else {
            1
        };
        macro_rules! push {
            ($kind:expr) => {
                ops.push(Op {
                    kind: $kind,
                    line,
                    cr_depth,
                    weight,
                })
            };
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let call_paren = after_turbofish(toks, i);
        let is_called = toks.get(call_paren).is_some_and(|n| n.is_punct('('));
        let is_def = i > 0 && toks[i - 1].is_ident("fn");
        let name = t.text.as_str();

        // `trace::emit(..)` / `ale_trace::emit(..)` spans are exempt from
        // every analysis (HTM-safe by construction): skip them wholesale.
        if (t.is_ident("trace") || t.is_ident("ale_trace"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("emit"))
            && toks.get(i + 4).is_some_and(|n| n.is_punct('('))
        {
            i = match_delim(toks, i + 4, '(', ')') + 1;
            continue;
        }

        // Conflicting-region brackets adjust depth; they are not calls.
        if is_called && !is_def && name == "begin_conflicting_action" {
            cr_depth += 1;
            i += 1;
            continue;
        }
        if is_called && !is_def && name == "end_conflicting_action" {
            cr_depth = cr_depth.saturating_sub(1);
            i += 1;
            continue;
        }

        // `Box::new` and friends: path-form allocation.
        if (name == "Box" || name == "Rc" || name == "Arc" || name == "String")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|n| n.is_ident("new") || n.is_ident("from"))
        {
            push!(OpKind::Flag {
                bits: flag::ALLOC,
                what: format!("{name}::{}", toks[i + 3].text),
            });
            i += 4;
            continue;
        }

        // Macros: `name!(..)`.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            let bits = macro_flag(name);
            if bits != 0 {
                push!(OpKind::Flag {
                    bits,
                    what: format!("{name}!"),
                });
            }
            i += 2;
            continue;
        }

        if is_called && !is_def {
            if prev_dot {
                let recv = receiver_name(toks, i - 1).unwrap_or_else(|| "?".into());
                if LOCK_ACQUIRE.contains(&name) {
                    push!(OpKind::Acquire { lock: recv });
                    if name == "lock" {
                        // std `Mutex::lock` also implies PARK (blocking).
                        push!(OpKind::Flag {
                            bits: flag::PARK,
                            what: "lock()".into(),
                        });
                    }
                } else if LOCK_RELEASE.contains(&name) {
                    push!(OpKind::Release { lock: recv });
                } else if matches!(name, "get" | "load" | "read") {
                    push!(OpKind::Read { key: recv });
                    if name == "load" {
                        push!(OpKind::Flag {
                            bits: flag::ATOMIC,
                            what: ".load(".into(),
                        });
                    }
                } else if matches!(name, "set" | "store" | "get_mut") || name.starts_with("fetch_")
                {
                    push!(OpKind::Write {
                        key: recv,
                        purity_relevant: true,
                    });
                    if name == "store" || name.starts_with("fetch_") {
                        push!(OpKind::Flag {
                            bits: flag::ATOMIC,
                            what: format!(".{name}("),
                        });
                    }
                }
                let bits = method_flag(name);
                if bits != 0 {
                    push!(OpKind::Flag {
                        bits,
                        what: format!(".{name}("),
                    });
                }
                if !METHOD_LINK_DENY.contains(&name) && !is_noncall(name) {
                    push!(OpKind::Call {
                        callee: name.to_string(),
                        qual: CallQual::Method,
                    });
                }
            } else {
                let bits = call_flag(name);
                if bits != 0 {
                    push!(OpKind::Flag {
                        bits,
                        what: format!("{name}("),
                    });
                }
                if !is_noncall(name) {
                    // `Qual::name(..)`: an uppercase qualifier is a type
                    // (resolved strictly against `impl Qual`); a lowercase
                    // one is a module path (resolved by bare name, like an
                    // unqualified call, minus the std-collision deny list).
                    let path_qual = (i >= 3
                        && toks[i - 1].is_punct(':')
                        && toks[i - 2].is_punct(':')
                        && toks[i - 3].kind == TokKind::Ident)
                        .then(|| toks[i - 3].text.clone());
                    let qual = match path_qual {
                        Some(q)
                            if q != "self"
                                && q != "Self"
                                && q.starts_with(|c: char| c.is_ascii_uppercase()) =>
                        {
                            Some(CallQual::Typed(q))
                        }
                        Some(_) if METHOD_LINK_DENY.contains(&name) => None,
                        _ => Some(CallQual::Bare),
                    };
                    if let Some(qual) = qual {
                        push!(OpKind::Call {
                            callee: name.to_string(),
                            qual,
                        });
                    }
                }
            }
            i += 1;
            continue;
        }

        // Bare `Ordering` mention: atomic-ordering touch.
        if name == "Ordering" {
            push!(OpKind::Flag {
                bits: flag::ATOMIC,
                what: "Ordering::".into(),
            });
            i += 1;
            continue;
        }

        // Field / deref assignment: `a.b = v` or `*p = v` (not `==`; a
        // compound `a.b += v` is missed — documented imprecision).
        let next_eq = toks.get(i + 1).is_some_and(|n| n.is_punct('='))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct('='));
        let prev_deref_or_dot = i > 0 && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct('*'));
        if next_eq && prev_deref_or_dot {
            push!(OpKind::Write {
                key: name.to_string(),
                purity_relevant: false,
            });
        }
        i += 1;
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> ParsedFile {
        let model = lexer::analyze(src);
        let toks = lexer::tokens(&model);
        let fns = lexer::functions(&toks);
        let ranges = lexer::cfg_test_ranges(&toks);
        parse_file(&model, &toks, &fns, &ranges, false)
    }

    #[test]
    fn calls_locks_and_writes_are_extracted() {
        let src = "
impl Db {
    fn put(&self) {
        self.mlock.acquire_shared();
        self.slot_locks[si].acquire();
        helper(1);
        self.cell.set(5);
        self.slot_locks[si].release();
        self.mlock.release_shared();
    }
}
";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.qual, "Db::put");
        let kinds: Vec<&OpKind> = f.ops.iter().map(|o| &o.kind).collect();
        assert!(kinds.contains(&&OpKind::Acquire {
            lock: "mlock".into()
        }));
        assert!(kinds.contains(&&OpKind::Acquire {
            lock: "slot_locks".into()
        }));
        assert!(kinds.contains(&&OpKind::Call {
            callee: "helper".into(),
            qual: CallQual::Bare
        }));
        assert!(kinds.contains(&&OpKind::Write {
            key: "cell".into(),
            purity_relevant: true
        }));
        assert!(kinds.contains(&&OpKind::Release {
            lock: "slot_locks".into()
        }));
    }

    #[test]
    fn loop_and_bracket_context_is_tracked() {
        let src = "
fn f(v: &SeqVersion) {
    v.begin_conflicting_action();
    self.cell.set(1);
    v.end_conflicting_action();
    while go() {
        self.other.set(2);
    }
}
";
        let p = parse(src);
        let f = &p.fns[0];
        let bracketed = f
            .ops
            .iter()
            .find(|o| matches!(&o.kind, OpKind::Write { key, .. } if key == "cell"))
            .unwrap();
        assert_eq!(bracketed.cr_depth, 1);
        assert_eq!(bracketed.weight, 1);
        let looped = f
            .ops
            .iter()
            .find(|o| matches!(&o.kind, OpKind::Write { key, .. } if key == "other"))
            .unwrap();
        assert_eq!(looped.cr_depth, 0);
        assert_eq!(looped.weight, LOOP_WEIGHT);
    }

    #[test]
    fn attempt_extents_and_markers() {
        let src = "
// ale-lint: htm-body
fn hot(&self) { helper(); }

// (markers look back five lines, like every ale-lint comment rule, so
// this fn needs enough distance from the marker above to stay unmarked)
//
//
//
fn outer(&self) {
    attempt(profile, rng, || {
        self.cell.get();
        inner_helper();
    });
}

#[cfg(test)]
mod tests {
    fn t() { attempt(|| {}); }
}
";
        let p = parse(src);
        assert!(p.fns[0].htm_body);
        assert!(!p.fns[1].htm_body);
        assert_eq!(p.htm_extents.len(), 1, "test-code attempt excluded");
        assert!(p.htm_extents[0].what.contains("in outer"));
        assert!(p.htm_extents[0]
            .ops
            .iter()
            .any(|o| matches!(&o.kind, OpKind::Call { callee, .. } if callee == "inner_helper")));
    }

    #[test]
    fn turbofish_calls_are_calls() {
        let src = "fn f(&self) { self.get_impl::<true>(k, v); }";
        let p = parse(src);
        assert!(p.fns[0]
            .ops
            .iter()
            .any(|o| matches!(&o.kind, OpKind::Call { callee, .. } if callee == "get_impl")));
    }

    #[test]
    fn trace_emit_spans_are_invisible() {
        let src = "fn f() { trace::emit(TraceEvent::mode_decision(x.unwrap(), vec![1])); }";
        let p = parse(src);
        assert!(p.fns[0].ops.is_empty(), "{:?}", p.fns[0].ops);
    }
}
