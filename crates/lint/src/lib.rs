//! `ale-lint` — a workspace-wide static invariant checker for the
//! elision-safety rules this codebase depends on but `rustc` cannot see.
//!
//! The checker is a small hand-rolled lexer (no external dependencies,
//! works fully offline), five line-local syntactic rules, and — since v2 —
//! an interprocedural layer: a lightweight item [`parser`], a workspace
//! [`callgraph`], per-function [`effects`] propagated to a fixed point, and
//! four whole-program rules (transitive SWOpt purity, transitive HTM
//! hygiene, lock-order cycles, HTM footprint). See [`rules`] for the rule
//! table and DESIGN.md §7 for the analysis model. Run it with:
//!
//! ```text
//! cargo run -p ale-lint                        # report findings
//! cargo run -p ale-lint -- --deny              # exit nonzero on any finding
//! cargo run -p ale-lint -- --json              # machine-readable output
//! cargo run -p ale-lint -- --effects           # per-function effect dump
//! cargo run -p ale-lint -- --callgraph-dot g.dot   # Graphviz export
//! cargo run -p ale-lint -- --capacity 2048,32  # htm-footprint limits
//! ```
//!
//! ## Suppression
//!
//! A finding is suppressed by a `// ale-lint: allow(<rule-id>)` comment on
//! the same line or the line directly above it. Marker comments
//! `// ale-lint: swopt` and `// ale-lint: htm-body` opt a function *into*
//! the `swopt-purity` / `htm-body-hygiene` rules respectively.
//!
//! ## Baseline
//!
//! Pre-existing findings can be grandfathered in `lint-baseline.txt` at the
//! workspace root (override with `--baseline <path>`). Each line is
//! `rule-id<TAB>path<TAB>trimmed source line`; matching is by content, not
//! line number, so the baseline survives unrelated edits. `#`-prefixed
//! lines and blank lines are ignored.

pub mod callgraph;
pub mod effects;
pub mod lexer;
pub mod parser;
pub mod rules;

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

pub use rules::{Capacity, RULE_IDS};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID (one of [`RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// Trimmed source line, used for baseline matching.
    pub line_content: String,
}

impl Finding {
    /// Stable identity used by the baseline file.
    #[must_use]
    pub fn baseline_key(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.file, self.line_content)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One lexed/parsed file inside an [`Analysis`].
pub struct AnalyzedFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    pub model: lexer::FileModel,
    /// True for files under a crate's `src/` (as opposed to `tests/`).
    pub is_src: bool,
    toks: Vec<lexer::Tok>,
    fns: Vec<lexer::FnExtent>,
    test_ranges: Vec<(usize, usize)>,
}

/// A whole-workspace (or single-file) analysis: per-file lex/parse results
/// plus the assembled call graph and its transitive effects. Build once,
/// then ask for [`Analysis::findings`], [`Analysis::effects_dump`], or
/// [`Analysis::callgraph_dot`].
pub struct Analysis {
    pub files: Vec<AnalyzedFile>,
    pub program: callgraph::Program,
    /// Transitive effects, indexed like `program.nodes`.
    pub effects: Vec<effects::Effects>,
}

/// The two files whose SWOpt read paths are auto-detected by name (the
/// paper's Figure-1 modules); everywhere else requires the explicit marker
/// comment. Kept in sync with `rules::swopt_fns`.
fn swopt_auto_file(path: &str) -> bool {
    path.ends_with("hashmap/src/map.rs") || path.ends_with("kyoto/src/ale_db.rs")
}

impl Analysis {
    /// Analyze a set of `(rel_path, source, is_src)` triples.
    #[must_use]
    pub fn of_sources(sources: Vec<(String, String, bool)>) -> Analysis {
        let mut files = Vec::with_capacity(sources.len());
        let mut parsed = Vec::with_capacity(sources.len());
        for (path, src, is_src) in sources {
            let model = lexer::analyze(&src);
            let toks = lexer::tokens(&model);
            let fns = lexer::functions(&toks);
            let test_ranges = lexer::cfg_test_ranges(&toks);
            parsed.push((
                path.clone(),
                parser::parse_file(&model, &toks, &fns, &test_ranges, swopt_auto_file(&path)),
            ));
            files.push(AnalyzedFile {
                path,
                model,
                is_src,
                toks,
                fns,
                test_ranges,
            });
        }
        let program = callgraph::Program::build(&parsed);
        let effects = effects::propagate(&program);
        Analysis {
            files,
            program,
            effects,
        }
    }

    /// Run every rule (line-local per file, then whole-program), drop
    /// suppressed findings, and sort deterministically by
    /// `(path, line, rule)`.
    #[must_use]
    pub fn findings(&self, capacity: Capacity) -> Vec<Finding> {
        let mut out = Vec::new();
        for f in &self.files {
            if f.model.raw.is_empty() {
                continue;
            }
            let ctx = rules::FileCtx {
                path: &f.path,
                model: &f.model,
                toks: &f.toks,
                fns: &f.fns,
                test_ranges: &f.test_ranges,
                is_src: f.is_src,
            };
            out.extend(rules::check_all(&ctx));
        }

        let src_files: HashSet<String> = self
            .files
            .iter()
            .filter(|f| f.is_src)
            .map(|f| f.path.clone())
            .collect();
        let pctx = rules::ProgramCtx {
            program: &self.program,
            effects: &self.effects,
            src_files: &src_files,
            capacity,
        };
        let models: HashMap<&str, &lexer::FileModel> = self
            .files
            .iter()
            .map(|f| (f.path.as_str(), &f.model))
            .collect();
        for mut finding in rules::check_program(&pctx) {
            // Program findings come back without line content; fill it in
            // so baseline matching and suppression work uniformly.
            if let Some(model) = models.get(finding.file.as_str()) {
                finding.line_content = model
                    .raw
                    .get(finding.line - 1)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default();
            }
            out.push(finding);
        }

        let mut out: Vec<Finding> = out
            .into_iter()
            .filter(|f| {
                !models
                    .get(f.file.as_str())
                    .is_some_and(|model| is_suppressed(model, f))
            })
            .collect();
        out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        out.dedup();
        out
    }

    /// Per-node transitive effect dump (`--effects`), sorted by
    /// `(file, line)`.
    #[must_use]
    pub fn effects_dump(&self) -> String {
        let mut lines: Vec<(String, usize, String)> = self
            .program
            .nodes
            .iter()
            .zip(&self.effects)
            .map(|(n, e)| {
                (
                    n.file.clone(),
                    n.line,
                    format!(
                        "{}:{} {} — {}",
                        n.file,
                        n.line + 1,
                        n.qual,
                        effects::describe(e)
                    ),
                )
            })
            .collect();
        lines.sort();
        lines
            .into_iter()
            .map(|(_, _, l)| l)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Graphviz export of the resolved call graph (`--callgraph-dot`).
    #[must_use]
    pub fn callgraph_dot(&self) -> String {
        self.program.to_dot()
    }
}

/// Lint one file's source. `rel_path` should be workspace-relative with
/// forward slashes — several rules key off it (src-vs-test scoping, the
/// `counters.rs` allowlist, SWOpt auto-detection). The whole-program rules
/// run over the single-file program, so intra-file call chains are checked
/// too.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let is_src = rel_path.contains("/src/") || rel_path.starts_with("src/");
    lint_source_as(rel_path, src, is_src)
}

/// Like [`lint_source`] but with the src-vs-test scoping decided by the
/// caller. The CLI uses `is_src = true` for explicitly-passed paths so the
/// src-only rules apply to spot-checked files (and to the bad-fixture
/// corpus) regardless of where they live.
pub fn lint_source_as(rel_path: &str, src: &str, is_src: bool) -> Vec<Finding> {
    Analysis::of_sources(vec![(rel_path.to_string(), src.to_string(), is_src)])
        .findings(Capacity::DEFAULT)
}

/// `// ale-lint: allow(<rule>)` on the finding's line, or on a
/// comment-only line directly above it. (A *trailing* allow suppresses only
/// its own line, so one annotation can't silently cover a neighbour.)
fn is_suppressed(model: &lexer::FileModel, f: &Finding) -> bool {
    let needle = format!("ale-lint: allow({})", f.rule);
    let line0 = f.line - 1;
    if model.comments[line0.min(model.comments.len() - 1)].contains(&needle) {
        return true;
    }
    if line0 == 0 {
        return false;
    }
    let prev = line0 - 1;
    let prev_comment_only = model
        .masked
        .get(prev)
        .is_some_and(|code| code.trim().is_empty());
    prev_comment_only && model.comments[prev].contains(&needle)
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The default lint surface: every `crates/*/src/**/*.rs` plus the
/// workspace-level `tests/` directory. Fixture files under
/// `crates/lint/tests/` are deliberately *not* part of the walk — they
/// contain intentional violations.
#[must_use]
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for krate in dirs {
            collect_rs(&krate.join("src"), &mut files);
        }
    }
    collect_rs(&root.join("src"), &mut files);
    collect_rs(&root.join("tests"), &mut files);
    files
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Build an [`Analysis`] over an explicit list of files, reporting paths
/// relative to `root`. `force_src` applies every rule (including the
/// src-only ones) to every file, regardless of its path.
pub fn analyze_files(root: &Path, files: &[PathBuf], force_src: bool) -> std::io::Result<Analysis> {
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let src = std::fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        let is_src = force_src || rel.contains("/src/") || rel.starts_with("src/");
        sources.push((rel, src, is_src));
    }
    Ok(Analysis::of_sources(sources))
}

/// Lint an explicit list of files with the default backend capacity.
pub fn lint_files(
    root: &Path,
    files: &[PathBuf],
    force_src: bool,
) -> std::io::Result<Vec<Finding>> {
    Ok(analyze_files(root, files, force_src)?.findings(Capacity::DEFAULT))
}

/// Lint the whole default surface under `root`, as one whole-program
/// analysis (cross-crate call chains resolve).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    lint_files(root, &workspace_files(root), false)
}

/// Parse a baseline file's content into the set of grandfathered keys.
#[must_use]
pub fn parse_baseline(content: &str) -> HashSet<String> {
    content
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect()
}

/// Load a baseline file; a missing file is an empty baseline.
pub fn load_baseline(path: &Path) -> HashSet<String> {
    std::fs::read_to_string(path)
        .map(|c| parse_baseline(&c))
        .unwrap_or_default()
}

/// Drop findings that are grandfathered by the baseline.
#[must_use]
pub fn apply_baseline(findings: Vec<Finding>, baseline: &HashSet<String>) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| !baseline.contains(&f.baseline_key()))
        .collect()
}

/// Render findings as a JSON document (hand-rolled; no serde available
/// offline).
///
/// Schema (stable; consumed by CI tooling):
///
/// ```json
/// {
///   "count": <number of findings>,
///   "findings": [
///     {"rule": "<rule id>", "file": "<workspace-relative path>",
///      "line": <1-based line>, "message": "<human-readable message>"}
///   ]
/// }
/// ```
///
/// `findings` preserves the caller's order; every producer in this crate
/// sorts by `(file, line, rule)` first, so JSON output is deterministic
/// across runs and platforms.
#[must_use]
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                esc(f.rule),
                esc(&f.file),
                f.line,
                esc(&f.message)
            )
        })
        .collect();
    format!(
        "{{\n  \"count\": {},\n  \"findings\": [\n{}\n  ]\n}}",
        findings.len(),
        items.join(",\n")
    )
}

/// The workspace root, resolved from this crate's manifest directory
/// (`crates/lint` → two levels up).
#[must_use]
pub fn default_workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_on_same_and_previous_line() {
        let src = "
fn f() {
    // ale-lint: allow(safety-comment)
    unsafe { g() }
    unsafe { h() } // ale-lint: allow(safety-comment)
    unsafe { i() }
}
";
        let findings = lint_source("crates/x/src/a.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn baseline_matches_by_content_not_line() {
        let src = "fn f() { unsafe { g() } }\n";
        let findings = lint_source("crates/x/src/a.rs", src);
        assert_eq!(findings.len(), 1);
        let baseline = parse_baseline(&format!(
            "# a comment line\n\n{}\n",
            findings[0].baseline_key()
        ));
        assert!(apply_baseline(findings.clone(), &baseline).is_empty());
        // Same key still matches if the line moves.
        let moved = format!("\n\n\n{src}");
        let findings2 = lint_source("crates/x/src/a.rs", &moved);
        assert_eq!(findings2.len(), 1);
        assert!(apply_baseline(findings2, &baseline).is_empty());
    }

    #[test]
    fn json_is_escaped() {
        let f = Finding {
            rule: "safety-comment",
            file: "a\"b.rs".into(),
            line: 3,
            message: "quote \" and\nnewline".into(),
            line_content: String::new(),
        };
        let json = to_json(&[f]);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("quote \\\" and\\nnewline"));
        assert!(json.contains("\"count\": 1"));
    }
}
