//! A small hand-rolled Rust lexer: just enough syntax awareness for the
//! lint rules to reason about *code* without being fooled by comments,
//! string literals, or char-vs-lifetime ambiguity.
//!
//! The output is line-oriented:
//! - `masked`: the source with every comment and every string/char literal
//!   body replaced by spaces (same length, same line structure), so token
//!   scans see only real code;
//! - `comments`: the concatenated comment text per line, so rules can look
//!   for `// SAFETY:`, `// ale-lint: allow(..)`, and marker comments.

/// Per-file lexed view consumed by the rules.
#[derive(Debug)]
pub struct FileModel {
    /// Original source, split into lines.
    pub raw: Vec<String>,
    /// Source with comments and literal bodies blanked to spaces.
    pub masked: Vec<String>,
    /// Comment text per line (all comments on that line, concatenated).
    pub comments: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
}

/// One token of masked code. `Ident` covers identifier/number runs;
/// every other non-whitespace char is a single-char `Punct`.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 0-based line index.
    pub line: usize,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* */`.
    BlockComment(u32),
    Str,
    /// Number of `#`s in the `r#"..."#` delimiter.
    RawStr(u32),
    CharLit,
}

/// Lex `src` into the line-oriented [`FileModel`].
pub fn analyze(src: &str) -> FileModel {
    let chars: Vec<char> = src.chars().collect();
    let mut masked = String::with_capacity(src.len());
    let mut comments_acc: Vec<String> = vec![String::new()];
    let mut line = 0usize;
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! newline {
        () => {{
            masked.push('\n');
            line += 1;
            comments_acc.push(String::new());
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '\n' => {
                    newline!();
                    i += 1;
                }
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    masked.push_str("  ");
                    comments_acc[line].push_str("//");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    masked.push_str("  ");
                    comments_acc[line].push_str("/*");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    masked.push('"');
                    i += 1;
                }
                'r' | 'b' | 'c' if raw_string_prefix_len(&chars, i).is_some() => {
                    // `r"…"`, `r#"…"#`, and the byte/C-string forms
                    // `br#"…"#` / `cr#"…"#`. Without the prefix awareness the
                    // `b`/`c` lexes into an identifier and the literal is
                    // processed as an escaped string — a trailing `\` before
                    // the closing quote then swallows it and leaks the rest
                    // of the file into string state.
                    let prefix = raw_string_prefix_len(&chars, i).unwrap();
                    let hashes = count_hashes(&chars, i + prefix);
                    state = State::RawStr(hashes);
                    for k in 0..prefix {
                        masked.push(chars[i + k]);
                    }
                    for _ in 0..hashes {
                        masked.push('#');
                    }
                    masked.push('"');
                    i += prefix + 1 + hashes as usize;
                }
                '\'' => {
                    // Lifetime (`'a`) or char literal (`'a'`, `'\n'`)?
                    if next == Some('\\') {
                        state = State::CharLit;
                        masked.push('\'');
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        // 'x' — a one-char literal.
                        masked.push_str("'x'");
                        i += 3;
                    } else {
                        // Lifetime: keep the tick, let the ident lex normally.
                        masked.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    masked.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    newline!();
                } else {
                    masked.push(' ');
                    comments_acc[line].push(c);
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    newline!();
                    i += 1;
                } else if c == '*' && next == Some('/') {
                    comments_acc[line].push_str("*/");
                    masked.push_str("  ");
                    i += 2;
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if c == '/' && next == Some('*') {
                    comments_acc[line].push_str("/*");
                    masked.push_str("  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    comments_acc[line].push(c);
                    masked.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    masked.push_str("  ");
                    i += 2;
                    if next == Some('\n') {
                        // Escaped newline inside a string still ends the
                        // physical line.
                        masked.pop();
                        masked.pop();
                        masked.push(' ');
                        newline!();
                    }
                } else if c == '"' {
                    masked.push('"');
                    state = State::Code;
                    i += 1;
                } else if c == '\n' {
                    newline!();
                    i += 1;
                } else {
                    masked.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closing_hashes(&chars, i + 1) >= hashes {
                    masked.push('"');
                    for _ in 0..hashes {
                        masked.push('#');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else if c == '\n' {
                    newline!();
                    i += 1;
                } else {
                    masked.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    masked.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    masked.push('\'');
                    state = State::Code;
                    i += 1;
                } else if c == '\n' {
                    // Malformed literal; recover.
                    state = State::Code;
                    newline!();
                    i += 1;
                } else {
                    masked.push(' ');
                    i += 1;
                }
            }
        }
    }

    let raw: Vec<String> = src.lines().map(String::from).collect();
    let mut masked_lines: Vec<String> = masked.lines().map(String::from).collect();
    // `String::lines` drops a trailing newline-less segment mismatch; pad so
    // the three views always have the same number of lines.
    while masked_lines.len() < raw.len() {
        masked_lines.push(String::new());
    }
    while comments_acc.len() < raw.len() {
        comments_acc.push(String::new());
    }
    comments_acc.truncate(raw.len().max(1));
    masked_lines.truncate(raw.len());

    FileModel {
        raw,
        masked: masked_lines,
        comments: comments_acc,
    }
}

/// If a raw-string literal starts at `i`, the length of its letter prefix:
/// 1 for `r"…"` / `r#"…"#`, 2 for `br#"…"#` / `cr#"…"#`. `None` when `i` is
/// not a raw-string start (e.g. the tail of an identifier like `var`, or a
/// raw identifier like `r#match`).
fn raw_string_prefix_len(chars: &[char], i: usize) -> Option<usize> {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let prefix = match chars[i] {
        'r' => 1,
        'b' | 'c' if chars.get(i + 1) == Some(&'r') => 2,
        _ => return None,
    };
    let mut j = i + prefix;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(prefix)
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn closing_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

/// Tokenize the masked code into identifier runs and single-char puncts.
pub fn tokens(model: &FileModel) -> Vec<Tok> {
    let mut out = Vec::new();
    for (line_no, line) in model.masked.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: line_no,
                });
            } else {
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line: line_no,
                });
                i += 1;
            }
        }
    }
    out
}

/// Index of the token matching the opening delimiter at `open_idx`
/// (`{`/`}` or `(`/`)`). Returns the last token index if unbalanced.
pub fn match_delim(toks: &[Tok], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// A function item extent within the token stream.
#[derive(Debug, Clone)]
pub struct FnExtent {
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the matching `}`.
    pub body_close: usize,
}

/// All `fn name(..) { .. }` extents (including nested ones).
pub fn functions(toks: &[Tok]) -> Vec<FnExtent> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    // Find the body `{`; a `;` first means a bodyless decl
                    // (trait method, extern).
                    let mut j = i + 2;
                    let mut body_open = None;
                    while j < toks.len() {
                        if toks[j].is_punct('{') {
                            body_open = Some(j);
                            break;
                        }
                        if toks[j].is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                    if let Some(open) = body_open {
                        let close = match_delim(toks, open, '{', '}');
                        out.push(FnExtent {
                            name: name_tok.text.clone(),
                            sig_line: toks[i].line,
                            body_open: open,
                            body_close: close,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Token-index ranges covered by `#[cfg(test)] mod .. { .. }` items.
pub fn cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']');
        if is_cfg_test {
            // Find the guarded item's opening brace (mod or fn).
            let mut j = i + 7;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let close = match_delim(toks, j, '{', '}');
                out.push((i, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let src = r#"
// SAFETY: top
let s = "unsafe in a string";
let c = 'u'; // trailing unsafe note
/* block
   unsafe */
let lt: &'static str = "x";
"#;
        let m = analyze(src);
        let joined = m.masked.join("\n");
        assert!(!joined.contains("unsafe"), "masked: {joined}");
        assert!(m.comments[1].contains("SAFETY: top"));
        assert!(m.comments[3].contains("trailing unsafe note"));
        assert!(m.comments[5].contains("unsafe"));
        // Lifetime survives as code.
        assert!(m.masked[6].contains("static"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ still comment */ fn x() {}";
        let m = analyze(src);
        assert!(m.masked[0].contains("fn x"));
        assert!(!m.masked[0].contains("still"));
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = r###"let x = r#"unsafe "quoted" body"#; fn y() {}"###;
        let m = analyze(src);
        assert!(!m.masked[0].contains("unsafe"));
        assert!(m.masked[0].contains("fn y"));
    }

    #[test]
    fn byte_raw_strings_do_not_leak_tokens() {
        // Regression: `br#"…"#` used to lex as ident `br` + a *normal*
        // string, so the trailing `\` swallowed the closing quote and the
        // rest of the file leaked into string state (masking real code).
        let src = r###"let p = br#"path\"#; let q = cr#"also \"#; fn live() { unsafe { g() } }"###;
        let m = analyze(src);
        assert!(m.masked[0].contains("fn live"), "masked: {:?}", m.masked[0]);
        assert!(m.masked[0].contains("unsafe"), "masked: {:?}", m.masked[0]);
        assert!(!m.masked[0].contains("path"));
        assert!(!m.masked[0].contains("also"));
    }

    #[test]
    fn raw_string_inner_hash_quote_does_not_close_early() {
        // `"#` inside an `r##"…"##` body is not a terminator; leaking out of
        // string state here would surface the body as code tokens.
        let src = r####"let x = r##"inner "# still string"##; fn live() {}"####;
        let m = analyze(src);
        assert!(!m.masked[0].contains("still"));
        assert!(m.masked[0].contains("fn live"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let src = r##"let r#match = 1; let b = r#match; fn live() {}"##;
        let m = analyze(src);
        assert!(m.masked[0].contains("fn live"));
        assert!(m.masked[0].contains("match"), "raw ident stays code");
    }

    #[test]
    fn tricky_nested_block_comments_do_not_leak() {
        // `/*/` opens without closing; `/**/` nests and immediately closes;
        // each `*/` must pop exactly one level.
        let src = "/* a /**/ b /* c /* d */ e */ f */ fn live() {} /* tail";
        let m = analyze(src);
        assert!(m.masked[0].contains("fn live"), "masked: {:?}", m.masked[0]);
        for leak in ["a", "b", "c", "d", "e", "f", "tail"] {
            assert!(
                !tokens(&m).iter().any(|t| t.is_ident(leak)),
                "comment text `{leak}` leaked into tokens"
            );
        }
    }

    #[test]
    fn multiline_raw_string_keeps_line_structure() {
        let src = "let x = r#\"line one\nunsafe two\n\"#;\nfn live() {}\n";
        let m = analyze(src);
        assert_eq!(m.raw.len(), m.masked.len());
        assert!(!m.masked.join("\n").contains("unsafe"));
        assert!(m.masked[3].contains("fn live"));
    }

    #[test]
    fn function_extents_and_cfg_test() {
        let src = "
fn alpha() { if x { y(); } }
#[cfg(test)]
mod tests {
    fn beta() {}
}
";
        let m = analyze(src);
        let toks = tokens(&m);
        let fns = functions(&toks);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        let ranges = cfg_test_ranges(&toks);
        assert_eq!(ranges.len(), 1);
        let beta = &fns[1];
        assert!(
            ranges[0].0 <= beta.body_open && beta.body_close <= ranges[0].1,
            "beta should fall inside the cfg(test) range"
        );
    }
}
