//! The elision-safety rules: five line-local, four whole-program.
//!
//! | rule id | invariant |
//! |---------|-----------|
//! | `safety-comment` | every `unsafe` is annotated with `// SAFETY:` (or a `# Safety` doc section) within the five preceding lines |
//! | `conflicting-region-balance` | `begin_conflicting_action` / `end_conflicting_action` pair up within one function, with no `return` / `?` / `break` escaping the open region |
//! | `swopt-purity` | SWOpt (optimistic) read paths perform no writes — `store(` / `fetch_*` / `get_mut` / `lock()` — outside a conflicting-region bracket |
//! | `htm-body-hygiene` | code passed to the HTM engine avoids `Box::new`, `Vec::push`, `println!`, `panic!`, `.unwrap()`, `.expect()` (allocation / IO / unwinding abort transactions or leak); `trace::emit(..)` spans are exempt (HTM-safe by construction) |
//! | `ordering-discipline` | `Ordering::Relaxed` is forbidden on stores to lock words and version/publication fields |
//! | `swopt-purity-transitive` | a SWOpt path must not *reach* a write/alloc/lock effect through any call chain (calls made inside a conflicting-region bracket are exempt) |
//! | `htm-body-hygiene-transitive` | a transaction body must not *reach* an alloc/IO/park effect through any call chain (`trace::emit(..)` stays exempt) |
//! | `lock-order-cycle` | the static lock-acquisition graph (lock A held while B is acquired, directly or through calls) must be acyclic |
//! | `htm-footprint` | a transaction body's estimated transitive read/write footprint must fit the configured backend capacity |
//!
//! The whole-program rules run over the [`crate::callgraph::Program`] with
//! transitive [`crate::effects`]; see DESIGN.md §7 for the effect lattice
//! and the footprint estimation model.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::callgraph::{NodeId, Program};
use crate::effects::Effects;
use crate::lexer::{match_delim, FileModel, FnExtent, Tok, TokKind};
use crate::parser::{flag, OpKind};
use crate::Finding;

/// Everything a rule needs to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    pub model: &'a FileModel,
    pub toks: &'a [Tok],
    pub fns: &'a [FnExtent],
    /// Token-index ranges under `#[cfg(test)]`.
    pub test_ranges: &'a [(usize, usize)],
    /// True for files under a crate's `src/` (as opposed to `tests/`).
    pub is_src: bool,
}

impl FileCtx<'_> {
    fn in_test_code(&self, tok_idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= tok_idx && tok_idx <= b)
    }

    fn finding(&self, rule: &'static str, line0: usize, message: String) -> Finding {
        Finding {
            rule,
            file: self.path.to_string(),
            line: line0 + 1,
            message,
            line_content: self
                .model
                .raw
                .get(line0)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        }
    }

    /// Does any comment in `[line0 - back, line0]` contain `needle`?
    fn comment_nearby(&self, line0: usize, back: usize, needle: &str) -> bool {
        let lo = line0.saturating_sub(back);
        self.model.comments[lo..=line0.min(self.model.comments.len() - 1)]
            .iter()
            .any(|c| c.contains(needle))
    }
}

/// All rule IDs, in reporting order.
pub const RULE_IDS: [&str; 9] = [
    "safety-comment",
    "conflicting-region-balance",
    "swopt-purity",
    "htm-body-hygiene",
    "ordering-discipline",
    "swopt-purity-transitive",
    "htm-body-hygiene-transitive",
    "lock-order-cycle",
    "htm-footprint",
];

pub fn check_all(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(safety_comment(ctx));
    out.extend(region_balance(ctx));
    out.extend(swopt_purity(ctx));
    out.extend(htm_body_hygiene(ctx));
    out.extend(ordering_discipline(ctx));
    out
}

/// `safety-comment`: each `unsafe` keyword must have a `SAFETY:` comment or
/// a `# Safety` doc section within the five preceding lines (or inline).
fn safety_comment(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for t in ctx.toks {
        if t.is_ident("unsafe") {
            let l = t.line;
            if !ctx.comment_nearby(l, 5, "SAFETY:") && !ctx.comment_nearby(l, 5, "# Safety") {
                out.push(
                    ctx.finding(
                        "safety-comment",
                        l,
                        "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) \
                     within the five preceding lines"
                            .to_string(),
                    ),
                );
            }
        }
    }
    out
}

/// Is the token at `i` a *call* of `name` (not its `fn` definition)?
fn is_call_of(toks: &[Tok], i: usize, name: &str) -> bool {
    if !toks[i].is_ident(name) {
        return false;
    }
    if i > 0 && toks[i - 1].is_ident("fn") {
        return false;
    }
    toks.get(i + 1).is_some_and(|n| n.is_punct('('))
}

/// `conflicting-region-balance`: per function, `begin_conflicting_action`
/// and `end_conflicting_action` must pair up, and no `return` / `?` /
/// `break` may occur while a region is open.
fn region_balance(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in ctx.fns {
        let mut depth = 0i64;
        let mut open_line = 0usize;
        for i in f.body_open..=f.body_close.min(ctx.toks.len() - 1) {
            let t = &ctx.toks[i];
            if is_call_of(ctx.toks, i, "begin_conflicting_action") {
                if depth == 0 {
                    open_line = t.line;
                }
                depth += 1;
            } else if is_call_of(ctx.toks, i, "end_conflicting_action") {
                depth -= 1;
                if depth < 0 {
                    out.push(ctx.finding(
                        "conflicting-region-balance",
                        t.line,
                        format!(
                            "`end_conflicting_action` without a matching begin in `{}`",
                            f.name
                        ),
                    ));
                    depth = 0;
                }
            } else if depth > 0 {
                let escapes = t.is_ident("return")
                    || t.is_ident("break")
                    || (t.is_punct('?')
                        && !ctx.toks.get(i + 1).is_some_and(|n| n.is_ident("Sized")));
                if escapes {
                    out.push(ctx.finding(
                        "conflicting-region-balance",
                        t.line,
                        format!(
                            "`{}` escapes an open conflicting region in `{}` \
                             (the version word would stay odd forever)",
                            t.text, f.name
                        ),
                    ));
                }
            }
        }
        if depth > 0 {
            out.push(ctx.finding(
                "conflicting-region-balance",
                open_line,
                format!(
                    "`begin_conflicting_action` in `{}` has no matching \
                     `end_conflicting_action`",
                    f.name
                ),
            ));
        }
    }
    out
}

/// Functions this file treats as SWOpt (optimistic) read paths: opted in
/// with the `swopt` marker comment (see the crate docs for the exact
/// spelling — writing it out here would mark *this* function), or — in the
/// two modules the paper's Figure 1 models — auto-detected by name.
fn swopt_fns<'a>(ctx: &'a FileCtx) -> Vec<&'a FnExtent> {
    let auto_detect_file =
        ctx.path.ends_with("hashmap/src/map.rs") || ctx.path.ends_with("kyoto/src/ale_db.rs");
    ctx.fns
        .iter()
        .filter(|f| {
            let marked = ctx.comment_nearby(f.sig_line, 5, "ale-lint: swopt");
            let named =
                auto_detect_file && (f.name.contains("swopt") || f.name.contains("optimistic"));
            marked || named
        })
        .collect()
}

/// `swopt-purity`: SWOpt paths must not write shared state outside a
/// conflicting-region bracket.
fn swopt_purity(ctx: &FileCtx) -> Vec<Finding> {
    if !ctx.is_src {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in swopt_fns(ctx) {
        if ctx.in_test_code(f.body_open) {
            continue;
        }
        let mut depth = 0i64;
        for i in f.body_open..=f.body_close.min(ctx.toks.len() - 1) {
            let t = &ctx.toks[i];
            if is_call_of(ctx.toks, i, "begin_conflicting_action") {
                depth += 1;
            } else if is_call_of(ctx.toks, i, "end_conflicting_action") {
                depth = (depth - 1).max(0);
            } else if depth == 0 && t.kind == TokKind::Ident {
                let next_is_call = ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                let impure = (t.text == "store" && next_is_call)
                    || t.text.starts_with("fetch_")
                    || (t.text == "get_mut" && next_is_call)
                    || (t.text == "lock"
                        && next_is_call
                        && i > 0
                        && !ctx.toks[i - 1].is_ident("fn"));
                if impure {
                    out.push(ctx.finding(
                        "swopt-purity",
                        t.line,
                        format!(
                            "SWOpt path `{}` performs a write/lock (`{}`) outside a \
                             conflicting-region bracket",
                            f.name, t.text
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Is the token at `i` the head of a `trace::emit(..)` /
/// `ale_trace::emit(..)` call path?
fn is_trace_emit(toks: &[Tok], i: usize) -> bool {
    (toks[i].is_ident("trace") || toks[i].is_ident("ale_trace"))
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident("emit"))
        && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
}

/// `htm-body-hygiene`: code passed to the HTM engine (closure arguments of
/// `attempt(..)` / `attempt_rtm(..)`, plus functions opted in with the
/// `htm-body` marker comment) must avoid allocation, IO, and unwinding.
///
/// One call is exempt: `trace::emit(..)` / `ale_trace::emit(..)`. The
/// event rings are HTM-safe by construction — a branch plus a handful of
/// thread-local stores, no allocation, IO, or unwinding — so emits (and
/// their argument spans) inside transaction bodies do not flag.
fn htm_body_hygiene(ctx: &FileCtx) -> Vec<Finding> {
    if !ctx.is_src {
        return Vec::new();
    }
    let mut extents: Vec<(usize, usize, String)> = Vec::new();
    for i in 0..ctx.toks.len() {
        if (is_call_of(ctx.toks, i, "attempt") || is_call_of(ctx.toks, i, "attempt_rtm"))
            && !ctx.in_test_code(i)
        {
            let close = match_delim(ctx.toks, i + 1, '(', ')');
            extents.push((i + 1, close, format!("{}(..)", ctx.toks[i].text)));
        }
    }
    for f in ctx.fns {
        if ctx.comment_nearby(f.sig_line, 5, "ale-lint: htm-body") && !ctx.in_test_code(f.body_open)
        {
            extents.push((f.body_open, f.body_close, format!("fn {}", f.name)));
        }
    }

    let mut out = Vec::new();
    for (start, end, what) in extents {
        let end = end.min(ctx.toks.len() - 1);
        let mut i = start;
        while i <= end {
            if is_trace_emit(ctx.toks, i) {
                i = match_delim(ctx.toks, i + 4, '(', ')') + 1;
                continue;
            }
            let t = &ctx.toks[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let prev_dot = i > 0 && ctx.toks[i - 1].is_punct('.');
            let next_bang = ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let box_new = t.text == "Box"
                && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && ctx.toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && ctx.toks.get(i + 3).is_some_and(|n| n.is_ident("new"));
            let bad = box_new
                || (prev_dot && matches!(t.text.as_str(), "push" | "unwrap" | "expect"))
                || (next_bang && matches!(t.text.as_str(), "println" | "panic" | "vec"));
            if bad {
                out.push(ctx.finding(
                    "htm-body-hygiene",
                    t.line,
                    format!(
                        "`{}` inside HTM-executed code ({what}): allocation/IO/unwinding \
                         aborts hardware transactions or leaks on abort",
                        t.text
                    ),
                ));
            }
            i += 1;
        }
    }
    out
}

/// Receiver names that denote lock words or version/publication fields.
fn is_publication_field(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    matches!(
        lower.as_str(),
        "meta" | "locked" | "lock" | "seq" | "ver" | "version" | "vclock" | "v"
    ) || lower.contains("vclock")
        || lower.ends_with("_lock")
        || lower.ends_with("version")
}

/// `ordering-discipline`: no `Ordering::Relaxed` on stores to lock words or
/// version/publication fields. Statistics counters (`counters.rs`) are
/// exempt wholesale.
fn ordering_discipline(ctx: &FileCtx) -> Vec<Finding> {
    if !ctx.is_src || ctx.path.ends_with("sync/src/counters.rs") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 1..ctx.toks.len() {
        let t = &ctx.toks[i];
        if !(t.is_ident("store")
            && ctx.toks[i - 1].is_punct('.')
            && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('(')))
        {
            continue;
        }
        if ctx.in_test_code(i) {
            continue;
        }
        let receiver = if i >= 2 && ctx.toks[i - 2].kind == TokKind::Ident {
            ctx.toks[i - 2].text.as_str()
        } else {
            continue;
        };
        if !is_publication_field(receiver) {
            continue;
        }
        let close = match_delim(ctx.toks, i + 1, '(', ')');
        let relaxed = ctx.toks[i + 1..=close.min(ctx.toks.len() - 1)]
            .iter()
            .any(|a| a.is_ident("Relaxed"));
        if relaxed {
            out.push(ctx.finding(
                "ordering-discipline",
                t.line,
                format!(
                    "`Ordering::Relaxed` store to publication field `{receiver}`: \
                     lock words and version fields must publish with Release (or stronger)"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Whole-program rules
// ---------------------------------------------------------------------------

/// Emulated-HTM backend capacity, in estimated distinct cells, used by the
/// `htm-footprint` rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capacity {
    pub reads: u64,
    pub writes: u64,
}

impl Capacity {
    /// Mirrors `Platform::haswell()` in `crates/vtime/src/platform.rs`
    /// (best-effort limits: 4096 read cells, 448 write cells) — the default
    /// emulated backend. Override with `--capacity <r,w>`; a root
    /// cross-check test keeps these numbers in sync with `ale-vtime`.
    pub const DEFAULT: Capacity = Capacity {
        reads: 4096,
        writes: 448,
    };
}

/// Everything the whole-program rules need.
pub struct ProgramCtx<'a> {
    pub program: &'a Program,
    /// Transitive effects per node, from [`crate::effects::propagate`].
    pub effects: &'a [Effects],
    /// Files under a crate's `src/` — program rules only root there
    /// (reaching *into* test helpers still counts).
    pub src_files: &'a HashSet<String>,
    pub capacity: Capacity,
}

/// Run the four whole-program rules. The returned findings have empty
/// `line_content` — the caller fills it from its file models (the rules
/// here only see the parsed program).
pub fn check_program(ctx: &ProgramCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(swopt_purity_transitive(ctx));
    out.extend(htm_body_hygiene_transitive(ctx));
    out.extend(lock_order_cycle(ctx));
    out.extend(htm_footprint(ctx));
    out
}

fn program_finding(rule: &'static str, file: &str, line0: usize, message: String) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line: line0 + 1,
        message,
        line_content: String::new(),
    }
}

/// Breadth-first reachability over call edges from `root`. With
/// `naked_calls_only`, calls made inside a conflicting-region bracket are
/// not followed (the SWOpt exemption). Returns the visit order (root
/// excluded) and a parent map for witness-chain reconstruction.
fn reach(
    p: &Program,
    root: NodeId,
    naked_calls_only: bool,
) -> (Vec<NodeId>, HashMap<NodeId, NodeId>) {
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut order = Vec::new();
    let mut seen: HashSet<NodeId> = HashSet::from([root]);
    let mut q = VecDeque::from([root]);
    while let Some(id) = q.pop_front() {
        for e in &p.edges[id] {
            if naked_calls_only && p.nodes[id].ops[e.op_idx].cr_depth > 0 {
                continue;
            }
            if seen.insert(e.callee) {
                parent.insert(e.callee, id);
                order.push(e.callee);
                q.push_back(e.callee);
            }
        }
    }
    (order, parent)
}

/// `root → a → b` witness chain for a reached node.
fn chain(p: &Program, parent: &HashMap<NodeId, NodeId>, root: NodeId, node: NodeId) -> String {
    let mut names = vec![p.nodes[node].qual.clone()];
    let mut cur = node;
    while cur != root {
        cur = parent[&cur];
        names.push(p.nodes[cur].qual.clone());
    }
    names.reverse();
    names.join(" → ")
}

/// `swopt-purity-transitive`: a SWOpt root may not reach a write, lock
/// acquisition, or allocation through any call chain made outside a
/// conflicting-region bracket. Direct (chain-length-0) violations are the
/// line-local `swopt-purity` rule's job; this rule checks callees.
fn swopt_purity_transitive(ctx: &ProgramCtx) -> Vec<Finding> {
    let p = ctx.program;
    let mut out = Vec::new();
    for (root, n) in p.nodes.iter().enumerate() {
        if !n.swopt || !ctx.src_files.contains(&n.file) {
            continue;
        }
        let (order, parent) = reach(p, root, true);
        for id in order {
            let m = &p.nodes[id];
            let bad = m.ops.iter().find_map(|op| {
                if op.cr_depth > 0 {
                    return None;
                }
                match &op.kind {
                    OpKind::Write {
                        key,
                        purity_relevant: true,
                    } => Some((format!("write to `{key}`"), op.line)),
                    OpKind::Acquire { lock } => {
                        Some((format!("lock acquisition on `{lock}`"), op.line))
                    }
                    OpKind::Flag { bits, what } if bits & flag::ALLOC != 0 => {
                        Some((format!("allocation (`{what}`)"), op.line))
                    }
                    _ => None,
                }
            });
            if let Some((what, line)) = bad {
                out.push(program_finding(
                    "swopt-purity-transitive",
                    &n.file,
                    n.line,
                    format!(
                        "SWOpt path `{}` reaches a {what} at {}:{} via {}",
                        n.qual,
                        m.file,
                        line + 1,
                        chain(p, &parent, root, id)
                    ),
                ));
            }
        }
    }
    out
}

/// Roots for the transitive HTM rules: `attempt(..)` extents plus
/// `htm-body`-marked functions, in src files.
fn htm_roots(ctx: &ProgramCtx) -> Vec<NodeId> {
    ctx.program
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.htm_body && ctx.src_files.contains(&n.file))
        .map(|(id, _)| id)
        .collect()
}

/// `htm-body-hygiene-transitive`: a transaction body may not reach an
/// allocation, IO, or thread-parking effect through any call chain. Direct
/// body tokens are the line-local `htm-body-hygiene` rule's job.
fn htm_body_hygiene_transitive(ctx: &ProgramCtx) -> Vec<Finding> {
    let p = ctx.program;
    let mut out = Vec::new();
    for root in htm_roots(ctx) {
        let n = &p.nodes[root];
        let (order, parent) = reach(p, root, false);
        for id in order {
            let m = &p.nodes[id];
            let bad = m.ops.iter().find_map(|op| match &op.kind {
                OpKind::Flag { bits, what }
                    if bits & (flag::ALLOC | flag::IO | flag::PARK) != 0 =>
                {
                    let kind = if bits & flag::ALLOC != 0 {
                        "allocation"
                    } else if bits & flag::IO != 0 {
                        "IO"
                    } else {
                        "thread-parking"
                    };
                    Some((format!("{kind} (`{what}`)"), op.line))
                }
                _ => None,
            });
            if let Some((what, line)) = bad {
                out.push(program_finding(
                    "htm-body-hygiene-transitive",
                    &n.file,
                    n.line,
                    format!(
                        "HTM-executed code `{}` reaches {what} at {}:{} via {}: \
                         aborts hardware transactions or leaks on abort",
                        n.qual,
                        m.file,
                        line + 1,
                        chain(p, &parent, root, id)
                    ),
                ));
            }
        }
    }
    out
}

/// Where a lock-order edge was observed.
struct EdgeSite {
    file: String,
    line: usize,
    holder: String,
    /// Set when the inner acquisition happens transitively inside a callee.
    via: Option<String>,
}

/// `lock-order-cycle`: build the static "lock A held while B is acquired"
/// graph (direct acquisitions plus transitive lock effects at call sites)
/// and report every cycle with its exact acquisition path. Guards are
/// conservatively assumed held to the end of the function unless an
/// explicit release appears; self-edges (`A` re-acquired under `A`) are
/// skipped — distinct instances sharing a receiver name would drown the
/// signal (documented imprecision).
fn lock_order_cycle(ctx: &ProgramCtx) -> Vec<Finding> {
    let p = ctx.program;
    let mut graph: BTreeMap<String, BTreeMap<String, EdgeSite>> = BTreeMap::new();
    for (id, n) in p.nodes.iter().enumerate() {
        if !ctx.src_files.contains(&n.file) {
            continue;
        }
        let mut held: Vec<String> = Vec::new();
        for (op_idx, op) in n.ops.iter().enumerate() {
            match &op.kind {
                OpKind::Acquire { lock } => {
                    for h in &held {
                        if h != lock {
                            graph
                                .entry(h.clone())
                                .or_default()
                                .entry(lock.clone())
                                .or_insert(EdgeSite {
                                    file: n.file.clone(),
                                    line: op.line,
                                    holder: n.qual.clone(),
                                    via: None,
                                });
                        }
                    }
                    if !held.contains(lock) {
                        held.push(lock.clone());
                    }
                }
                OpKind::Release { lock } => held.retain(|h| h != lock),
                OpKind::Call { .. } if !held.is_empty() => {
                    for e in p.edges[id].iter().filter(|e| e.op_idx == op_idx) {
                        for l in &ctx.effects[e.callee].locks {
                            for h in &held {
                                if h != l {
                                    graph
                                        .entry(h.clone())
                                        .or_default()
                                        .entry(l.clone())
                                        .or_insert(EdgeSite {
                                            file: n.file.clone(),
                                            line: op.line,
                                            holder: n.qual.clone(),
                                            via: Some(p.nodes[e.callee].qual.clone()),
                                        });
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let mut out = Vec::new();
    for cycle in find_cycles(&graph) {
        let k = cycle.len();
        let path: Vec<String> = cycle
            .iter()
            .chain(cycle.first())
            .map(|l| format!("`{l}`"))
            .collect();
        let legs: Vec<String> = (0..k)
            .map(|i| {
                let site = &graph[&cycle[i]][&cycle[(i + 1) % k]];
                let via = site
                    .via
                    .as_ref()
                    .map_or_else(String::new, |v| format!(", via `{v}`"));
                format!(
                    "`{}` → `{}` at {}:{} (in `{}`{via})",
                    cycle[i],
                    cycle[(i + 1) % k],
                    site.file,
                    site.line + 1,
                    site.holder
                )
            })
            .collect();
        let first = &graph[&cycle[0]][&cycle[1 % k]];
        out.push(program_finding(
            "lock-order-cycle",
            &first.file,
            first.line,
            format!(
                "potential deadlock: lock-order cycle {}; {}",
                path.join(" → "),
                legs.join("; ")
            ),
        ));
    }
    out
}

/// Elementary cycles of the lock graph, canonicalised (lexicographically
/// smallest lock first) and deduplicated. DFS with gray-path extraction:
/// finds at least one cycle through every cyclic region, deterministically.
fn find_cycles(graph: &BTreeMap<String, BTreeMap<String, EdgeSite>>) -> Vec<Vec<String>> {
    fn visit<'a>(
        u: &'a str,
        graph: &'a BTreeMap<String, BTreeMap<String, EdgeSite>>,
        color: &mut HashMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
        cycles: &mut std::collections::BTreeSet<Vec<String>>,
    ) {
        color.insert(u, 1);
        stack.push(u);
        if let Some(succ) = graph.get(u) {
            for v in succ.keys() {
                match color.get(v.as_str()).copied().unwrap_or(0) {
                    0 => visit(v, graph, color, stack, cycles),
                    1 => {
                        let pos = stack.iter().position(|&s| s == v.as_str()).unwrap();
                        let cyc = &stack[pos..];
                        // Rotate so the smallest lock name leads.
                        let min = cyc
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, s)| *s)
                            .map_or(0, |(i, _)| i);
                        cycles.insert(
                            (0..cyc.len())
                                .map(|i| cyc[(min + i) % cyc.len()].to_string())
                                .collect(),
                        );
                    }
                    _ => {}
                }
            }
        }
        stack.pop();
        color.insert(u, 2);
    }

    let mut color: HashMap<&str, u8> = HashMap::new();
    let mut stack = Vec::new();
    let mut cycles = std::collections::BTreeSet::new();
    for u in graph.keys() {
        if color.get(u.as_str()).copied().unwrap_or(0) == 0 {
            visit(u, graph, &mut color, &mut stack, &mut cycles);
        }
    }
    cycles.into_iter().collect()
}

/// `htm-footprint`: a transaction body's transitive footprint estimate must
/// fit the backend's best-effort capacity; oversized transactions can never
/// commit on hardware and burn their retry budget before falling back.
fn htm_footprint(ctx: &ProgramCtx) -> Vec<Finding> {
    let p = ctx.program;
    let mut out = Vec::new();
    for root in htm_roots(ctx) {
        let n = &p.nodes[root];
        let e = &ctx.effects[root];
        for (cells, cap, kind) in [
            (e.read_cells(), ctx.capacity.reads, "read"),
            (e.write_cells(), ctx.capacity.writes, "write"),
        ] {
            if cells > cap {
                out.push(program_finding(
                    "htm-footprint",
                    &n.file,
                    n.line,
                    format!(
                        "HTM-executed code `{}` has an estimated transitive {kind} footprint \
                         of ~{cells} distinct cells, exceeding the backend best-effort {kind} \
                         capacity of {cap} (override with --capacity <r,w>)",
                        n.qual
                    ),
                ));
            }
        }
    }
    out
}
