//! The five elision-safety rules.
//!
//! | rule id | invariant |
//! |---------|-----------|
//! | `safety-comment` | every `unsafe` is annotated with `// SAFETY:` (or a `# Safety` doc section) within the five preceding lines |
//! | `conflicting-region-balance` | `begin_conflicting_action` / `end_conflicting_action` pair up within one function, with no `return` / `?` / `break` escaping the open region |
//! | `swopt-purity` | SWOpt (optimistic) read paths perform no writes — `store(` / `fetch_*` / `get_mut` / `lock()` — outside a conflicting-region bracket |
//! | `htm-body-hygiene` | code passed to the HTM engine avoids `Box::new`, `Vec::push`, `println!`, `panic!`, `.unwrap()`, `.expect()` (allocation / IO / unwinding abort transactions or leak); `trace::emit(..)` spans are exempt (HTM-safe by construction) |
//! | `ordering-discipline` | `Ordering::Relaxed` is forbidden on stores to lock words and version/publication fields |

use crate::lexer::{match_delim, FileModel, FnExtent, Tok, TokKind};
use crate::Finding;

/// Everything a rule needs to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    pub model: &'a FileModel,
    pub toks: &'a [Tok],
    pub fns: &'a [FnExtent],
    /// Token-index ranges under `#[cfg(test)]`.
    pub test_ranges: &'a [(usize, usize)],
    /// True for files under a crate's `src/` (as opposed to `tests/`).
    pub is_src: bool,
}

impl FileCtx<'_> {
    fn in_test_code(&self, tok_idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= tok_idx && tok_idx <= b)
    }

    fn finding(&self, rule: &'static str, line0: usize, message: String) -> Finding {
        Finding {
            rule,
            file: self.path.to_string(),
            line: line0 + 1,
            message,
            line_content: self
                .model
                .raw
                .get(line0)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        }
    }

    /// Does any comment in `[line0 - back, line0]` contain `needle`?
    fn comment_nearby(&self, line0: usize, back: usize, needle: &str) -> bool {
        let lo = line0.saturating_sub(back);
        self.model.comments[lo..=line0.min(self.model.comments.len() - 1)]
            .iter()
            .any(|c| c.contains(needle))
    }
}

/// All rule IDs, in reporting order.
pub const RULE_IDS: [&str; 5] = [
    "safety-comment",
    "conflicting-region-balance",
    "swopt-purity",
    "htm-body-hygiene",
    "ordering-discipline",
];

pub fn check_all(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(safety_comment(ctx));
    out.extend(region_balance(ctx));
    out.extend(swopt_purity(ctx));
    out.extend(htm_body_hygiene(ctx));
    out.extend(ordering_discipline(ctx));
    out
}

/// `safety-comment`: each `unsafe` keyword must have a `SAFETY:` comment or
/// a `# Safety` doc section within the five preceding lines (or inline).
fn safety_comment(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for t in ctx.toks {
        if t.is_ident("unsafe") {
            let l = t.line;
            if !ctx.comment_nearby(l, 5, "SAFETY:") && !ctx.comment_nearby(l, 5, "# Safety") {
                out.push(
                    ctx.finding(
                        "safety-comment",
                        l,
                        "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) \
                     within the five preceding lines"
                            .to_string(),
                    ),
                );
            }
        }
    }
    out
}

/// Is the token at `i` a *call* of `name` (not its `fn` definition)?
fn is_call_of(toks: &[Tok], i: usize, name: &str) -> bool {
    if !toks[i].is_ident(name) {
        return false;
    }
    if i > 0 && toks[i - 1].is_ident("fn") {
        return false;
    }
    toks.get(i + 1).is_some_and(|n| n.is_punct('('))
}

/// `conflicting-region-balance`: per function, `begin_conflicting_action`
/// and `end_conflicting_action` must pair up, and no `return` / `?` /
/// `break` may occur while a region is open.
fn region_balance(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in ctx.fns {
        let mut depth = 0i64;
        let mut open_line = 0usize;
        for i in f.body_open..=f.body_close.min(ctx.toks.len() - 1) {
            let t = &ctx.toks[i];
            if is_call_of(ctx.toks, i, "begin_conflicting_action") {
                if depth == 0 {
                    open_line = t.line;
                }
                depth += 1;
            } else if is_call_of(ctx.toks, i, "end_conflicting_action") {
                depth -= 1;
                if depth < 0 {
                    out.push(ctx.finding(
                        "conflicting-region-balance",
                        t.line,
                        format!(
                            "`end_conflicting_action` without a matching begin in `{}`",
                            f.name
                        ),
                    ));
                    depth = 0;
                }
            } else if depth > 0 {
                let escapes = t.is_ident("return")
                    || t.is_ident("break")
                    || (t.is_punct('?')
                        && !ctx.toks.get(i + 1).is_some_and(|n| n.is_ident("Sized")));
                if escapes {
                    out.push(ctx.finding(
                        "conflicting-region-balance",
                        t.line,
                        format!(
                            "`{}` escapes an open conflicting region in `{}` \
                             (the version word would stay odd forever)",
                            t.text, f.name
                        ),
                    ));
                }
            }
        }
        if depth > 0 {
            out.push(ctx.finding(
                "conflicting-region-balance",
                open_line,
                format!(
                    "`begin_conflicting_action` in `{}` has no matching \
                     `end_conflicting_action`",
                    f.name
                ),
            ));
        }
    }
    out
}

/// Functions this file treats as SWOpt (optimistic) read paths: opted in
/// with the `swopt` marker comment (see the crate docs for the exact
/// spelling — writing it out here would mark *this* function), or — in the
/// two modules the paper's Figure 1 models — auto-detected by name.
fn swopt_fns<'a>(ctx: &'a FileCtx) -> Vec<&'a FnExtent> {
    let auto_detect_file =
        ctx.path.ends_with("hashmap/src/map.rs") || ctx.path.ends_with("kyoto/src/ale_db.rs");
    ctx.fns
        .iter()
        .filter(|f| {
            let marked = ctx.comment_nearby(f.sig_line, 5, "ale-lint: swopt");
            let named =
                auto_detect_file && (f.name.contains("swopt") || f.name.contains("optimistic"));
            marked || named
        })
        .collect()
}

/// `swopt-purity`: SWOpt paths must not write shared state outside a
/// conflicting-region bracket.
fn swopt_purity(ctx: &FileCtx) -> Vec<Finding> {
    if !ctx.is_src {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in swopt_fns(ctx) {
        if ctx.in_test_code(f.body_open) {
            continue;
        }
        let mut depth = 0i64;
        for i in f.body_open..=f.body_close.min(ctx.toks.len() - 1) {
            let t = &ctx.toks[i];
            if is_call_of(ctx.toks, i, "begin_conflicting_action") {
                depth += 1;
            } else if is_call_of(ctx.toks, i, "end_conflicting_action") {
                depth = (depth - 1).max(0);
            } else if depth == 0 && t.kind == TokKind::Ident {
                let next_is_call = ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                let impure = (t.text == "store" && next_is_call)
                    || t.text.starts_with("fetch_")
                    || (t.text == "get_mut" && next_is_call)
                    || (t.text == "lock"
                        && next_is_call
                        && i > 0
                        && !ctx.toks[i - 1].is_ident("fn"));
                if impure {
                    out.push(ctx.finding(
                        "swopt-purity",
                        t.line,
                        format!(
                            "SWOpt path `{}` performs a write/lock (`{}`) outside a \
                             conflicting-region bracket",
                            f.name, t.text
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Is the token at `i` the head of a `trace::emit(..)` /
/// `ale_trace::emit(..)` call path?
fn is_trace_emit(toks: &[Tok], i: usize) -> bool {
    (toks[i].is_ident("trace") || toks[i].is_ident("ale_trace"))
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident("emit"))
        && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
}

/// `htm-body-hygiene`: code passed to the HTM engine (closure arguments of
/// `attempt(..)` / `attempt_rtm(..)`, plus functions opted in with the
/// `htm-body` marker comment) must avoid allocation, IO, and unwinding.
///
/// One call is exempt: `trace::emit(..)` / `ale_trace::emit(..)`. The
/// event rings are HTM-safe by construction — a branch plus a handful of
/// thread-local stores, no allocation, IO, or unwinding — so emits (and
/// their argument spans) inside transaction bodies do not flag.
fn htm_body_hygiene(ctx: &FileCtx) -> Vec<Finding> {
    if !ctx.is_src {
        return Vec::new();
    }
    let mut extents: Vec<(usize, usize, String)> = Vec::new();
    for i in 0..ctx.toks.len() {
        if (is_call_of(ctx.toks, i, "attempt") || is_call_of(ctx.toks, i, "attempt_rtm"))
            && !ctx.in_test_code(i)
        {
            let close = match_delim(ctx.toks, i + 1, '(', ')');
            extents.push((i + 1, close, format!("{}(..)", ctx.toks[i].text)));
        }
    }
    for f in ctx.fns {
        if ctx.comment_nearby(f.sig_line, 5, "ale-lint: htm-body") && !ctx.in_test_code(f.body_open)
        {
            extents.push((f.body_open, f.body_close, format!("fn {}", f.name)));
        }
    }

    let mut out = Vec::new();
    for (start, end, what) in extents {
        let end = end.min(ctx.toks.len() - 1);
        let mut i = start;
        while i <= end {
            if is_trace_emit(ctx.toks, i) {
                i = match_delim(ctx.toks, i + 4, '(', ')') + 1;
                continue;
            }
            let t = &ctx.toks[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let prev_dot = i > 0 && ctx.toks[i - 1].is_punct('.');
            let next_bang = ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let box_new = t.text == "Box"
                && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && ctx.toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && ctx.toks.get(i + 3).is_some_and(|n| n.is_ident("new"));
            let bad = box_new
                || (prev_dot && matches!(t.text.as_str(), "push" | "unwrap" | "expect"))
                || (next_bang && matches!(t.text.as_str(), "println" | "panic" | "vec"));
            if bad {
                out.push(ctx.finding(
                    "htm-body-hygiene",
                    t.line,
                    format!(
                        "`{}` inside HTM-executed code ({what}): allocation/IO/unwinding \
                         aborts hardware transactions or leaks on abort",
                        t.text
                    ),
                ));
            }
            i += 1;
        }
    }
    out
}

/// Receiver names that denote lock words or version/publication fields.
fn is_publication_field(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    matches!(
        lower.as_str(),
        "meta" | "locked" | "lock" | "seq" | "ver" | "version" | "vclock" | "v"
    ) || lower.contains("vclock")
        || lower.ends_with("_lock")
        || lower.ends_with("version")
}

/// `ordering-discipline`: no `Ordering::Relaxed` on stores to lock words or
/// version/publication fields. Statistics counters (`counters.rs`) are
/// exempt wholesale.
fn ordering_discipline(ctx: &FileCtx) -> Vec<Finding> {
    if !ctx.is_src || ctx.path.ends_with("sync/src/counters.rs") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 1..ctx.toks.len() {
        let t = &ctx.toks[i];
        if !(t.is_ident("store")
            && ctx.toks[i - 1].is_punct('.')
            && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('(')))
        {
            continue;
        }
        if ctx.in_test_code(i) {
            continue;
        }
        let receiver = if i >= 2 && ctx.toks[i - 2].kind == TokKind::Ident {
            ctx.toks[i - 2].text.as_str()
        } else {
            continue;
        };
        if !is_publication_field(receiver) {
            continue;
        }
        let close = match_delim(ctx.toks, i + 1, '(', ')');
        let relaxed = ctx.toks[i + 1..=close.min(ctx.toks.len() - 1)]
            .iter()
            .any(|a| a.is_ident("Relaxed"));
        if relaxed {
            out.push(ctx.finding(
                "ordering-discipline",
                t.line,
                format!(
                    "`Ordering::Relaxed` store to publication field `{receiver}`: \
                     lock words and version fields must publish with Release (or stronger)"
                ),
            ));
        }
    }
    out
}
