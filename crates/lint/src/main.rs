//! CLI for `ale-lint`.
//!
//! ```text
//! ale-lint [--deny] [--json] [--baseline <path>] [--effects]
//!          [--callgraph-dot <path>] [--capacity <r,w>] [PATH ...]
//! ```
//!
//! With no `PATH` arguments the default workspace surface is linted
//! (`crates/*/src` and `tests/`) and the checked-in `lint-baseline.txt`
//! is applied. Explicit paths (files or directories) are linted as-is —
//! used by the fixture tests and for spot checks.
//!
//! * `--effects` prints the per-function transitive effect sets instead of
//!   findings (one line per call-graph node, sorted by file and line).
//! * `--callgraph-dot <path>` writes the resolved call graph as Graphviz.
//! * `--capacity <r,w>` overrides the `htm-footprint` backend limits
//!   (estimated distinct read/write cells; default mirrors the haswell
//!   profile, 4096,448).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: ale-lint [--deny] [--json] [--baseline <path>] [--effects] \
         [--callgraph-dot <path>] [--capacity <r,w>] [PATH ...]"
    );
    std::process::exit(2);
}

fn parse_capacity(s: &str) -> Option<ale_lint::Capacity> {
    let (r, w) = s.split_once(',')?;
    Some(ale_lint::Capacity {
        reads: r.trim().parse().ok()?,
        writes: w.trim().parse().ok()?,
    })
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut effects = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut dot_path: Option<PathBuf> = None;
    let mut capacity = ale_lint::Capacity::DEFAULT;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--effects" => effects = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--callgraph-dot" => match args.next() {
                Some(p) => dot_path = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--capacity" => match args.next().as_deref().and_then(parse_capacity) {
                Some(c) => capacity = c,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => usage(),
            path => paths.push(PathBuf::from(path)),
        }
    }

    let root = ale_lint::default_workspace_root();

    let files: Vec<PathBuf> = if paths.is_empty() {
        ale_lint::workspace_files(&root)
    } else {
        let mut files = Vec::new();
        for p in &paths {
            if p.is_dir() {
                let mut sub = Vec::new();
                collect(p, &mut sub);
                files.extend(sub);
            } else {
                files.push(p.clone());
            }
        }
        files
    };

    let analysis = match ale_lint::analyze_files(&root, &files, !paths.is_empty()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ale-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(dot) = &dot_path {
        if let Err(e) = std::fs::write(dot, analysis.callgraph_dot()) {
            eprintln!("ale-lint: cannot write {}: {e}", dot.display());
            return ExitCode::from(2);
        }
    }

    if effects {
        println!("{}", analysis.effects_dump());
        return ExitCode::SUCCESS;
    }

    let findings = analysis.findings(capacity);

    // The baseline applies to the default workspace walk automatically and
    // to explicit paths only when requested via --baseline.
    let baseline = match (&baseline_path, paths.is_empty()) {
        (Some(p), _) => ale_lint::load_baseline(p),
        (None, true) => ale_lint::load_baseline(&root.join("lint-baseline.txt")),
        (None, false) => Default::default(),
    };
    let findings = ale_lint::apply_baseline(findings, &baseline);

    if json {
        println!("{}", ale_lint::to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "ale-lint: {} finding(s) in {} file(s)",
            findings.len(),
            files.len()
        );
    }

    if deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
