//! CLI for `ale-lint`.
//!
//! ```text
//! ale-lint [--deny] [--json] [--baseline <path>] [PATH ...]
//! ```
//!
//! With no `PATH` arguments the default workspace surface is linted
//! (`crates/*/src` and `tests/`) and the checked-in `lint-baseline.txt`
//! is applied. Explicit paths (files or directories) are linted as-is —
//! used by the fixture tests and for spot checks.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: ale-lint [--deny] [--json] [--baseline <path>] [PATH ...]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => usage(),
            path => paths.push(PathBuf::from(path)),
        }
    }

    let root = ale_lint::default_workspace_root();

    let files: Vec<PathBuf> = if paths.is_empty() {
        ale_lint::workspace_files(&root)
    } else {
        let mut files = Vec::new();
        for p in &paths {
            if p.is_dir() {
                let mut sub = Vec::new();
                collect(p, &mut sub);
                files.extend(sub);
            } else {
                files.push(p.clone());
            }
        }
        files
    };

    let findings = match ale_lint::lint_files(&root, &files, !paths.is_empty()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ale-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };

    // The baseline applies to the default workspace walk automatically and
    // to explicit paths only when requested via --baseline.
    let baseline = match (&baseline_path, paths.is_empty()) {
        (Some(p), _) => ale_lint::load_baseline(p),
        (None, true) => ale_lint::load_baseline(&root.join("lint-baseline.txt")),
        (None, false) => Default::default(),
    };
    let findings = ale_lint::apply_baseline(findings, &baseline);

    if json {
        println!("{}", ale_lint::to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "ale-lint: {} finding(s) in {} file(s)",
            findings.len(),
            files.len()
        );
    }

    if deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
