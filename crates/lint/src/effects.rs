//! Per-function effect sets and their transitive propagation.
//!
//! An [`Effects`] value is a point in a finite join-semilattice:
//!
//! * `flags` — a bitset of intrinsic effects ([`crate::parser::flag`]);
//! * `locks` — the set of lock (receiver) names acquired;
//! * `reads` / `writes` — the estimated shared-memory footprint, as a map
//!   from access key (receiver/field name) to weight (1, or
//!   [`crate::parser::LOOP_WEIGHT`] for accesses inside loop bodies).
//!   The estimated distinct-cell count is the sum of weights.
//!
//! Join is bitwise-or / set-union / key-wise max — idempotent, commutative,
//! associative, and monotone. [`propagate`] computes the least fixed point
//! of `eff(n) = local(n) ⊔ ⨆ {eff(c) | n calls c}` with a worklist; the
//! lattice is finite (keys and flags are drawn from the program text), so
//! termination is guaranteed, recursion and cycles included.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Program;
use crate::parser::{Op, OpKind};

/// A function's effect set (local or transitive).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Intrinsic-effect bits; see [`crate::parser::flag`].
    pub flags: u8,
    /// Lock names acquired.
    pub locks: BTreeSet<String>,
    /// Estimated read footprint: access key → weight.
    pub reads: BTreeMap<String, u32>,
    /// Estimated write footprint: access key → weight.
    pub writes: BTreeMap<String, u32>,
}

impl Effects {
    /// Join `other` into `self`; true if `self` changed.
    pub fn join(&mut self, other: &Effects) -> bool {
        let mut changed = false;
        if self.flags | other.flags != self.flags {
            self.flags |= other.flags;
            changed = true;
        }
        for l in &other.locks {
            changed |= self.locks.insert(l.clone());
        }
        for (map, theirs) in [
            (&mut self.reads, &other.reads),
            (&mut self.writes, &other.writes),
        ] {
            for (k, &w) in theirs {
                let e = map.entry(k.clone()).or_insert(0);
                if w > *e {
                    *e = w;
                    changed = true;
                }
            }
        }
        changed
    }

    /// Is `other` ≤ `self` in the lattice order? (Used by the proptest
    /// monotonicity suite.)
    #[must_use]
    pub fn subsumes(&self, other: &Effects) -> bool {
        self.flags | other.flags == self.flags
            && other.locks.is_subset(&self.locks)
            && other
                .reads
                .iter()
                .all(|(k, &w)| self.reads.get(k).is_some_and(|&m| m >= w))
            && other
                .writes
                .iter()
                .all(|(k, &w)| self.writes.get(k).is_some_and(|&m| m >= w))
    }

    /// Estimated distinct cells read.
    #[must_use]
    pub fn read_cells(&self) -> u64 {
        self.reads.values().map(|&w| u64::from(w)).sum()
    }

    /// Estimated distinct cells written.
    #[must_use]
    pub fn write_cells(&self) -> u64 {
        self.writes.values().map(|&w| u64::from(w)).sum()
    }
}

/// The effects an op list performs directly (no call propagation).
#[must_use]
pub fn local_effects(ops: &[Op]) -> Effects {
    let mut e = Effects::default();
    for op in ops {
        match &op.kind {
            OpKind::Flag { bits, .. } => e.flags |= bits,
            OpKind::Acquire { lock } => {
                e.locks.insert(lock.clone());
            }
            OpKind::Read { key } => {
                let w = e.reads.entry(key.clone()).or_insert(0);
                *w = (*w).max(op.weight);
            }
            OpKind::Write { key, .. } => {
                let w = e.writes.entry(key.clone()).or_insert(0);
                *w = (*w).max(op.weight);
            }
            OpKind::Call { .. } | OpKind::Release { .. } => {}
        }
    }
    e
}

/// Transitive effects for every node: the least fixed point of local
/// effects joined over all resolved callees.
#[must_use]
pub fn propagate(program: &Program) -> Vec<Effects> {
    let n = program.nodes.len();
    let mut eff: Vec<Effects> = program
        .nodes
        .iter()
        .map(|node| local_effects(&node.ops))
        .collect();
    let callers = program.callers();
    // Worklist seeded with every node; when a node's effects grow, its
    // callers are revisited. Each join is monotone over a finite lattice,
    // so the list drains.
    let mut queue: Vec<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(id) = queue.pop() {
        queued[id] = false;
        // eff[id] ⊔= eff[callee] for each callee.
        let mut grew = false;
        for i in 0..program.edges[id].len() {
            let callee = program.edges[id][i].callee;
            if callee == id {
                continue;
            }
            let (a, b) = split_two(&mut eff, id, callee);
            grew |= a.join(b);
        }
        if grew {
            for &caller in &callers[id] {
                if !queued[caller] {
                    queued[caller] = true;
                    queue.push(caller);
                }
            }
            // Re-queue self too: growing may enable further growth through
            // multi-hop cycles involving this node.
            if !queued[id] {
                queued[id] = true;
                queue.push(id);
            }
        }
    }
    eff
}

/// Two distinct mutable entries of a slice.
fn split_two(v: &mut [Effects], a: usize, b: usize) -> (&mut Effects, &Effects) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

/// Render one node's effect set as a stable, human-readable line body
/// (used by `--effects`).
#[must_use]
pub fn describe(e: &Effects) -> String {
    let mut parts: Vec<String> = crate::parser::flag::names(e.flags)
        .into_iter()
        .map(String::from)
        .collect();
    for l in &e.locks {
        parts.push(format!("acquires-lock({l})"));
    }
    parts.push(format!("reads~{}", e.read_cells()));
    parts.push(format!("writes~{}", e.write_cells()));
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Program;
    use crate::lexer;
    use crate::parser;

    fn program(src: &str) -> Program {
        let model = lexer::analyze(src);
        let toks = lexer::tokens(&model);
        let fns = lexer::functions(&toks);
        let ranges = lexer::cfg_test_ranges(&toks);
        Program::build(&[(
            "a.rs".to_string(),
            parser::parse_file(&model, &toks, &fns, &ranges, false),
        )])
    }

    fn eff_of<'a>(p: &Program, eff: &'a [Effects], name: &str) -> &'a Effects {
        &eff[p.nodes.iter().position(|n| n.name == name).unwrap()]
    }

    #[test]
    fn effects_propagate_through_chains() {
        let p = program(
            "
fn top() { mid(); }
fn mid() { bottom(); }
fn bottom(m: &M) { m.lock(); vec![1, 2]; }
",
        );
        let eff = propagate(&p);
        let top = eff_of(&p, &eff, "top");
        assert!(top.locks.contains("m"));
        assert_ne!(top.flags & crate::parser::flag::ALLOC, 0);
    }

    #[test]
    fn recursion_terminates_and_is_sound() {
        let p = program(
            "
fn ping(c: &C) { c.cell.set(1); pong(); }
fn pong() { ping(); }
",
        );
        let eff = propagate(&p);
        assert!(eff_of(&p, &eff, "pong").writes.contains_key("cell"));
        assert!(eff_of(&p, &eff, "ping").writes.contains_key("cell"));
    }

    #[test]
    fn footprint_weights_take_key_wise_max() {
        let p = program(
            "
fn looped(s: &S) { while s.go() { s.cell.get(); } }
fn single(s: &S) { s.cell.get(); caller_of_looped(); }
fn caller_of_looped() { looped(); }
",
        );
        let eff = propagate(&p);
        let single = eff_of(&p, &eff, "single");
        assert_eq!(
            single.reads["cell"],
            crate::parser::LOOP_WEIGHT,
            "max weight wins over the direct weight-1 read"
        );
        assert_eq!(single.read_cells(), u64::from(crate::parser::LOOP_WEIGHT));
    }

    #[test]
    fn join_is_monotone_and_subsuming() {
        let p = program(
            "
fn a(m: &M) { m.acquire(); }
fn b(x: &X) { x.f.store(1); }
fn ab() { a(); b(); }
",
        );
        let eff = propagate(&p);
        let ab = eff_of(&p, &eff, "ab");
        assert!(ab.subsumes(eff_of(&p, &eff, "a")));
        assert!(ab.subsumes(eff_of(&p, &eff, "b")));
        assert!(!eff_of(&p, &eff, "a").subsumes(ab));
    }
}
