//! The workspace call graph.
//!
//! Nodes are parsed function items plus `attempt(..)` transaction extents
//! (pseudo-functions rooting the HTM rules); edges are resolved call
//! operations. Resolution is name-based (see [`crate::parser::CallQual`]):
//!
//! * `Type::name(..)` resolves only against `impl Type` methods;
//! * `name(..)` / `module::name(..)` resolve same-file first, then by
//!   bare name workspace-wide;
//! * `.name(..)` resolves like a bare call but was already filtered at
//!   parse time against the std-collision deny list.
//!
//! Unresolvable calls (std, vendored crates) simply have no edge — their
//! known effects were recorded as intrinsic ops at the call site. When a
//! name is ambiguous the call links to *every* candidate: effects are
//! joined over all of them, which errs conservative.

use std::collections::HashMap;

use crate::parser::{CallQual, Op, OpKind, ParsedFile};

pub type NodeId = usize;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    Fn,
    HtmExtent,
}

/// One call-graph node: a function or transaction extent.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Bare name (`Fn`) or display label (`HtmExtent`).
    pub name: String,
    /// Qualified display name (`Type::name` where known).
    pub qual: String,
    /// 0-based line of the signature / `attempt` token.
    pub line: usize,
    pub swopt: bool,
    pub htm_body: bool,
    pub ops: Vec<Op>,
}

/// A resolved call edge: `ops[op_idx]` in the caller targets `callee`.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    pub op_idx: usize,
    pub callee: NodeId,
}

/// The assembled whole-program view.
#[derive(Debug, Default)]
pub struct Program {
    pub nodes: Vec<Node>,
    /// Outgoing resolved edges per node, in op order.
    pub edges: Vec<Vec<CallEdge>>,
}

impl Program {
    /// Assemble a program from per-file parses. Test-gated functions are
    /// excluded wholesale: they neither define nor receive edges.
    #[must_use]
    pub fn build(files: &[(String, ParsedFile)]) -> Program {
        let mut p = Program::default();
        // (file index kept alongside each node for same-file resolution)
        let mut file_of: Vec<usize> = Vec::new();
        for (fi, (path, parsed)) in files.iter().enumerate() {
            for f in &parsed.fns {
                if f.is_test {
                    continue;
                }
                p.nodes.push(Node {
                    kind: NodeKind::Fn,
                    file: path.clone(),
                    name: f.name.clone(),
                    qual: f.qual.clone(),
                    line: f.sig_line,
                    swopt: f.swopt,
                    htm_body: f.htm_body,
                    ops: f.ops.clone(),
                });
                file_of.push(fi);
            }
            for e in &parsed.htm_extents {
                p.nodes.push(Node {
                    kind: NodeKind::HtmExtent,
                    file: path.clone(),
                    name: e.what.clone(),
                    qual: e.what.clone(),
                    line: e.line,
                    swopt: false,
                    htm_body: true,
                    ops: e.ops.clone(),
                });
                file_of.push(fi);
            }
        }

        // Name indexes over Fn nodes only.
        let mut by_name: HashMap<&str, Vec<NodeId>> = HashMap::new();
        let mut by_qual: HashMap<&str, Vec<NodeId>> = HashMap::new();
        let mut by_file_name: HashMap<(usize, &str), Vec<NodeId>> = HashMap::new();
        for (id, n) in p.nodes.iter().enumerate() {
            if n.kind != NodeKind::Fn {
                continue;
            }
            by_name.entry(&n.name).or_default().push(id);
            by_qual.entry(&n.qual).or_default().push(id);
            by_file_name
                .entry((file_of[id], &n.name))
                .or_default()
                .push(id);
        }

        let mut all_edges: Vec<Vec<CallEdge>> = Vec::with_capacity(p.nodes.len());
        for (id, n) in p.nodes.iter().enumerate() {
            let mut out: Vec<CallEdge> = Vec::new();
            for (op_idx, op) in n.ops.iter().enumerate() {
                let OpKind::Call { callee, qual } = &op.kind else {
                    continue;
                };
                let targets: Option<&Vec<NodeId>> = match qual {
                    CallQual::Typed(ty) => by_qual.get(format!("{ty}::{callee}").as_str()),
                    CallQual::Bare | CallQual::Method => by_file_name
                        .get(&(file_of[id], callee.as_str()))
                        .or_else(|| by_name.get(callee.as_str())),
                };
                if let Some(targets) = targets {
                    out.extend(targets.iter().map(|&callee| CallEdge { op_idx, callee }));
                }
            }
            all_edges.push(out);
        }
        p.edges = all_edges;
        p
    }

    /// Callers of each node (reverse adjacency), for fixed-point worklists.
    #[must_use]
    pub fn callers(&self) -> Vec<Vec<NodeId>> {
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (caller, edges) in self.edges.iter().enumerate() {
            for e in edges {
                rev[e.callee].push(caller);
            }
        }
        rev
    }

    /// Graphviz export of the resolved call graph. Nodes carry
    /// `file:line qual` labels; transaction extents are shaped as boxes.
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph ale_callgraph {\n  rankdir=LR;\n  node [fontsize=9];\n");
        for (id, n) in self.nodes.iter().enumerate() {
            let shape = match n.kind {
                NodeKind::Fn => "ellipse",
                NodeKind::HtmExtent => "box",
            };
            let label = format!("{}\\n{}:{}", esc(&n.qual), esc(&n.file), n.line + 1);
            s.push_str(&format!("  n{id} [shape={shape}, label=\"{label}\"];\n"));
        }
        for (caller, edges) in self.edges.iter().enumerate() {
            let mut seen = std::collections::BTreeSet::new();
            for e in edges {
                if seen.insert(e.callee) {
                    s.push_str(&format!("  n{caller} -> n{};\n", e.callee));
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser;

    fn program(files: &[(&str, &str)]) -> Program {
        let parsed: Vec<(String, ParsedFile)> = files
            .iter()
            .map(|(path, src)| {
                let model = lexer::analyze(src);
                let toks = lexer::tokens(&model);
                let fns = lexer::functions(&toks);
                let ranges = lexer::cfg_test_ranges(&toks);
                (
                    (*path).to_string(),
                    parser::parse_file(&model, &toks, &fns, &ranges, false),
                )
            })
            .collect();
        Program::build(&parsed)
    }

    fn node_id(p: &Program, name: &str) -> NodeId {
        p.nodes.iter().position(|n| n.name == name).unwrap()
    }

    #[test]
    fn cross_file_bare_calls_resolve() {
        let p = program(&[
            ("a.rs", "fn caller() { helper(); }"),
            ("b.rs", "fn helper() { other_thing(); }"),
        ]);
        let caller = node_id(&p, "caller");
        let helper = node_id(&p, "helper");
        assert!(p.edges[caller].iter().any(|e| e.callee == helper));
        assert!(p.edges[helper].is_empty(), "unresolvable call has no edge");
    }

    #[test]
    fn same_file_resolution_wins_over_global() {
        let p = program(&[
            ("a.rs", "fn helper() {}\nfn caller() { helper(); }"),
            ("b.rs", "fn helper() {}"),
        ]);
        let caller = node_id(&p, "caller");
        assert_eq!(p.edges[caller].len(), 1);
        assert_eq!(p.nodes[p.edges[caller][0].callee].file, "a.rs");
    }

    #[test]
    fn typed_calls_resolve_only_against_matching_impl() {
        let p = program(&[(
            "a.rs",
            "impl Foo { fn make() {} }\nfn caller() { let x = Foo::make(); let v = Vec::make(); }",
        )]);
        let caller = node_id(&p, "caller");
        assert_eq!(p.edges[caller].len(), 1, "Vec::make must not resolve");
        assert_eq!(p.nodes[p.edges[caller][0].callee].qual, "Foo::make");
    }

    #[test]
    fn test_fns_are_invisible() {
        let p = program(&[(
            "a.rs",
            "fn caller() { helper(); }\n#[cfg(test)]\nmod tests { fn helper() {} }",
        )]);
        let caller = node_id(&p, "caller");
        assert!(p.edges[caller].is_empty());
        assert_eq!(p.nodes.len(), 1);
    }

    #[test]
    fn dot_export_mentions_nodes_and_edges() {
        let p = program(&[("a.rs", "fn f() { g(); }\nfn g() {}")]);
        let dot = p.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("f\\na.rs:1"));
        assert!(dot.contains("->"));
    }
}
