//! Resilience tests: panic-safe critical sections in all three modes, lock
//! poisoning and explicit recovery, typed mode-protocol errors, the
//! abort-storm circuit breaker, startup HTM capability probing, and the
//! Lock-mode stall watchdog.
//!
//! These tests manipulate process-global state (the fault-injection plan,
//! the critical-section observer), so they live in their own integration
//! test binary and serialise through a local mutex.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};

use ale_core::{
    scope, Ale, AleConfig, CsEvent, CsOptions, CsOutcome, CsProtocolError, ExecMode, LockPoison,
    StaticPolicy,
};
use ale_htm::{
    BreakerConfig, BreakerState, HtmCell, InjectKind, InjectPlan, InjectPoint, InjectRule,
    InjectedPanic,
};
use ale_sync::{RawLock, SeqVersion, SpinLock};
use ale_vtime::{Event, Platform, Sim};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn lock_mode_panic_closes_regions_poisons_and_recovers() {
    let _g = serial();
    ale_core::init_panic_hook();
    // T2 has no HTM and the policy requests no SWOpt: pure Lock mode.
    let ale = Ale::new(AleConfig::new(Platform::t2()), StaticPolicy::new(0, 0));
    let lock = ale.new_lock("poisonable", SpinLock::new());
    let ver = SeqVersion::new();

    let unwound = catch_unwind(AssertUnwindSafe(|| {
        lock.cs_plain(scope!("boom"), CsOptions::new(), |_| -> u64 {
            // Panic with a conflicting region open: the driver must close
            // it (restoring parity for SWOpt readers) before releasing.
            ver.begin_conflicting_action();
            std::panic::panic_any(InjectedPanic)
        })
    }));
    let payload = unwound.expect_err("the body's panic must propagate");
    assert!(payload.downcast_ref::<InjectedPanic>().is_some());

    assert_eq!(ale_sync::open_region_count(), 0, "region must be closed");
    assert_eq!(ver.read(false) % 2, 0, "version parity must be restored");
    assert!(!lock.raw().is_locked(), "the lock must be released");
    assert!(lock.is_poisoned(), "a Lock-mode panic must poison");

    // While poisoned, entry raises the typed LockPoison payload.
    let refused = catch_unwind(AssertUnwindSafe(|| {
        lock.cs_plain(scope!("refused"), CsOptions::new(), |_| 1u64)
    }));
    let payload = refused.expect_err("a poisoned lock must refuse entry");
    assert_eq!(
        payload.downcast_ref::<LockPoison>(),
        Some(&LockPoison { lock: "poisonable" })
    );

    // Explicit recovery re-enables the lock.
    lock.clear_poison();
    assert!(!lock.is_poisoned());
    let v = lock.cs_plain(scope!("recovered"), CsOptions::new(), |_| 2u64);
    assert_eq!(v, 2);
}

#[test]
fn htm_mode_panic_discards_writes_and_leaves_no_residue() {
    let _g = serial();
    ale_core::init_panic_hook();
    let platform = Platform::haswell();
    Sim::new(platform.clone(), 1).run(|_| {
        let ale = Ale::new(AleConfig::new(platform.clone()), StaticPolicy::new(10, 0));
        let lock = ale.new_lock("htm_panic", SpinLock::new());
        let cell = HtmCell::new(5u64);
        let modes = RefCell::new(Vec::new());

        let unwound = catch_unwind(AssertUnwindSafe(|| {
            lock.cs_plain(scope!("hboom"), CsOptions::new(), |cs| -> u64 {
                modes.borrow_mut().push(cs.mode());
                cell.set(99);
                std::panic::panic_any(InjectedPanic)
            })
        }));
        assert!(unwound.is_err());
        assert_eq!(
            modes.borrow().as_slice(),
            &[ExecMode::Htm],
            "the panicking attempt must have run in HTM mode (no retries)"
        );
        assert!(!ale_htm::in_txn(), "the transaction must be torn down");
        assert_eq!(cell.get(), 5, "speculative writes must be discarded");
        assert!(!lock.is_poisoned(), "HTM mode holds no lock to poison");
        assert!(!lock.raw().is_locked());

        // The lock keeps working, still eliding.
        let v = lock.cs_plain(scope!("after_hboom"), CsOptions::new(), |_| {
            cell.set(6);
            cell.get()
        });
        assert_eq!(v, 6);
    });
}

#[test]
fn swopt_mode_panic_closes_regions_and_propagates() {
    let _g = serial();
    ale_core::init_panic_hook();
    // T2: no HTM; policy requests SWOpt first.
    let ale = Ale::new(AleConfig::new(Platform::t2()), StaticPolicy::new(0, 5));
    let lock = ale.new_lock("swopt_panic", SpinLock::new());
    let ver = SeqVersion::new();

    let unwound = catch_unwind(AssertUnwindSafe(|| {
        lock.cs(
            scope!("sboom"),
            CsOptions::new().with_swopt(),
            |cs| -> CsOutcome<u64> {
                assert!(cs.is_swopt());
                ver.begin_conflicting_action();
                std::panic::panic_any(InjectedPanic)
            },
        )
    }));
    let payload = unwound.expect_err("the body's panic must propagate");
    assert!(payload.downcast_ref::<InjectedPanic>().is_some());
    assert_eq!(ale_sync::open_region_count(), 0, "region must be closed");
    assert_eq!(ver.read(false) % 2, 0, "version parity must be restored");
    assert!(!lock.is_poisoned(), "SWOpt mode holds no lock to poison");
    let v = lock.cs_plain(scope!("after_sboom"), CsOptions::new(), |_| 4u64);
    assert_eq!(v, 4);
}

#[test]
fn lock_mode_protocol_error_is_typed_and_does_not_poison() {
    let _g = serial();
    let ale = Ale::new(AleConfig::new(Platform::t2()), StaticPolicy::new(0, 0));
    let lock = ale.new_lock("proto", SpinLock::new());
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        lock.cs(scope!("bad"), CsOptions::new(), |_| -> CsOutcome<u64> {
            CsOutcome::SwOptFail
        })
    }));
    let payload = unwound.expect_err("a Lock-mode SWOpt outcome must raise");
    if !cfg!(debug_assertions) {
        // Release builds recover with the typed payload; debug builds keep
        // the fail-fast assertion (whose payload is the message string).
        assert_eq!(
            payload.downcast_ref::<CsProtocolError>(),
            Some(&CsProtocolError::SwOptOutcomeInLock)
        );
    }
    assert!(!lock.raw().is_locked(), "the lock must be released");
    assert!(!lock.is_poisoned(), "protocol errors must not poison");
    let v = lock.cs_plain(scope!("good"), CsOptions::new(), |_| 3u64);
    assert_eq!(v, 3);
}

// Debug builds keep the fail-fast debug_assert at the protocol sites, so
// graceful HTM fallback is observable only in release builds (CI runs the
// release test suite too).
#[cfg(not(debug_assertions))]
#[test]
fn htm_mode_protocol_error_falls_back_gracefully() {
    let _g = serial();
    let platform = Platform::haswell();
    Sim::new(platform.clone(), 1).run(|_| {
        let ale = Ale::new(AleConfig::new(platform.clone()), StaticPolicy::new(5, 0));
        let lock = ale.new_lock("proto_htm", SpinLock::new());
        let v = lock.cs(scope!("bad_htm"), CsOptions::new(), |cs| {
            if cs.mode() == ExecMode::Htm {
                // Protocol violation: the committed transaction claims a
                // SWOpt outcome. The driver must abandon HTM and re-run.
                CsOutcome::SwOptFail
            } else {
                assert_eq!(cs.mode(), ExecMode::Lock);
                CsOutcome::Done(11u64)
            }
        });
        assert_eq!(v, 11);
        assert!(!lock.is_poisoned());
    });
}

#[test]
fn breaker_trips_under_abort_storm_and_restores_after() {
    let _g = serial();
    let platform = Platform::haswell();
    Sim::new(platform.clone(), 1).run(|_| {
        let cfg = BreakerConfig {
            window_ns: 50_000,
            trip_permille: 700,
            min_samples: 8,
            cooldown_ns: 20_000,
            max_cooldown_ns: 100_000,
        };
        // Build the library BEFORE installing the injection plan, so the
        // startup HTM capability probe sees healthy hardware.
        let ale = Ale::new(
            AleConfig::new(platform.clone()).with_breaker(cfg),
            StaticPolicy::new(4, 0),
        );
        let lock = ale.new_lock("storm", SpinLock::new());
        let c = HtmCell::new(0u64);
        let run_one = || {
            lock.cs_plain(scope!("inc"), CsOptions::new(), |_| {
                c.set(c.get() + 1);
            })
        };

        // Storm phase: every transaction begin aborts with a conflict.
        ale_htm::inject::install(InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Begin,
            every: 1,
            kind: InjectKind::Conflict,
        }]));
        for _ in 0..20 {
            run_one();
        }
        let granules = lock.meta().granules.all();
        let b = granules[0].breaker.as_ref().expect("breaker configured");
        assert_eq!(b.trips(), 1, "the storm must trip the breaker once");
        assert_ne!(b.state(), BreakerState::Closed, "circuit must be open");
        assert_eq!(c.get(), 20, "every execution still completes (via Lock)");

        // Storm ends; wait out the (deepened) cool-down in virtual time.
        ale_htm::inject::clear();
        ale_vtime::tick(Event::LocalWork(300_000));
        for _ in 0..10 {
            run_one();
        }
        assert_eq!(b.state(), BreakerState::Closed, "probe must restore HTM");
        assert!(b.restores() >= 1);
        assert_eq!(c.get(), 30);
        let stats = &granules[0].stats;
        assert!(
            stats.successes[ExecMode::Htm.index()].read() > 0,
            "post-storm executions must commit in HTM again"
        );
    });
}

#[test]
fn startup_probe_degrades_broken_htm_to_fallback() {
    let _g = serial();
    let mut platform = Platform::testbed();
    // HTM that can never commit even an empty transaction.
    platform.htm.as_mut().unwrap().spurious_abort_per_txn = 1.0;
    let ale = Ale::new(AleConfig::new(platform), StaticPolicy::new(5, 0));
    let lock = ale.new_lock("no_htm", SpinLock::new());
    let v = lock.cs_plain(scope!("degraded"), CsOptions::new(), |cs| {
        assert_ne!(cs.mode(), ExecMode::Htm, "HTM must be disabled at startup");
        1u64
    });
    assert_eq!(v, 1);
    let report = ale.report();
    let g = &report.lock("no_htm").unwrap().granules[0];
    assert_eq!(
        g.attempts[ExecMode::Htm.index()],
        0,
        "no retry budget may be burned on unusable HTM"
    );
}

#[test]
fn stall_watchdog_reports_slow_lock_acquisitions() {
    let _g = serial();
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    ale_core::set_cs_observer(Arc::new(move |ev| {
        if let CsEvent::LockStall { lock, waited_ns } = ev {
            sink.lock().unwrap().push((*lock, *waited_ns));
        }
    }));
    let platform = Platform::t2();
    let ale = Ale::new(
        AleConfig::new(platform.clone()).with_stall_watchdog(10_000),
        StaticPolicy::new(0, 0),
    );
    let lock = ale.new_lock("stalled", SpinLock::new());
    let done = Sim::new(platform, 2).run(|lane| {
        if lane.id() == 0 {
            lock.cs_plain(scope!("holder"), CsOptions::new(), |_| {
                ale_vtime::tick(Event::LocalWork(100_000)); // stalled holder
                1u64
            })
        } else {
            ale_vtime::tick(Event::LocalWork(500));
            lock.cs_plain(scope!("waiter"), CsOptions::new(), |_| 2u64)
        }
    });
    ale_core::clear_cs_observer();
    assert_eq!(done.results, vec![1, 2], "both sections must complete");
    let seen = seen.lock().unwrap();
    assert!(
        seen.iter().any(|(l, w)| *l == "stalled" && *w >= 10_000),
        "the watchdog must report the stalled acquisition: {seen:?}"
    );
}
