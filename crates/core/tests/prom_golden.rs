//! Golden-snapshot test for the Prometheus text exporter: metric names,
//! label sets, and formatting are a stable surface other tooling scrapes,
//! so any change must show up as a reviewed fixture diff.
//!
//! Regenerate the fixture after an intentional schema change with:
//! `BLESS=1 cargo test -p ale-core --test prom_golden`

use ale_core::{GranuleReport, LockReport, Report};

/// A fully deterministic report exercising every metric family: one warm
/// granule (all averages present), one cold granule (averages absent), and
/// a context label that needs escaping.
fn demo_report() -> Report {
    Report {
        policy: "adaptive".to_string(),
        locks: vec![
            LockReport {
                label: "hash_lock",
                policy: "final: uniform All".to_string(),
                granules: vec![
                    GranuleReport {
                        context: "insert".to_string(),
                        executions: 100,
                        attempts: [60, 30, 10],
                        successes: [55, 28, 10],
                        avg_success_ns: [Some(210), Some(340), Some(900)],
                        time_samples: [55, 28, 10],
                        sampled_time_ns: [11_550, 9_520, 9_000],
                        lock_held_aborts: 3,
                        conflict_aborts: 2,
                        capacity_aborts: 1,
                        spurious_aborts: 0,
                        swopt_fails: 2,
                        avg_exec_ns: Some(260),
                        policy: "All, X=3".to_string(),
                    },
                    GranuleReport {
                        context: "lookup \"hot\"".to_string(),
                        executions: 1,
                        attempts: [1, 0, 0],
                        successes: [0, 0, 0],
                        avg_success_ns: [None, None, None],
                        time_samples: [0, 0, 0],
                        sampled_time_ns: [0, 0, 0],
                        lock_held_aborts: 1,
                        conflict_aborts: 0,
                        capacity_aborts: 0,
                        spurious_aborts: 0,
                        swopt_fails: 0,
                        avg_exec_ns: None,
                        policy: String::new(),
                    },
                ],
            },
            LockReport {
                label: "db_lock",
                policy: String::new(),
                granules: vec![GranuleReport {
                    context: "<root>".to_string(),
                    executions: 7,
                    attempts: [0, 0, 7],
                    successes: [0, 0, 7],
                    avg_success_ns: [None, None, Some(1_500)],
                    time_samples: [0, 0, 7],
                    sampled_time_ns: [0, 0, 10_500],
                    lock_held_aborts: 0,
                    conflict_aborts: 0,
                    capacity_aborts: 0,
                    spurious_aborts: 0,
                    swopt_fails: 0,
                    avg_exec_ns: Some(1_500),
                    policy: String::new(),
                }],
            },
        ],
    }
}

#[test]
fn prometheus_snapshot_matches_golden_fixture() {
    let got = demo_report().to_prometheus();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/report.prom");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(path, &got).expect("write blessed fixture");
        return;
    }
    let expected = std::fs::read_to_string(path).expect(
        "fixture missing — regenerate with BLESS=1 cargo test -p ale-core --test prom_golden",
    );
    assert_eq!(
        got, expected,
        "Prometheus exporter output drifted from the golden fixture; if the \
         change is intentional, regenerate with BLESS=1 and review the diff"
    );
}

#[test]
fn prometheus_snapshot_has_no_nan_and_escapes_labels() {
    let text = demo_report().to_prometheus();
    assert!(!text.contains("NaN"));
    assert!(
        text.contains("context=\"lookup \\\"hot\\\"\""),
        "label values must be escaped:\n{text}"
    );
    // The cold granule contributes no avg samples at all.
    assert!(!text.contains("ale_granule_avg_success_ns{lock=\"hash_lock\",context=\"lookup"));
}
