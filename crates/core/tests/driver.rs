//! End-to-end tests of the critical-section driver: mode selection,
//! correctness under simulated contention, nesting rules, SWOpt retry
//! plumbing, and adaptive-policy convergence.

use std::sync::atomic::{AtomicU64, Ordering};

use ale_core::{
    scope, Ale, AleConfig, AleLock, CsOptions, CsOutcome, ExecMode, Policy, StaticPolicy,
};
use ale_htm::HtmCell;
use ale_sync::{RawLock, RawRwLock, SeqVersion, SpinLock};
use ale_vtime::{Platform, Sim};

/// A bank of two accounts whose sum is invariant — the classic elision
/// correctness probe. Read CS has a SWOpt path; transfer CS has a
/// conflicting region bracketed by a SeqVersion.
struct Bank {
    lock: AleLock<SpinLock>,
    ver: SeqVersion,
    a: HtmCell<u64>,
    b: HtmCell<u64>,
}

impl Bank {
    fn new(ale: &std::sync::Arc<Ale>) -> Self {
        Bank {
            lock: ale.new_lock("bank", SpinLock::new()),
            ver: SeqVersion::new(),
            a: HtmCell::new(50),
            b: HtmCell::new(50),
        }
    }

    fn sum(&self) -> u64 {
        self.lock.cs(
            scope!("Bank::sum"),
            CsOptions::new().with_swopt().non_conflicting(),
            |cs| {
                if cs.is_swopt() {
                    let snap = self.ver.read(true);
                    let x = self.a.get();
                    if !self.ver.validate(snap) {
                        return CsOutcome::SwOptFail;
                    }
                    let y = self.b.get();
                    if !self.ver.validate(snap) {
                        return CsOutcome::SwOptFail;
                    }
                    CsOutcome::Done(x + y)
                } else {
                    CsOutcome::Done(self.a.get() + self.b.get())
                }
            },
        )
    }

    fn transfer(&self, amount: u64) {
        self.lock
            .cs_plain(scope!("Bank::transfer"), CsOptions::new(), |cs| {
                let x = self.a.get();
                let y = self.b.get();
                if x < amount {
                    return;
                }
                let bump = cs.could_swopt_be_running();
                if bump {
                    self.ver.begin_conflicting_action();
                }
                self.a.set(x - amount);
                self.b.set(y + amount);
                if bump {
                    self.ver.end_conflicting_action();
                }
            });
    }
}

fn ale_with(platform: Platform, policy: impl Policy) -> std::sync::Arc<Ale> {
    Ale::new(AleConfig::new(platform).with_seed(7), policy)
}

#[test]
fn htm_mode_is_used_on_htm_platform() {
    let ale = ale_with(Platform::testbed(), StaticPolicy::new(5, 5));
    let bank = Bank::new(&ale);
    for _ in 0..100 {
        bank.transfer(1);
        assert_eq!(bank.sum(), 100);
    }
    let report = ale.report();
    let lock = report.lock("bank").unwrap();
    let htm_successes: u64 = lock
        .granules
        .iter()
        .map(|g| g.successes[ExecMode::Htm.index()])
        .sum();
    assert!(
        htm_successes > 150,
        "uncontended CSes on an HTM platform should elide: {report}"
    );
}

#[test]
fn swopt_carries_reads_when_htm_is_unavailable() {
    let ale = ale_with(Platform::t2(), StaticPolicy::new(5, 5));
    let bank = Bank::new(&ale);
    for _ in 0..100 {
        assert_eq!(bank.sum(), 100);
    }
    let report = ale.report();
    let g = &report.lock("bank").unwrap().granules;
    let swopt: u64 = g.iter().map(|g| g.successes[ExecMode::SwOpt.index()]).sum();
    let htm: u64 = g.iter().map(|g| g.successes[ExecMode::Htm.index()]).sum();
    assert_eq!(htm, 0, "T2-2 has no HTM");
    assert!(swopt >= 90, "reads should succeed via SWOpt, got {swopt}");
}

#[test]
fn instrumented_only_runs_lock_mode() {
    let ale = Ale::new(
        AleConfig::new(Platform::testbed())
            .without_htm()
            .without_swopt(),
        StaticPolicy::new(5, 5),
    );
    let bank = Bank::new(&ale);
    for _ in 0..50 {
        bank.transfer(1);
        assert_eq!(bank.sum(), 100);
    }
    let report = ale.report();
    for g in &report.lock("bank").unwrap().granules {
        assert_eq!(g.successes[ExecMode::Htm.index()], 0);
        assert_eq!(g.successes[ExecMode::SwOpt.index()], 0);
        assert_eq!(g.successes[ExecMode::Lock.index()], g.executions);
    }
}

#[test]
fn invariant_holds_under_simulated_contention() {
    for platform in [Platform::testbed(), Platform::haswell(), Platform::t2()] {
        let ale = ale_with(platform.clone(), StaticPolicy::new(4, 16));
        let bank = Bank::new(&ale);
        let reads_ok = AtomicU64::new(0);
        Sim::new(platform.clone(), 8).with_seed(3).run(|lane| {
            if lane.id() % 2 == 0 {
                for _ in 0..300 {
                    bank.transfer(1);
                }
            } else {
                for _ in 0..300 {
                    assert_eq!(bank.sum(), 100, "invariant broken on {:?}", platform.kind);
                    reads_ok.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(bank.sum(), 100);
        assert_eq!(reads_ok.load(Ordering::Relaxed), 4 * 300);
    }
}

#[test]
fn swopt_failures_are_reported_and_retried() {
    let ale = ale_with(Platform::t2(), StaticPolicy::new(0, 10));
    let lock = ale.new_lock("retry", SpinLock::new());
    let mut failures_left = 3;
    let v = lock.cs(scope!("flaky"), CsOptions::new().with_swopt(), |cs| {
        if cs.is_swopt() && failures_left > 0 {
            failures_left -= 1;
            return CsOutcome::SwOptFail;
        }
        CsOutcome::Done(42)
    });
    assert_eq!(v, 42);
    let report = ale.report();
    let g = &report.lock("retry").unwrap().granules[0];
    assert_eq!(g.swopt_fails, 3);
    assert_eq!(g.attempts[ExecMode::SwOpt.index()], 4);
    assert_eq!(g.successes[ExecMode::SwOpt.index()], 1);
    assert_eq!(g.executions, 1);
}

#[test]
fn swopt_budget_exhaustion_falls_back_to_lock() {
    let ale = ale_with(Platform::t2(), StaticPolicy::new(0, 5));
    let lock = ale.new_lock("exhaust", SpinLock::new());
    let v = lock.cs(
        scope!("always_fails"),
        CsOptions::new().with_swopt(),
        |cs| {
            if cs.is_swopt() {
                CsOutcome::SwOptFail
            } else {
                assert_eq!(cs.mode(), ExecMode::Lock);
                CsOutcome::Done(7)
            }
        },
    );
    assert_eq!(v, 7);
    let g = ale.report();
    let g = &g.lock("exhaust").unwrap().granules[0];
    assert_eq!(g.attempts[ExecMode::SwOpt.index()], 5);
    assert_eq!(g.successes[ExecMode::Lock.index()], 1);
}

#[test]
fn nested_cs_under_htm_is_flattened() {
    let ale = ale_with(Platform::testbed(), StaticPolicy::new(5, 0));
    let outer = ale.new_lock("outer", SpinLock::new());
    let inner = ale.new_lock("inner", SpinLock::new());
    let cell = HtmCell::new(0u64);
    let modes = outer.cs_plain(scope!("outer_cs"), CsOptions::new(), |cs| {
        let outer_mode = cs.mode();
        let inner_mode = inner.cs_plain(scope!("inner_cs"), CsOptions::new(), |ics| {
            cell.set(cell.get() + 1);
            ics.mode()
        });
        (outer_mode, inner_mode)
    });
    assert_eq!(
        modes,
        (ExecMode::Htm, ExecMode::Htm),
        "nested CS must flatten"
    );
    assert_eq!(cell.get(), 1);
    // The inner lock records nothing for flattened executions (no frame is
    // pushed, matching §4.1).
    let report = ale.report();
    assert_eq!(report.lock("inner").unwrap().total_executions(), 0);
}

#[test]
fn nested_cs_forbidding_htm_aborts_the_outer_transaction() {
    let ale = ale_with(Platform::testbed(), StaticPolicy::new(3, 0));
    let outer = ale.new_lock("outer2", SpinLock::new());
    let inner = ale.new_lock("inner2", SpinLock::new());
    let outer_mode = outer.cs_plain(scope!("outer2_cs"), CsOptions::new(), |cs| {
        inner.cs_plain(scope!("inner2_cs"), CsOptions::new().without_htm(), |ics| {
            assert_ne!(ics.mode(), ExecMode::Htm);
        });
        cs.mode()
    });
    // The outer CS can only complete in Lock mode: every HTM attempt dies
    // at the nested no-HTM critical section.
    assert_eq!(outer_mode, ExecMode::Lock);
    let report = ale.report();
    let g = &report.lock("outer2").unwrap().granules[0];
    assert_eq!(
        g.attempts[ExecMode::Htm.index()],
        1,
        "one attempt, then give up"
    );
}

#[test]
fn reentrant_lock_mode_skips_reacquisition() {
    let ale = Ale::new(
        AleConfig::new(Platform::testbed()).without_htm(),
        StaticPolicy::new(0, 0),
    );
    let lock = ale.new_lock("reentrant", SpinLock::new());
    let v = lock.cs_plain(scope!("outer_r"), CsOptions::new(), |cs| {
        assert_eq!(cs.mode(), ExecMode::Lock);
        assert!(lock.raw().is_locked());
        // Same lock again: must not deadlock, must run in Lock mode.
        lock.cs_plain(scope!("inner_r"), CsOptions::new(), |ics| {
            assert_eq!(ics.mode(), ExecMode::Lock);
            11
        })
    });
    assert_eq!(v, 11);
    assert!(!lock.raw().is_locked(), "outermost exit releases the lock");
}

#[test]
fn swopt_is_refused_while_in_swopt_for_another_lock() {
    let ale = ale_with(Platform::t2(), StaticPolicy::new(0, 8));
    let l1 = ale.new_lock("lk1", SpinLock::new());
    let l2 = ale.new_lock("lk2", SpinLock::new());
    let inner_mode = l1.cs(scope!("outer_sw"), CsOptions::new().with_swopt(), |cs| {
        assert_eq!(cs.mode(), ExecMode::SwOpt);
        let m = l2.cs(scope!("inner_sw"), CsOptions::new().with_swopt(), |ics| {
            CsOutcome::Done(ics.mode())
        });
        CsOutcome::Done(m)
    });
    assert_ne!(
        inner_mode,
        ExecMode::SwOpt,
        "nested SWOpt under a different lock's SWOpt is forbidden (§4.1)"
    );
}

#[test]
fn distinct_scopes_get_distinct_granules() {
    let ale = ale_with(Platform::testbed(), StaticPolicy::new(2, 2));
    let lock = ale.new_lock("ctx", SpinLock::new());
    for _ in 0..10 {
        lock.cs_plain(scope!("path_a"), CsOptions::new(), |_| ());
        lock.cs_plain(scope!("path_b"), CsOptions::new(), |_| ());
        ale_core::with_scope(scope!("wrapper"), || {
            lock.cs_plain(scope!("path_a_nested"), CsOptions::new(), |_| ());
        });
    }
    let report = ale.report();
    let lr = report.lock("ctx").unwrap();
    assert_eq!(lr.granules.len(), 3, "{report}");
    let contexts: Vec<_> = lr.granules.iter().map(|g| g.context.clone()).collect();
    assert!(
        contexts.iter().any(|c| c.contains("wrapper")),
        "{contexts:?}"
    );
}

#[test]
fn lock_held_aborts_are_classified() {
    // One lane camps on the lock in Lock mode while another tries HTM;
    // the HTM lane's aborts should be classified as lock-held.
    let ale = Ale::new(
        AleConfig::new(Platform::testbed()).with_seed(5),
        StaticPolicy::new(2, 0),
    );
    let lock = ale.new_lock("camped", SpinLock::new());
    let cell = HtmCell::new(0u64);
    Sim::new(Platform::testbed(), 2).run(|lane| {
        if lane.id() == 0 {
            // Long Lock-mode critical sections.
            for _ in 0..20 {
                lock.raw().acquire();
                for _ in 0..50 {
                    ale_vtime::tick(ale_vtime::Event::LocalWork(100));
                    cell.set(cell.get() + 1);
                }
                lock.raw().release();
            }
        } else {
            for _ in 0..50 {
                lock.cs_plain(scope!("htm_side"), CsOptions::new(), |_| {
                    cell.set(cell.get() + 1);
                });
            }
        }
    });
    let report = ale.report();
    let g = &report.lock("camped").unwrap().granules[0];
    assert!(
        g.lock_held_aborts > 0 || g.successes[ExecMode::Htm.index()] == g.executions,
        "camping must surface as lock-held aborts: {report}"
    );
}

#[test]
fn adaptive_policy_converges_to_a_final_configuration() {
    use ale_core::AdaptivePolicy;
    let ale = Ale::new(
        AleConfig::new(Platform::testbed()).with_seed(11),
        AdaptivePolicy::new(),
    );
    let bank = Bank::new(&ale);
    // Drive enough executions through both granules to finish learning
    // (4 progressions × ≤900 + custom 600) under simulated contention on
    // the HTM testbed, where eliding beats the lock in virtual time.
    // (Single-threaded and uncontended, Lock would genuinely be fastest —
    // the paper's 1-thread curves show exactly that.)
    Sim::new(Platform::testbed(), 4).with_seed(2).run(|lane| {
        for i in 0..2500 {
            if (i + lane.id()) % 10 == 0 {
                bank.transfer(1);
            } else {
                assert_eq!(bank.sum(), 100);
            }
        }
    });
    let report = ale.report();
    let lr = report.lock("bank").unwrap();
    assert!(
        lr.policy.starts_with("final"),
        "adaptive learning must converge: {}",
        lr.policy
    );
    // On the generous testbed HTM, the final choice must elide (HTM and/or
    // SWOpt), not fall back to Lock-only.
    assert_ne!(lr.policy, "final: uniform Lock", "{report}");
}

#[test]
fn adaptive_policy_avoids_htm_on_non_htm_platform() {
    use ale_core::AdaptivePolicy;
    let ale = Ale::new(
        AleConfig::new(Platform::t2()).with_seed(12),
        AdaptivePolicy::new(),
    );
    let bank = Bank::new(&ale);
    for _ in 0..4000 {
        assert_eq!(bank.sum(), 100);
    }
    let report = ale.report();
    let lr = report.lock("bank").unwrap();
    let htm_attempts: u64 = lr
        .granules
        .iter()
        .map(|g| g.attempts[ExecMode::Htm.index()])
        .sum();
    assert_eq!(
        htm_attempts, 0,
        "no HTM attempts may happen on T2-2: {report}"
    );
    assert!(lr.policy.starts_with("final"), "{}", lr.policy);
}

#[test]
fn report_renders_and_exports_csv() {
    let ale = ale_with(Platform::testbed(), StaticPolicy::new(3, 3));
    let bank = Bank::new(&ale);
    for _ in 0..50 {
        bank.transfer(1);
        bank.sum();
    }
    let report = ale.report();
    let text = format!("{report}");
    assert!(text.contains("bank"), "{text}");
    assert!(text.contains("Bank::transfer"), "{text}");
    let csv = report.to_csv();
    assert!(csv.lines().count() >= 3, "{csv}");
    assert!(csv.starts_with("lock,context,executions"));
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let run = || {
        let ale = Ale::new(
            AleConfig::new(Platform::haswell()).with_seed(99),
            StaticPolicy::new(3, 8),
        );
        let bank = Bank::new(&ale);
        let report = Sim::new(Platform::haswell(), 4).with_seed(21).run(|lane| {
            for _ in 0..200 {
                if lane.id() == 0 {
                    bank.transfer(1);
                } else {
                    bank.sum();
                }
            }
        });
        (report.makespan_ns, report.switches, bank.sum())
    };
    assert_eq!(run(), run(), "same seeds must replay identically");
}

#[test]
fn adaptive_relearns_when_the_workload_changes() {
    use ale_core::policy::adaptive::{AdaptiveConfig, AdaptivePolicy};

    // A platform whose HTM dies of capacity beyond 4 writes.
    let mut platform = Platform::testbed();
    platform.htm.as_mut().unwrap().max_write_set = 4;

    let policy = AdaptivePolicy::with_config(AdaptiveConfig {
        phase_len: 200,
        sub_lens: [80, 120, 80],
        custom_len: 150,
        relearn_after: Some(800),
        ..AdaptiveConfig::default()
    });
    let ale = Ale::new(AleConfig::new(platform.clone()).with_seed(31), policy);
    let lock = ale.new_lock("shifting", SpinLock::new());
    let cells: Vec<HtmCell<u64>> = (0..8).map(|_| HtmCell::new(0)).collect();

    let stage = |ale: &std::sync::Arc<Ale>| ale.report().lock("shifting").unwrap().policy.clone();

    let run_phase = |writes_per_cs: usize, iters: usize| {
        Sim::new(platform.clone(), 4).with_seed(7).run(|lane| {
            for i in 0..iters {
                lock.cs_plain(scope!("shifting_cs"), CsOptions::new(), |_| {
                    if writes_per_cs == 1 {
                        // Disjoint per-lane cells: elision-friendly.
                        let c = &cells[lane.id() % 4];
                        c.set(c.get() + 1);
                    } else {
                        for c in cells.iter().take(writes_per_cs) {
                            c.set(c.get() + 1);
                        }
                    }
                    ale_vtime::tick(ale_vtime::Event::LocalWork(50 + (i + lane.id()) as u64 % 7));
                });
            }
        });
    };

    // Phase A: tiny, disjoint write sets — HTM elision wins.
    run_phase(1, 600);
    let first = stage(&ale);
    assert_eq!(
        first, "final: uniform HL",
        "phase A should pick HTM: {first}"
    );

    // Phase B: every critical section overflows the write budget — HTM is
    // hopeless, and re-learning must discover that.
    run_phase(8, 2500);
    let second = stage(&ale);
    assert_eq!(
        second, "final: uniform Lock",
        "after the shift, re-learning should abandon HTM: {second}"
    );
}

#[test]
fn lock_upgrade_is_rejected_not_deadlocked() {
    use ale_sync::RwLock;
    let ale = Ale::new(
        AleConfig::new(Platform::testbed())
            .without_htm()
            .without_swopt(),
        StaticPolicy::new(0, 0),
    );
    let rw = ale.new_rw_lock("upgradable", RwLock::new());
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rw.shared_cs(scope!("outer_shared"), CsOptions::new(), |_| {
            // Upgrading shared -> exclusive on the same lock must panic
            // with a clear message instead of deadlocking.
            rw.excl_cs(scope!("inner_excl"), CsOptions::new(), |_| {
                CsOutcome::Done(())
            });
            CsOutcome::Done(())
        });
    }));
    let payload = caught.unwrap_err();
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("improper nesting"), "{msg}");
    assert!(
        !rw.raw().is_any_locked(),
        "the unwind must release the shared hold"
    );
}

#[test]
fn shared_under_exclusive_is_fine() {
    use ale_sync::RwLock;
    let ale = Ale::new(
        AleConfig::new(Platform::testbed())
            .without_htm()
            .without_swopt(),
        StaticPolicy::new(0, 0),
    );
    let rw = ale.new_rw_lock("downgradable", RwLock::new());
    let v = rw.excl_cs(scope!("outer_excl"), CsOptions::new(), |_| {
        // A shared CS nested under an exclusive hold needs no acquisition.
        let inner = rw.shared_cs(scope!("inner_shared"), CsOptions::new(), |ics| {
            CsOutcome::Done(ics.mode())
        });
        CsOutcome::Done(inner)
    });
    assert_eq!(v, ExecMode::Lock);
    assert!(!rw.raw().is_any_locked());
}

#[test]
fn hostile_htm_profile_still_yields_correct_results() {
    // Failure injection: a platform whose HTM aborts constantly (50 % per
    // txn, 5 % per access, capacity 4). Everything must still be correct,
    // with the lock soaking up the failures.
    let mut platform = Platform::testbed();
    {
        let htm = platform.htm.as_mut().unwrap();
        htm.spurious_abort_per_txn = 0.5;
        htm.spurious_abort_per_access = 0.05;
        htm.max_write_set = 4;
        htm.max_read_set = 16;
    }
    let ale = Ale::new(
        AleConfig::new(platform.clone()).with_seed(13),
        StaticPolicy::new(6, 8),
    );
    let bank = Bank::new(&ale);
    Sim::new(platform, 4).with_seed(14).run(|lane| {
        for _ in 0..400 {
            if lane.id() == 0 {
                bank.transfer(1);
            } else {
                assert_eq!(bank.sum(), 100);
            }
        }
    });
    assert_eq!(bank.sum(), 100);
    let report = ale.report();
    let lr = report.lock("bank").unwrap();
    let spurious: u64 = lr.granules.iter().map(|g| g.spurious_aborts).sum();
    let lock_succ: u64 = lr
        .granules
        .iter()
        .map(|g| g.successes[ExecMode::Lock.index()])
        .sum();
    assert!(
        spurious > 50,
        "the hostile profile must actually fire: {report}"
    );
    assert!(
        lock_succ > 0,
        "the lock must absorb hopeless cases: {report}"
    );
}

#[test]
fn capacity_abort_stops_htm_retries_immediately() {
    let mut platform = Platform::testbed();
    platform.htm.as_mut().unwrap().max_write_set = 2;
    let ale = Ale::new(
        AleConfig::new(platform).with_seed(15),
        StaticPolicy::new(10, 0),
    );
    let lock = ale.new_lock("cap", SpinLock::new());
    let cells: Vec<HtmCell<u64>> = (0..8).map(|_| HtmCell::new(0)).collect();
    lock.cs_plain(scope!("too_big"), CsOptions::new(), |_| {
        for c in &cells {
            c.set(1);
        }
    });
    let report = ale.report();
    let g = &report.lock("cap").unwrap().granules[0];
    assert_eq!(
        g.attempts[ExecMode::Htm.index()],
        1,
        "capacity is terminal: one attempt, no blind retries: {report}"
    );
    assert_eq!(g.capacity_aborts, 1);
    assert_eq!(g.successes[ExecMode::Lock.index()], 1);
    assert!(cells.iter().all(|c| c.get() == 1));
}

#[test]
fn clh_lock_is_elidable() {
    use ale_sync::ClhLock;
    let ale = ale_with(Platform::testbed(), StaticPolicy::new(4, 0));
    let lock = ale.new_lock("clh", ClhLock::new());
    let cell = HtmCell::new(0u64);
    Sim::new(Platform::testbed(), 4).with_seed(16).run(|_| {
        for _ in 0..200 {
            lock.cs_plain(scope!("clh_cs"), CsOptions::new(), |_| {
                cell.set(cell.get() + 1);
            });
        }
    });
    assert_eq!(cell.get(), 800);
    let report = ale.report();
    let g = &report.lock("clh").unwrap().granules[0];
    assert!(
        g.successes[ExecMode::Htm.index()] > 0,
        "a queue lock must elide like any other RawLock: {report}"
    );
}

#[test]
fn probabilistic_grouping_defers_sometimes() {
    // With defer probability 0‰ conflicting executions never wait; with
    // 1000‰ they always do. Compare deferral behaviour via makespans of a
    // scenario with a permanently-retrying SWOpt reader.
    use ale_core::policy::StaticPolicy;
    let run = |permille: u64| {
        let ale = Ale::new(
            AleConfig::new(Platform::t2())
                .with_seed(17)
                .with_probabilistic_grouping(permille),
            StaticPolicy::new(0, 6).with_grouping(),
        );
        let bank = Bank::new(&ale);
        Sim::new(Platform::t2(), 4)
            .with_seed(18)
            .run(|lane| {
                for _ in 0..150 {
                    if lane.id() < 2 {
                        bank.transfer(1);
                    } else {
                        bank.sum();
                    }
                }
            })
            .makespan_ns
    };
    let always = run(1000);
    let never = run(0);
    // Both complete (no livelock either way); deferral costs time here.
    assert!(always > 0 && never > 0);
}

#[test]
fn learning_report_exposes_phase_measurements() {
    use ale_core::policy::adaptive::AdaptivePolicy;
    let policy_probe = AdaptivePolicy::new();
    let ale = Ale::new(
        AleConfig::new(Platform::testbed()).with_seed(41),
        AdaptivePolicy::new(),
    );
    let bank = Bank::new(&ale);
    Sim::new(Platform::testbed(), 4).with_seed(42).run(|lane| {
        for i in 0..2500 {
            if (i + lane.id()) % 10 == 0 {
                bank.transfer(1);
            } else {
                bank.sum();
            }
        }
    });
    let meta = &ale.lock_metas()[0];
    let report = policy_probe.learning_report(meta);
    assert!(report.stage.starts_with("final"), "{}", report.stage);
    assert!(
        report.lock_avg.len() >= 3,
        "one lock-wide average per learned progression: {report}"
    );
    let sum_granule = report
        .granules
        .iter()
        .find(|g| g.context.contains("Bank::sum"))
        .expect("sum granule");
    let learned: usize = sum_granule.avg_ns.iter().flatten().count();
    assert!(learned >= 3, "per-progression averages recorded: {report}");
    let text = format!("{report}");
    assert!(text.contains("Bank::sum"), "{text}");
}

#[test]
fn allocating_critical_sections_fall_back_from_htm() {
    // A nested ALE operation that must take an internal data mutex (the
    // node slab's free list) aborts the enclosing transaction with
    // TX_UNFRIENDLY, and the driver falls straight back without burning
    // the whole HTM budget.
    use ale_sync::TickMutex;
    let ale = ale_with(Platform::testbed(), StaticPolicy::new(8, 0));
    let lock = ale.new_lock("allocish", SpinLock::new());
    let shared = TickMutex::new(0u64);
    let mode = lock.cs_plain(scope!("alloc_cs"), CsOptions::new(), |cs| {
        *shared.lock() += 1;
        cs.mode()
    });
    assert_eq!(mode, ExecMode::Lock, "mutex-taking bodies cannot elide");
    assert_eq!(*shared.lock(), 1);
    let report = ale.report();
    let g = &report.lock("allocish").unwrap().granules[0];
    assert_eq!(
        g.attempts[ExecMode::Htm.index()],
        1,
        "TX_UNFRIENDLY must stop HTM retries after one attempt: {report}"
    );
}

#[test]
fn custom_phase_keeps_heterogeneous_per_granule_choices() {
    // Two critical sections under ONE lock with opposite HTM affinity:
    // one writes a single cell (elides beautifully), the other overflows
    // the write budget every time (HTM is hopeless). The §4.2 custom phase
    // should discover per-granule choices and keep them.
    use ale_core::policy::adaptive::{AdaptiveConfig, AdaptivePolicy};
    let mut platform = Platform::testbed();
    platform.htm.as_mut().unwrap().max_write_set = 4;
    let probe = AdaptivePolicy::new();
    let ale = Ale::new(
        AleConfig::new(platform.clone())
            .with_seed(51)
            .without_swopt(),
        AdaptivePolicy::with_config(AdaptiveConfig {
            phase_len: 300,
            sub_lens: [120, 180, 120],
            custom_len: 300,
            ..AdaptiveConfig::default()
        }),
    );
    let lock = ale.new_lock("hetero", SpinLock::new());
    let cells: Vec<HtmCell<u64>> = (0..8).map(|_| HtmCell::new(0)).collect();
    let (lock, cells) = (&lock, &cells);
    // One lane: no cross-granule contention coupling (the §4.2 effect the
    // custom phase exists to re-measure), so the per-granule winners are
    // strict and the test is deterministic: HTM for the tiny section,
    // Lock for the capacity-doomed one.
    Sim::new(platform, 1).with_seed(52).run(|_| {
        for i in 0..8_000 {
            if i % 2 == 0 {
                lock.cs_plain(scope!("tiny_cs"), CsOptions::new(), |_| {
                    let c = &cells[0];
                    c.set(c.get() + 1);
                    ale_vtime::tick(ale_vtime::Event::LocalWork(40));
                });
            } else {
                lock.cs_plain(scope!("huge_cs"), CsOptions::new(), |_| {
                    for c in cells.iter() {
                        c.set(c.get() + 1);
                    }
                    ale_vtime::tick(ale_vtime::Event::LocalWork(40));
                });
            }
        }
    });
    let meta = &ale.lock_metas()[0];
    let report = probe.learning_report(meta);
    assert!(report.stage.starts_with("final"), "{}", report.stage);
    let choice = |name: &str| {
        report
            .granules
            .iter()
            .find(|g| g.context.contains(name))
            .unwrap_or_else(|| panic!("granule {name} missing"))
            .chosen
    };
    let tiny = choice("tiny_cs");
    let huge = choice("huge_cs");
    assert_eq!(tiny, ale_core::Progression::HtmLock, "{report}");
    assert_eq!(huge, ale_core::Progression::LockOnly, "{report}");
    assert_eq!(
        report.stage, "final: custom per-granule progressions",
        "distinct winners must survive the custom phase: {report}"
    );
}

#[test]
fn report_records_time_spent_per_mode() {
    // §3.4: "how much time was spent in each mode". A mixed run must show
    // nonzero time shares for the modes that actually ran.
    let ale = ale_with(Platform::t2(), StaticPolicy::new(0, 4));
    let lock = ale.new_lock("timed", SpinLock::new());
    let mut flip = false;
    for _ in 0..2_000 {
        lock.cs(scope!("timed_cs"), CsOptions::new().with_swopt(), |cs| {
            if cs.is_swopt() {
                flip = !flip;
                if flip {
                    CsOutcome::Done(())
                } else {
                    CsOutcome::SwOptFail
                }
            } else {
                CsOutcome::Done(())
            }
        });
    }
    let report = ale.report();
    let g = &report.lock("timed").unwrap().granules[0];
    let swopt_share = g.time_share(ExecMode::SwOpt).expect("time recorded");
    let lock_share = g.time_share(ExecMode::Lock).unwrap_or(0.0);
    assert!(swopt_share > 0.0, "{report}");
    assert!(
        (swopt_share + lock_share - 1.0).abs() < 1e-9,
        "HTM never ran: {report}"
    );
    assert!(report.to_string().contains("time share"), "{report}");
}
