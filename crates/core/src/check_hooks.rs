//! Observer hooks on the critical-section driver, for dynamic checking.
//!
//! `ale-check` installs a process-wide observer before a run; the driver
//! then reports every attempt, abort and completion as a [`CsEvent`]. The
//! harness folds the stream into a deterministic digest (so two runs of the
//! same seed and schedule are provably identical) and into per-mode
//! statistics for its oracles.
//!
//! When no observer is installed the driver pays one relaxed atomic load
//! per emit point; the figures run with hooks off.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use ale_htm::AbortCode;

use crate::cs::CsProtocolError;
use crate::mode::ExecMode;

/// One critical-section event, labelled with the lock it ran under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsEvent {
    /// An attempt started in this mode.
    Attempt { lock: &'static str, mode: ExecMode },
    /// An HTM attempt aborted with this code.
    HtmAbort { lock: &'static str, code: AbortCode },
    /// A SWOpt attempt observed interference and will retry.
    SwOptFail { lock: &'static str },
    /// The critical section completed in this mode.
    Complete { lock: &'static str, mode: ExecMode },
    /// The body panicked in this mode; the driver restored consistency
    /// (transaction torn down / open regions closed / lock released) and
    /// re-raised the panic.
    Panicked { lock: &'static str, mode: ExecMode },
    /// A Lock-mode panic poisoned the lock; later entrants raise
    /// [`LockPoison`](crate::LockPoison) until `clear_poison` is called.
    Poisoned { lock: &'static str },
    /// A mode-protocol violation was detected and recovered from (release
    /// builds; debug builds still assert).
    ProtocolError {
        lock: &'static str,
        error: CsProtocolError,
    },
    /// The abort-storm circuit breaker tripped: HTM is denied for this
    /// lock's granule until a cool-down probe commits.
    BreakerTrip { lock: &'static str },
    /// A half-open breaker probe committed: HTM is restored.
    BreakerRestore { lock: &'static str },
    /// A deadline-based Lock-mode acquisition expired (stall watchdog);
    /// the driver keeps waiting but reports each expiry.
    LockStall { lock: &'static str, waited_ns: u64 },
}

type Observer = Arc<dyn Fn(&CsEvent) + Send + Sync>;

static ENABLED: AtomicBool = AtomicBool::new(false);
static OBSERVER: Mutex<Option<Observer>> = Mutex::new(None);

/// Install a process-wide critical-section observer (replacing any
/// previous one). Callbacks run on the executing lane, under the
/// simulator's serialisation — they must not block or tick.
pub fn set_cs_observer(f: Observer) {
    let mut g = OBSERVER.lock().unwrap();
    *g = Some(f);
    ENABLED.store(true, Ordering::Release);
}

/// Remove the observer.
pub fn clear_cs_observer() {
    ENABLED.store(false, Ordering::Release);
    OBSERVER.lock().unwrap().take();
}

/// Emit an event to the observer, if one is installed.
#[inline]
pub(crate) fn emit(ev: CsEvent) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    emit_slow(&ev);
}

#[cold]
fn emit_slow(ev: &CsEvent) {
    let obs = OBSERVER.lock().unwrap().clone();
    if let Some(f) = obs {
        f(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_receives_events_and_clears() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        set_cs_observer(Arc::new(move |ev| sink.lock().unwrap().push(*ev)));
        emit(CsEvent::Attempt {
            lock: "l",
            mode: ExecMode::Lock,
        });
        emit(CsEvent::Complete {
            lock: "l",
            mode: ExecMode::Lock,
        });
        clear_cs_observer();
        emit(CsEvent::SwOptFail { lock: "l" });
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2, "events after clear must be dropped");
        assert!(matches!(seen[0], CsEvent::Attempt { lock: "l", .. }));
    }
}
