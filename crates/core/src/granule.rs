//! Granules: per-(lock, context) metadata and statistics (§3.4, §4).
//!
//! "The library associates granule metadata with each ⟨lock, context⟩ pair
//! with which a critical section is executed, which is used to record
//! information and statistics about these executions." Policies read these
//! statistics to choose execution modes; reports render them for humans.
//!
//! The granule table is append-only with a lock-free read path (an array of
//! `AtomicPtr` slots scanned linearly): granule lookup happens on *every*
//! critical-section execution, so it must not serialise threads.

use std::any::Any;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use ale_htm::{BreakerConfig, StormBreaker};
use ale_sync::{CachePadded, SampledTime, StatCounter, TickMutex};
use ale_vtime::{tick, Event, Rng};

use crate::mode::ExecMode;
use crate::policy::{AttemptPlan, ModeCaps};
use crate::scope::{current_context_labels, ContextId};

/// Maximum distinct contexts per lock. Contexts are static program
/// structure (scope stacks), so a small fixed budget is plenty; overflow
/// falls back to the last slot's granule (merging statistics, which is
/// benign and reported).
pub const MAX_GRANULES_PER_LOCK: usize = 64;

/// Statistics the library records per granule (§3.4): execution counts,
/// per-mode attempt/success counts, abort breakdown, and timing.
#[derive(Debug, Default)]
pub struct GranuleStats {
    /// Completed critical-section executions.
    pub executions: StatCounter,
    /// Attempts per mode (HTM / SWOpt / Lock), indexed by `ExecMode::index`.
    pub attempts: [StatCounter; 3],
    /// Successes per mode.
    pub successes: [StatCounter; 3],
    /// HTM aborts attributed to a concurrent lock acquisition — accounted
    /// "in a much lighter way than others" by the retry budget (§4).
    pub lock_held_aborts: StatCounter,
    /// HTM aborts by data conflict.
    pub conflict_aborts: StatCounter,
    /// HTM aborts by capacity overflow.
    pub capacity_aborts: StatCounter,
    /// HTM aborts by micro-architectural noise.
    pub spurious_aborts: StatCounter,
    /// SWOpt attempts that detected interference and retried.
    pub swopt_fails: StatCounter,
    /// Mean successful-execution time per mode (sampled ~3 %, or 100 %
    /// during adaptive learning phases).
    pub success_time: [SampledTime; 3],
    /// Mean whole-execution time (including failed attempts).
    pub exec_time: SampledTime,
}

impl GranuleStats {
    pub fn record_attempt(&self, mode: ExecMode, rng: &mut Rng) {
        self.attempts[mode.index()].inc(rng);
    }

    pub fn record_success(&self, mode: ExecMode, rng: &mut Rng) {
        self.successes[mode.index()].inc(rng);
    }

    /// Fold a batched per-execution delta in: at most one shared update per
    /// nonzero field, instead of one per recorded event. Tick- and
    /// RNG-free; the batched path only runs outside the simulator (see
    /// [`StatSink`]), so no virtual-time schedule ever depends on it.
    pub fn apply_delta(&self, d: &StatDelta) {
        let executions = d.executions;
        // MUTATION mut-stat-batch-lost: the flush silently drops the
        // batched executions delta — completed critical sections vanish
        // from the statistics. The stat-parity oracle (executions count vs
        // observed completions) must catch this.
        #[cfg(feature = "mut-stat-batch-lost")]
        let executions = 0u32;
        self.executions.add(executions as u64);
        for i in 0..3 {
            self.attempts[i].add(d.attempts[i] as u64);
            self.successes[i].add(d.successes[i] as u64);
        }
        self.lock_held_aborts.add(d.lock_held_aborts as u64);
        self.conflict_aborts.add(d.conflict_aborts as u64);
        self.capacity_aborts.add(d.capacity_aborts as u64);
        self.spurious_aborts.add(d.spurious_aborts as u64);
        self.swopt_fails.add(d.swopt_fails as u64);
    }

    /// Clear all recorded statistics (used with `Ale::reset_statistics`).
    pub fn reset(&self) {
        self.executions.reset();
        for c in self.attempts.iter().chain(self.successes.iter()) {
            c.reset();
        }
        self.lock_held_aborts.reset();
        self.conflict_aborts.reset();
        self.capacity_aborts.reset();
        self.spurious_aborts.reset();
        self.swopt_fails.reset();
        for t in &self.success_time {
            t.reset();
        }
        self.exec_time.reset();
    }

    /// Success ratio for a mode, if any attempts were recorded.
    pub fn success_ratio(&self, mode: ExecMode) -> Option<f64> {
        let a = self.attempts[mode.index()].read();
        if a == 0 {
            return None;
        }
        Some(self.successes[mode.index()].read() as f64 / a as f64)
    }
}

/// Stack-local batch of statistic events for one critical-section
/// execution — the batched arm of [`StatSink`]. The driver bumps plain
/// `u32` fields (a register increment, no shared cache line, no tick, no
/// RNG) and the exit flush folds each nonzero field into the shared
/// [`GranuleStats`] counters with a single [`StatCounter::add`]
/// (normal exit or panic). Only selected where `tick` is a no-op — real
/// hardware, or the forced-batch self-test mutation — so recording has no
/// simulator side effects at all.
#[derive(Debug, Default)]
pub struct StatDelta {
    pub executions: u32,
    pub attempts: [u32; 3],
    pub successes: [u32; 3],
    pub lock_held_aborts: u32,
    pub conflict_aborts: u32,
    pub capacity_aborts: u32,
    pub spurious_aborts: u32,
    pub swopt_fails: u32,
}

impl StatDelta {
    #[inline]
    fn bump(v: &mut u32) {
        *v = v.saturating_add(1);
    }

    #[inline]
    pub fn record_execution(&mut self) {
        Self::bump(&mut self.executions);
    }

    #[inline]
    pub fn record_attempt(&mut self, mode: ExecMode) {
        Self::bump(&mut self.attempts[mode.index()]);
    }

    #[inline]
    pub fn record_success(&mut self, mode: ExecMode) {
        Self::bump(&mut self.successes[mode.index()]);
    }

    #[inline]
    pub fn record_lock_held_abort(&mut self) {
        Self::bump(&mut self.lock_held_aborts);
    }

    #[inline]
    pub fn record_conflict_abort(&mut self) {
        Self::bump(&mut self.conflict_aborts);
    }

    #[inline]
    pub fn record_capacity_abort(&mut self) {
        Self::bump(&mut self.capacity_aborts);
    }

    #[inline]
    pub fn record_spurious_abort(&mut self) {
        Self::bump(&mut self.spurious_aborts);
    }

    #[inline]
    pub fn record_swopt_fail(&mut self) {
        Self::bump(&mut self.swopt_fails);
    }
}

/// Where the critical-section driver records statistic events.
///
/// * **Direct** — one shared [`StatCounter::inc`] per event, the legacy
///   path, selected under the deterministic simulator. `inc`'s tick inside
///   its CAS loop is a scheduler yield point, and a contended retry ticks
///   again (plus a backoff tick), so the *number* of ticks depends on
///   cross-lane timing. Batching those events would delete yield points
///   and shift every simulated schedule — pinned ale-check digests would
///   drift. Keeping the per-event path under sim makes same-seed digest
///   bit-identity hold by construction.
/// * **Batched** — events bump a stack-local [`StatDelta`] and the exit
///   flush publishes the whole batch with one [`StatCounter::add`] per
///   nonzero field. Selected on real hardware, where `tick` is a no-op
///   and eliminating the per-event shared CAS is the entire win.
///
/// The `mut-stat-batch-lost` self-test mutation forces the batched path
/// even under simulation so ale-check can exercise the flush and prove
/// the stat-parity oracle notices a dropped executions delta.
#[derive(Debug)]
pub enum StatSink<'a> {
    Direct {
        stats: &'a GranuleStats,
    },
    Batched {
        stats: &'a GranuleStats,
        delta: StatDelta,
    },
}

/// Bench-only override: when set, simulated lanes also use the batched
/// sink (see [`StatSink::force_batched`]).
static FORCE_BATCHED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

impl<'a> StatSink<'a> {
    /// Opt simulated lanes into the **batched** sink, process-wide.
    ///
    /// The Direct arm exists purely to keep pinned ale-check digests
    /// bit-identical; it charges one `tick(Event::Cas)` per recorded event
    /// that the shipped (real-hardware) fast path no longer pays.
    /// Benchmarks that want the simulator to price the *shipped* path —
    /// e.g. the `per_cs_overhead` trajectory cell — set this around their
    /// measurement and restore it after. ale-check must never set it:
    /// batching deletes yield points and would drift every pinned digest.
    pub fn force_batched(on: bool) {
        FORCE_BATCHED.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Pick the arm for this execution: batched wherever ticks are no-ops
    /// (outside a simulated lane), per-event under the simulator.
    #[inline]
    pub fn new(stats: &'a GranuleStats) -> Self {
        if cfg!(feature = "mut-stat-batch-lost")
            || !ale_vtime::is_simulated()
            || FORCE_BATCHED.load(std::sync::atomic::Ordering::Relaxed)
        {
            StatSink::Batched {
                stats,
                delta: StatDelta::default(),
            }
        } else {
            StatSink::Direct { stats }
        }
    }

    #[inline]
    pub fn record_execution(&mut self, rng: &mut Rng) {
        match self {
            StatSink::Direct { stats } => stats.executions.inc(rng),
            StatSink::Batched { delta, .. } => delta.record_execution(),
        }
    }

    #[inline]
    pub fn record_attempt(&mut self, mode: ExecMode, rng: &mut Rng) {
        match self {
            StatSink::Direct { stats } => stats.record_attempt(mode, rng),
            StatSink::Batched { delta, .. } => delta.record_attempt(mode),
        }
    }

    #[inline]
    pub fn record_success(&mut self, mode: ExecMode, rng: &mut Rng) {
        match self {
            StatSink::Direct { stats } => stats.record_success(mode, rng),
            StatSink::Batched { delta, .. } => delta.record_success(mode),
        }
    }

    #[inline]
    pub fn record_lock_held_abort(&mut self, rng: &mut Rng) {
        match self {
            StatSink::Direct { stats } => stats.lock_held_aborts.inc(rng),
            StatSink::Batched { delta, .. } => delta.record_lock_held_abort(),
        }
    }

    #[inline]
    pub fn record_conflict_abort(&mut self, rng: &mut Rng) {
        match self {
            StatSink::Direct { stats } => stats.conflict_aborts.inc(rng),
            StatSink::Batched { delta, .. } => delta.record_conflict_abort(),
        }
    }

    #[inline]
    pub fn record_capacity_abort(&mut self, rng: &mut Rng) {
        match self {
            StatSink::Direct { stats } => stats.capacity_aborts.inc(rng),
            StatSink::Batched { delta, .. } => delta.record_capacity_abort(),
        }
    }

    #[inline]
    pub fn record_spurious_abort(&mut self, rng: &mut Rng) {
        match self {
            StatSink::Direct { stats } => stats.spurious_aborts.inc(rng),
            StatSink::Batched { delta, .. } => delta.record_spurious_abort(),
        }
    }

    #[inline]
    pub fn record_swopt_fail(&mut self, rng: &mut Rng) {
        match self {
            StatSink::Direct { stats } => stats.swopt_fails.inc(rng),
            StatSink::Batched { delta, .. } => delta.record_swopt_fail(),
        }
    }

    /// Publish any pending batched delta to the shared counters and clear
    /// it. Direct mode has nothing pending.
    pub fn flush(&mut self) {
        if let StatSink::Batched { stats, delta } = self {
            stats.apply_delta(delta);
            *delta = StatDelta::default();
        }
    }
}

/// Plan-word bit layout (see DESIGN.md §14): budgets in the low half,
/// plan flags at 32/33, absorbed-capability bits and the valid bit at the
/// top. Budgets above [`PLAN_ATTEMPT_MAX`] are never cached.
const PLAN_VALID: u64 = 1 << 63;
const PLAN_CAP_HTM: u64 = 1 << 62;
const PLAN_CAP_SWOPT: u64 = 1 << 61;
const PLAN_GROUPING: u64 = 1 << 32;
const PLAN_MEASURE: u64 = 1 << 33;
const PLAN_ATTEMPT_MAX: u32 = 0x3FFF;

/// The capability bits an execution with `caps` needs to find absorbed in
/// a cached word before trusting it (a capability the policy has not yet
/// *seen* may carry plan-changing side effects — the adaptive policy's
/// sticky `seen_htm`/`seen_swopt` marks — so it must take the slow path).
#[inline]
fn caps_bits(caps: ModeCaps) -> u64 {
    (if caps.htm { PLAN_CAP_HTM } else { 0 }) | (if caps.swopt { PLAN_CAP_SWOPT } else { 0 })
}

/// The precomputed "current mode + budget" word behind the one-branch
/// mode decision. The fast path is a single relaxed-ish load plus one
/// predictable branch ([`PlanCache::cached`]); the slow path re-runs
/// `Policy::plan` and republishes ([`PlanCache::publish`]). Invalidation
/// (phase transitions, breaker edges, `reset`) bumps the epoch *then*
/// clears the word; publishers verify the epoch after their store and
/// self-invalidate on a lost race, so a stale plan can never stick.
#[derive(Debug, Default)]
pub struct PlanCache {
    word: AtomicU64,
    epoch: AtomicU64,
}

impl PlanCache {
    /// The one-branch fast path: returns the cached plan iff the word is
    /// valid *and* every capability of this execution has been absorbed by
    /// a previous slow-path `plan` call. No ticks, no RNG — skipping the
    /// policy call is invisible to the simulator (both policies' `plan`
    /// is tick- and RNG-free), so cached and uncached executions schedule
    /// identically.
    #[inline]
    pub fn cached(&self, caps: ModeCaps) -> Option<AttemptPlan> {
        let word = self.word.load(Ordering::Acquire);
        let need = PLAN_VALID | caps_bits(caps);
        if word & need == need {
            Some(
                AttemptPlan {
                    htm_attempts: (word as u32) & PLAN_ATTEMPT_MAX,
                    swopt_attempts: ((word >> 16) as u32) & PLAN_ATTEMPT_MAX,
                    use_grouping: word & PLAN_GROUPING != 0,
                    measure: word & PLAN_MEASURE != 0,
                }
                .clamped(caps),
            )
        } else {
            None
        }
    }

    /// Start a publish attempt: snapshot the epoch *before* computing the
    /// plan, so a concurrent invalidation anywhere in between is detected.
    #[inline]
    pub fn begin_publish(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Publish a freshly-computed (unclamped) plan for the capabilities it
    /// was computed under, unless an invalidation raced us — then the word
    /// is re-cleared and the next execution replans.
    pub fn publish(&self, plan: AttemptPlan, caps: ModeCaps, epoch: u64) {
        if plan.htm_attempts > PLAN_ATTEMPT_MAX || plan.swopt_attempts > PLAN_ATTEMPT_MAX {
            return;
        }
        let word = PLAN_VALID
            | caps_bits(caps)
            | if plan.use_grouping { PLAN_GROUPING } else { 0 }
            | if plan.measure { PLAN_MEASURE } else { 0 }
            | ((plan.swopt_attempts as u64) << 16)
            | plan.htm_attempts as u64;
        self.word.store(word, Ordering::SeqCst);
        if self.epoch.load(Ordering::SeqCst) != epoch {
            self.invalidate();
        }
    }

    /// Drop the cached word: the next execution takes the slow path. The
    /// epoch bump comes first so an in-flight publisher that computed its
    /// plan from pre-invalidation state cannot survive the race.
    pub fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.word.store(0, Ordering::SeqCst);
    }
}

/// Per-(lock, context) metadata: statistics plus a policy-owned state blob.
pub struct Granule {
    pub context: ContextId,
    /// Scope labels of the context at creation time (outermost first).
    pub labels: Vec<&'static str>,
    /// Padded (DESIGN.md §14): the stat block is written by every
    /// completing execution's flush and must not share a line with the
    /// plan word read on every entry.
    pub stats: CachePadded<GranuleStats>,
    /// The packed mode-decision word, on its own line: read-mostly, and a
    /// neighbour's flush must not invalidate it.
    pub plan_cache: CachePadded<PlanCache>,
    /// Opaque per-granule policy state (e.g. the adaptive policy's learned
    /// X values and histograms), created by `Policy::make_granule_state`.
    pub policy_state: Box<dyn Any + Send + Sync>,
    /// Abort-storm circuit breaker (present when
    /// [`AleConfig::with_breaker`](crate::AleConfig::with_breaker) is set).
    pub breaker: Option<StormBreaker>,
}

impl Granule {
    pub fn describe(&self) -> String {
        if self.labels.is_empty() {
            "<root>".to_string()
        } else {
            self.labels.join(" / ")
        }
    }
}

impl std::fmt::Debug for Granule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Granule")
            .field("context", &self.context)
            .field("labels", &self.labels)
            .finish()
    }
}

/// Append-only granule table with lock-free lookup.
pub struct GranuleTable {
    slots: Vec<AtomicPtr<Granule>>,
    /// Owns the granules; also serialises insertion.
    owned: TickMutex<Vec<Arc<Granule>>>,
    /// When set, every granule created by this table gets its own
    /// [`StormBreaker`] with this configuration.
    breaker_cfg: Option<BreakerConfig>,
}

impl Default for GranuleTable {
    fn default() -> Self {
        Self::new()
    }
}

impl GranuleTable {
    pub fn new() -> Self {
        Self::with_breaker_config(None)
    }

    /// A table whose granules each carry an abort-storm circuit breaker.
    pub fn with_breaker_config(breaker_cfg: Option<BreakerConfig>) -> Self {
        GranuleTable {
            slots: (0..MAX_GRANULES_PER_LOCK)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            owned: TickMutex::new(Vec::new()),
            breaker_cfg,
        }
    }

    /// Find the granule for `context`, creating it on first sight (with
    /// policy state from `make_state`).
    pub fn lookup(
        &self,
        context: ContextId,
        make_state: impl FnOnce() -> Box<dyn Any + Send + Sync>,
    ) -> Arc<Granule> {
        tick(Event::SharedLoad);
        for slot in &self.slots {
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                break;
            }
            // SAFETY: slot pointers reference granules owned (and never
            // dropped) by `self.owned` for the table's lifetime.
            let g = unsafe { &*p };
            if g.context == context {
                // SAFETY: as above; the Arc in `owned` keeps the count ≥ 1.
                unsafe { Arc::increment_strong_count(p) };
                return unsafe { Arc::from_raw(p) };
            }
        }
        self.insert(context, make_state)
    }

    fn insert(
        &self,
        context: ContextId,
        make_state: impl FnOnce() -> Box<dyn Any + Send + Sync>,
    ) -> Arc<Granule> {
        let mut owned = self.owned.lock();
        // Re-scan under the lock (we may have raced another inserter).
        for g in owned.iter() {
            if g.context == context {
                return Arc::clone(g);
            }
        }
        let granule = Arc::new(Granule {
            context,
            labels: current_context_labels(),
            stats: CachePadded::new(GranuleStats::default()),
            plan_cache: CachePadded::new(PlanCache::default()),
            policy_state: make_state(),
            breaker: self.breaker_cfg.clone().map(StormBreaker::new),
        });
        if let Some(b) = &granule.breaker {
            // Granule creation is once per (lock, context); interning here
            // keeps label lookups off the breaker's edge paths.
            if ale_trace::is_enabled() {
                b.set_trace_label(ale_trace::label_id(&granule.describe()));
            }
        }
        if owned.len() >= MAX_GRANULES_PER_LOCK {
            // Overflow: merge into the last granule rather than grow.
            return Arc::clone(owned.last().expect("table full implies nonempty"));
        }
        let idx = owned.len();
        owned.push(Arc::clone(&granule));
        self.slots[idx].store(Arc::as_ptr(&granule) as *mut Granule, Ordering::Release);
        granule
    }

    /// Snapshot of all granules (for reports and phase transitions).
    pub fn all(&self) -> Vec<Arc<Granule>> {
        self.owned.lock().clone()
    }

    /// Invalidate every granule's cached plan word (phase transitions,
    /// policy resets). Deliberately tick-free — no `TickMutex`, no
    /// `tick` — so under the serialising simulator the sweep completes
    /// without a scheduler yield point: no lane can run a critical section
    /// between a policy's state change and the sweep and observe a stale
    /// plan. Granules inserted after the sweep started were created with
    /// an invalid word and replan from current state anyway.
    pub fn invalidate_plans(&self) {
        for slot in &self.slots {
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                break;
            }
            // SAFETY: slot pointers reference granules owned (and never
            // dropped) by `self.owned` for the table's lifetime.
            unsafe { &*p }.plan_cache.invalidate();
        }
    }

    pub fn len(&self) -> usize {
        self.owned.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_state() -> Box<dyn Any + Send + Sync> {
        Box::new(())
    }

    #[test]
    fn lookup_creates_once_and_finds_after() {
        let t = GranuleTable::new();
        let a = t.lookup(ContextId(1), no_state);
        let b = t.lookup(ContextId(1), no_state);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.len(), 1);
        let c = t.lookup(ContextId(2), no_state);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(t.len(), 2);
        assert_eq!(t.all().len(), 2);
    }

    #[test]
    fn overflow_merges_into_last_granule() {
        let t = GranuleTable::new();
        for i in 0..MAX_GRANULES_PER_LOCK as u64 {
            t.lookup(ContextId(i), no_state);
        }
        assert_eq!(t.len(), MAX_GRANULES_PER_LOCK);
        let extra = t.lookup(ContextId(10_000), no_state);
        assert_eq!(t.len(), MAX_GRANULES_PER_LOCK, "table must not grow");
        assert_eq!(extra.context, ContextId(MAX_GRANULES_PER_LOCK as u64 - 1));
    }

    #[test]
    fn concurrent_lookup_yields_one_granule_per_context() {
        let t = GranuleTable::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..100u64 {
                        let g = t.lookup(ContextId(i % 10), no_state);
                        assert_eq!(g.context, ContextId(i % 10));
                    }
                });
            }
        });
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn stats_record_and_ratio() {
        let s = GranuleStats::default();
        let mut rng = Rng::new(1);
        assert_eq!(s.success_ratio(ExecMode::Htm), None);
        for _ in 0..10 {
            s.record_attempt(ExecMode::Htm, &mut rng);
        }
        for _ in 0..7 {
            s.record_success(ExecMode::Htm, &mut rng);
        }
        let r = s.success_ratio(ExecMode::Htm).unwrap();
        assert!((r - 0.7).abs() < 1e-9, "{r}");
        assert_eq!(s.success_ratio(ExecMode::SwOpt), None);
    }

    #[test]
    fn plan_cache_round_trips_and_gates_on_unabsorbed_caps() {
        let pc = PlanCache::default();
        let htm_only = ModeCaps {
            htm: true,
            swopt: false,
        };
        assert_eq!(pc.cached(htm_only), None, "fresh cache must miss");
        let plan = AttemptPlan {
            htm_attempts: 3,
            swopt_attempts: 0,
            use_grouping: false,
            measure: true,
        };
        let e = pc.begin_publish();
        pc.publish(plan, htm_only, e);
        assert_eq!(pc.cached(htm_only), Some(plan));
        // A capability no slow-path plan call has absorbed yet → miss (the
        // policy may have sticky per-capability side effects to run).
        let both = ModeCaps {
            htm: true,
            swopt: true,
        };
        assert_eq!(pc.cached(both), None, "unabsorbed capability must miss");
        // A subset of the absorbed capabilities hits, clamped.
        let neither = ModeCaps {
            htm: false,
            swopt: false,
        };
        let hit = pc.cached(neither).expect("subset caps must hit");
        assert_eq!((hit.htm_attempts, hit.swopt_attempts), (0, 0));
        assert!(hit.measure, "non-budget plan bits survive the clamp");
        pc.invalidate();
        assert_eq!(pc.cached(htm_only), None, "invalidation must clear");
    }

    #[test]
    fn plan_cache_publish_loses_to_a_racing_invalidation() {
        let pc = PlanCache::default();
        let caps = ModeCaps {
            htm: true,
            swopt: true,
        };
        let e = pc.begin_publish();
        pc.invalidate(); // a phase transition lands mid-publish
        pc.publish(AttemptPlan::lock_only(), caps, e);
        assert_eq!(pc.cached(caps), None, "a stale publish must not stick");
    }

    #[test]
    fn oversized_budgets_are_never_cached() {
        let pc = PlanCache::default();
        let caps = ModeCaps {
            htm: true,
            swopt: true,
        };
        let e = pc.begin_publish();
        pc.publish(
            AttemptPlan {
                htm_attempts: 0x4000,
                swopt_attempts: 1,
                use_grouping: false,
                measure: false,
            },
            caps,
            e,
        );
        assert_eq!(
            pc.cached(caps),
            None,
            "unpackable budget must stay slow-path"
        );
    }

    #[test]
    fn stat_delta_flush_matches_per_event_totals() {
        let batched = GranuleStats::default();
        let reference = GranuleStats::default();
        let mut rng = Rng::new(5);
        let mut d = StatDelta::default();
        for _ in 0..9 {
            d.record_attempt(ExecMode::Htm);
            reference.record_attempt(ExecMode::Htm, &mut rng);
        }
        for _ in 0..4 {
            d.record_success(ExecMode::SwOpt);
            reference.record_success(ExecMode::SwOpt, &mut rng);
        }
        d.record_execution();
        reference.executions.inc(&mut rng);
        d.record_conflict_abort();
        reference.conflict_aborts.inc(&mut rng);
        d.record_swopt_fail();
        reference.swopt_fails.inc(&mut rng);
        batched.apply_delta(&d);
        assert_eq!(batched.executions.read(), reference.executions.read());
        for i in 0..3 {
            assert_eq!(batched.attempts[i].read(), reference.attempts[i].read());
            assert_eq!(batched.successes[i].read(), reference.successes[i].read());
        }
        assert_eq!(
            batched.conflict_aborts.read(),
            reference.conflict_aborts.read()
        );
        assert_eq!(batched.swopt_fails.read(), reference.swopt_fails.read());
        // Flushing a default (all-zero) delta is free and exact.
        batched.apply_delta(&StatDelta::default());
        assert_eq!(batched.executions.read(), reference.executions.read());
    }

    #[test]
    fn stat_sink_arms_agree_on_totals() {
        let direct_stats = GranuleStats::default();
        let batched_stats = GranuleStats::default();
        let mut rng = Rng::new(9);
        let mut direct = StatSink::Direct {
            stats: &direct_stats,
        };
        let mut batched = StatSink::Batched {
            stats: &batched_stats,
            delta: StatDelta::default(),
        };
        for sink in [&mut direct, &mut batched] {
            for _ in 0..6 {
                sink.record_attempt(ExecMode::Htm, &mut rng);
            }
            sink.record_conflict_abort(&mut rng);
            sink.record_success(ExecMode::Htm, &mut rng);
            sink.record_execution(&mut rng);
            sink.flush();
            sink.flush(); // idempotent: the delta cleared on first flush
        }
        assert_eq!(
            direct_stats.attempts[ExecMode::Htm.index()].read(),
            batched_stats.attempts[ExecMode::Htm.index()].read()
        );
        assert_eq!(
            direct_stats.conflict_aborts.read(),
            batched_stats.conflict_aborts.read()
        );
        assert_eq!(
            direct_stats.executions.read(),
            batched_stats.executions.read()
        );
        assert_eq!(batched_stats.executions.read(), 1);
    }

    #[test]
    fn invalidate_plans_sweeps_every_slot() {
        let t = GranuleTable::new();
        let caps = ModeCaps {
            htm: true,
            swopt: true,
        };
        let mut granules = Vec::new();
        for i in 0..5u64 {
            let g = t.lookup(ContextId(i), no_state);
            let e = g.plan_cache.begin_publish();
            g.plan_cache.publish(AttemptPlan::lock_only(), caps, e);
            assert!(g.plan_cache.cached(caps).is_some());
            granules.push(g);
        }
        t.invalidate_plans();
        for g in &granules {
            assert_eq!(g.plan_cache.cached(caps), None);
        }
    }

    #[test]
    fn granule_describe_uses_labels() {
        let t = GranuleTable::new();
        let g = t.lookup(ContextId(9), no_state);
        assert_eq!(g.describe(), "<root>", "no scopes entered in this test");
    }
}
