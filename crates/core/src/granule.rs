//! Granules: per-(lock, context) metadata and statistics (§3.4, §4).
//!
//! "The library associates granule metadata with each ⟨lock, context⟩ pair
//! with which a critical section is executed, which is used to record
//! information and statistics about these executions." Policies read these
//! statistics to choose execution modes; reports render them for humans.
//!
//! The granule table is append-only with a lock-free read path (an array of
//! `AtomicPtr` slots scanned linearly): granule lookup happens on *every*
//! critical-section execution, so it must not serialise threads.

use std::any::Any;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use ale_htm::{BreakerConfig, StormBreaker};
use ale_sync::{SampledTime, StatCounter, TickMutex};
use ale_vtime::{tick, Event, Rng};

use crate::mode::ExecMode;
use crate::scope::{current_context_labels, ContextId};

/// Maximum distinct contexts per lock. Contexts are static program
/// structure (scope stacks), so a small fixed budget is plenty; overflow
/// falls back to the last slot's granule (merging statistics, which is
/// benign and reported).
pub const MAX_GRANULES_PER_LOCK: usize = 64;

/// Statistics the library records per granule (§3.4): execution counts,
/// per-mode attempt/success counts, abort breakdown, and timing.
#[derive(Debug, Default)]
pub struct GranuleStats {
    /// Completed critical-section executions.
    pub executions: StatCounter,
    /// Attempts per mode (HTM / SWOpt / Lock), indexed by `ExecMode::index`.
    pub attempts: [StatCounter; 3],
    /// Successes per mode.
    pub successes: [StatCounter; 3],
    /// HTM aborts attributed to a concurrent lock acquisition — accounted
    /// "in a much lighter way than others" by the retry budget (§4).
    pub lock_held_aborts: StatCounter,
    /// HTM aborts by data conflict.
    pub conflict_aborts: StatCounter,
    /// HTM aborts by capacity overflow.
    pub capacity_aborts: StatCounter,
    /// HTM aborts by micro-architectural noise.
    pub spurious_aborts: StatCounter,
    /// SWOpt attempts that detected interference and retried.
    pub swopt_fails: StatCounter,
    /// Mean successful-execution time per mode (sampled ~3 %, or 100 %
    /// during adaptive learning phases).
    pub success_time: [SampledTime; 3],
    /// Mean whole-execution time (including failed attempts).
    pub exec_time: SampledTime,
}

impl GranuleStats {
    pub fn record_attempt(&self, mode: ExecMode, rng: &mut Rng) {
        self.attempts[mode.index()].inc(rng);
    }

    pub fn record_success(&self, mode: ExecMode, rng: &mut Rng) {
        self.successes[mode.index()].inc(rng);
    }

    /// Clear all recorded statistics (used with `Ale::reset_statistics`).
    pub fn reset(&self) {
        self.executions.reset();
        for c in self.attempts.iter().chain(self.successes.iter()) {
            c.reset();
        }
        self.lock_held_aborts.reset();
        self.conflict_aborts.reset();
        self.capacity_aborts.reset();
        self.spurious_aborts.reset();
        self.swopt_fails.reset();
        for t in &self.success_time {
            t.reset();
        }
        self.exec_time.reset();
    }

    /// Success ratio for a mode, if any attempts were recorded.
    pub fn success_ratio(&self, mode: ExecMode) -> Option<f64> {
        let a = self.attempts[mode.index()].read();
        if a == 0 {
            return None;
        }
        Some(self.successes[mode.index()].read() as f64 / a as f64)
    }
}

/// Per-(lock, context) metadata: statistics plus a policy-owned state blob.
pub struct Granule {
    pub context: ContextId,
    /// Scope labels of the context at creation time (outermost first).
    pub labels: Vec<&'static str>,
    pub stats: GranuleStats,
    /// Opaque per-granule policy state (e.g. the adaptive policy's learned
    /// X values and histograms), created by `Policy::make_granule_state`.
    pub policy_state: Box<dyn Any + Send + Sync>,
    /// Abort-storm circuit breaker (present when
    /// [`AleConfig::with_breaker`](crate::AleConfig::with_breaker) is set).
    pub breaker: Option<StormBreaker>,
}

impl Granule {
    pub fn describe(&self) -> String {
        if self.labels.is_empty() {
            "<root>".to_string()
        } else {
            self.labels.join(" / ")
        }
    }
}

impl std::fmt::Debug for Granule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Granule")
            .field("context", &self.context)
            .field("labels", &self.labels)
            .finish()
    }
}

/// Append-only granule table with lock-free lookup.
pub struct GranuleTable {
    slots: Vec<AtomicPtr<Granule>>,
    /// Owns the granules; also serialises insertion.
    owned: TickMutex<Vec<Arc<Granule>>>,
    /// When set, every granule created by this table gets its own
    /// [`StormBreaker`] with this configuration.
    breaker_cfg: Option<BreakerConfig>,
}

impl Default for GranuleTable {
    fn default() -> Self {
        Self::new()
    }
}

impl GranuleTable {
    pub fn new() -> Self {
        Self::with_breaker_config(None)
    }

    /// A table whose granules each carry an abort-storm circuit breaker.
    pub fn with_breaker_config(breaker_cfg: Option<BreakerConfig>) -> Self {
        GranuleTable {
            slots: (0..MAX_GRANULES_PER_LOCK)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            owned: TickMutex::new(Vec::new()),
            breaker_cfg,
        }
    }

    /// Find the granule for `context`, creating it on first sight (with
    /// policy state from `make_state`).
    pub fn lookup(
        &self,
        context: ContextId,
        make_state: impl FnOnce() -> Box<dyn Any + Send + Sync>,
    ) -> Arc<Granule> {
        tick(Event::SharedLoad);
        for slot in &self.slots {
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                break;
            }
            // SAFETY: slot pointers reference granules owned (and never
            // dropped) by `self.owned` for the table's lifetime.
            let g = unsafe { &*p };
            if g.context == context {
                // SAFETY: as above; the Arc in `owned` keeps the count ≥ 1.
                unsafe { Arc::increment_strong_count(p) };
                return unsafe { Arc::from_raw(p) };
            }
        }
        self.insert(context, make_state)
    }

    fn insert(
        &self,
        context: ContextId,
        make_state: impl FnOnce() -> Box<dyn Any + Send + Sync>,
    ) -> Arc<Granule> {
        let mut owned = self.owned.lock();
        // Re-scan under the lock (we may have raced another inserter).
        for g in owned.iter() {
            if g.context == context {
                return Arc::clone(g);
            }
        }
        let granule = Arc::new(Granule {
            context,
            labels: current_context_labels(),
            stats: GranuleStats::default(),
            policy_state: make_state(),
            breaker: self.breaker_cfg.clone().map(StormBreaker::new),
        });
        if let Some(b) = &granule.breaker {
            // Granule creation is once per (lock, context); interning here
            // keeps label lookups off the breaker's edge paths.
            if ale_trace::is_enabled() {
                b.set_trace_label(ale_trace::label_id(&granule.describe()));
            }
        }
        if owned.len() >= MAX_GRANULES_PER_LOCK {
            // Overflow: merge into the last granule rather than grow.
            return Arc::clone(owned.last().expect("table full implies nonempty"));
        }
        let idx = owned.len();
        owned.push(Arc::clone(&granule));
        self.slots[idx].store(Arc::as_ptr(&granule) as *mut Granule, Ordering::Release);
        granule
    }

    /// Snapshot of all granules (for reports and phase transitions).
    pub fn all(&self) -> Vec<Arc<Granule>> {
        self.owned.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.owned.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_state() -> Box<dyn Any + Send + Sync> {
        Box::new(())
    }

    #[test]
    fn lookup_creates_once_and_finds_after() {
        let t = GranuleTable::new();
        let a = t.lookup(ContextId(1), no_state);
        let b = t.lookup(ContextId(1), no_state);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.len(), 1);
        let c = t.lookup(ContextId(2), no_state);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(t.len(), 2);
        assert_eq!(t.all().len(), 2);
    }

    #[test]
    fn overflow_merges_into_last_granule() {
        let t = GranuleTable::new();
        for i in 0..MAX_GRANULES_PER_LOCK as u64 {
            t.lookup(ContextId(i), no_state);
        }
        assert_eq!(t.len(), MAX_GRANULES_PER_LOCK);
        let extra = t.lookup(ContextId(10_000), no_state);
        assert_eq!(t.len(), MAX_GRANULES_PER_LOCK, "table must not grow");
        assert_eq!(extra.context, ContextId(MAX_GRANULES_PER_LOCK as u64 - 1));
    }

    #[test]
    fn concurrent_lookup_yields_one_granule_per_context() {
        let t = GranuleTable::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..100u64 {
                        let g = t.lookup(ContextId(i % 10), no_state);
                        assert_eq!(g.context, ContextId(i % 10));
                    }
                });
            }
        });
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn stats_record_and_ratio() {
        let s = GranuleStats::default();
        let mut rng = Rng::new(1);
        assert_eq!(s.success_ratio(ExecMode::Htm), None);
        for _ in 0..10 {
            s.record_attempt(ExecMode::Htm, &mut rng);
        }
        for _ in 0..7 {
            s.record_success(ExecMode::Htm, &mut rng);
        }
        let r = s.success_ratio(ExecMode::Htm).unwrap();
        assert!((r - 0.7).abs() < 1e-9, "{r}");
        assert_eq!(s.success_ratio(ExecMode::SwOpt), None);
    }

    #[test]
    fn granule_describe_uses_labels() {
        let t = GranuleTable::new();
        let g = t.lookup(ContextId(9), no_state);
        assert_eq!(g.describe(), "<root>", "no scopes entered in this test");
    }
}
