//! Execution modes and mode progressions.

/// How a critical-section execution attempt runs (§1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Transactional Lock Elision: inside a hardware transaction, with the
    /// lock checked-and-subscribed, without acquiring it.
    Htm,
    /// Optimistic software execution: run the programmer-supplied SWOpt
    /// path, detecting interference via explicit version numbers.
    SwOpt,
    /// Acquire the lock (the always-correct fallback).
    Lock,
}

impl ExecMode {
    /// Dense index for per-mode statistics arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ExecMode::Htm => 0,
            ExecMode::SwOpt => 1,
            ExecMode::Lock => 2,
        }
    }

    pub const ALL: [ExecMode; 3] = [ExecMode::Htm, ExecMode::SwOpt, ExecMode::Lock];

    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Htm => "HTM",
            ExecMode::SwOpt => "SWOpt",
            ExecMode::Lock => "Lock",
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A mode progression: which modes are tried, in the fixed order
/// HTM → SWOpt → Lock (§4.2). The adaptive policy runs one learning phase
/// per available progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Progression {
    /// Lock only.
    LockOnly,
    /// SWOpt, then Lock ("SL").
    SwOptLock,
    /// HTM, then Lock ("HL").
    HtmLock,
    /// HTM, then SWOpt, then Lock ("All").
    All,
}

impl Progression {
    #[inline]
    pub fn uses_htm(self) -> bool {
        matches!(self, Progression::HtmLock | Progression::All)
    }

    #[inline]
    pub fn uses_swopt(self) -> bool {
        matches!(self, Progression::SwOptLock | Progression::All)
    }

    /// Dense index for per-progression tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Progression::LockOnly => 0,
            Progression::SwOptLock => 1,
            Progression::HtmLock => 2,
            Progression::All => 3,
        }
    }

    pub const ALL_PROGRESSIONS: [Progression; 4] = [
        Progression::LockOnly,
        Progression::SwOptLock,
        Progression::HtmLock,
        Progression::All,
    ];

    /// The progressions available given which techniques a critical section
    /// (and the platform) support, in the paper's learning order.
    pub fn available(htm: bool, swopt: bool) -> Vec<Progression> {
        Self::ALL_PROGRESSIONS
            .into_iter()
            .filter(|p| (!p.uses_htm() || htm) && (!p.uses_swopt() || swopt))
            .collect()
    }

    /// The most capable progression for the given technique availability.
    pub fn best_available(htm: bool, swopt: bool) -> Progression {
        match (htm, swopt) {
            (true, true) => Progression::All,
            (true, false) => Progression::HtmLock,
            (false, true) => Progression::SwOptLock,
            (false, false) => Progression::LockOnly,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Progression::LockOnly => "Lock",
            Progression::SwOptLock => "SL",
            Progression::HtmLock => "HL",
            Progression::All => "All",
        }
    }
}

impl std::fmt::Display for Progression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_distinct() {
        let idx: Vec<usize> = ExecMode::ALL.iter().map(|m| m.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
        let pidx: Vec<usize> = Progression::ALL_PROGRESSIONS
            .iter()
            .map(|p| p.index())
            .collect();
        assert_eq!(pidx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn availability_filters_progressions() {
        assert_eq!(
            Progression::available(true, true),
            Progression::ALL_PROGRESSIONS.to_vec()
        );
        assert_eq!(
            Progression::available(false, true),
            vec![Progression::LockOnly, Progression::SwOptLock]
        );
        assert_eq!(
            Progression::available(true, false),
            vec![Progression::LockOnly, Progression::HtmLock]
        );
        assert_eq!(
            Progression::available(false, false),
            vec![Progression::LockOnly]
        );
    }

    #[test]
    fn best_available_matches_capabilities() {
        assert_eq!(Progression::best_available(true, true), Progression::All);
        assert_eq!(
            Progression::best_available(false, true),
            Progression::SwOptLock
        );
        assert_eq!(
            Progression::best_available(true, false),
            Progression::HtmLock
        );
        assert_eq!(
            Progression::best_available(false, false),
            Progression::LockOnly
        );
    }

    #[test]
    fn names_render() {
        assert_eq!(format!("{}", ExecMode::SwOpt), "SWOpt");
        assert_eq!(format!("{}", Progression::All), "All");
    }
}
