//! Scopes, contexts, and the `scope!` macro.
//!
//! Every ALE-enabled critical section defines a *scope* (§3.4). A thread's
//! *context* is the stack of scopes it is currently inside; statistics and
//! policy decisions are per *(lock, context)* pair, so the same source-level
//! critical section can adapt differently depending on where it was called
//! from. Programmers may also open explicit scopes (the paper's
//! `BEGIN_SCOPE("foo.CS1")`, here [`crate::Ale::with_scope`]) — the classic
//! use case is the C++ scoped-locking idiom, where one constructor-site
//! critical section serves many call sites — and may give one source
//! critical section different scopes on different branches
//! (`BEGIN_CS_NAMED`, here just passing a different `&'static ScopeId`).

use std::cell::RefCell;

/// A statically-declared scope. Identity is the static's address, so two
/// scopes are the same iff they are the same declaration.
#[derive(Debug)]
pub struct ScopeId {
    label: &'static str,
}

impl ScopeId {
    /// Usually written via the [`scope!`](crate::scope) macro.
    pub const fn new(label: &'static str) -> Self {
        ScopeId { label }
    }

    pub fn label(&self) -> &'static str {
        self.label
    }

    #[inline]
    fn key(&'static self) -> usize {
        self as *const ScopeId as usize
    }
}

/// Declare (and reference) a static [`ScopeId`] in place:
/// `lock.cs(scope!("HashMap::get"), …)`.
#[macro_export]
macro_rules! scope {
    ($label:expr) => {{
        static __ALE_SCOPE: $crate::ScopeId = $crate::ScopeId::new($label);
        &__ALE_SCOPE
    }};
}

/// A hashed identity for a full scope stack. Equal stacks hash equal; the
/// (vanishingly unlikely) collision merges two contexts' statistics, which
/// is benign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextId(pub u64);

impl ContextId {
    /// The empty context (no enclosing scopes).
    pub const ROOT: ContextId = ContextId(0xcbf2_9ce4_8422_2325); // FNV offset basis
}

thread_local! {
    static CONTEXT: RefCell<ContextStack> = const { RefCell::new(ContextStack::new()) };
}

struct ContextStack {
    /// (scope key, label, hash-of-stack-up-to-and-including-this-entry)
    entries: Vec<(usize, &'static str, u64)>,
}

impl ContextStack {
    const fn new() -> Self {
        ContextStack {
            entries: Vec::new(),
        }
    }

    fn top_hash(&self) -> u64 {
        self.entries
            .last()
            .map(|e| e.2)
            .unwrap_or(ContextId::ROOT.0)
    }

    fn push(&mut self, key: usize, label: &'static str) {
        // FNV-1a over the scope keys, incrementally.
        let mut h = self.top_hash();
        for byte in key.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.entries.push((key, label, h));
    }

    fn pop(&mut self, key: usize) {
        let top = self.entries.pop().expect("scope stack underflow");
        assert_eq!(
            top.0, key,
            "scopes must strictly nest: popped {:?}, expected {:?}",
            top.1, key
        );
    }
}

/// Current context id for the calling thread.
pub fn current_context() -> ContextId {
    CONTEXT.with(|c| ContextId(c.borrow().top_hash()))
}

/// The labels of the calling thread's scope stack, outermost first
/// (used to describe granules in reports).
pub fn current_context_labels() -> Vec<&'static str> {
    CONTEXT.with(|c| c.borrow().entries.iter().map(|e| e.1).collect())
}

/// Push `scope`, run `f`, pop. This is the engine under both explicit
/// `with_scope` and the implicit scope of every critical section.
pub fn enter_scope<R>(scope: &'static ScopeId, f: impl FnOnce() -> R) -> R {
    let key = scope.key();
    CONTEXT.with(|c| c.borrow_mut().push(key, scope.label()));
    // Pop even on unwind (HTM aborts unwind through critical sections).
    struct PopGuard(usize);
    impl Drop for PopGuard {
        fn drop(&mut self) {
            CONTEXT.with(|c| c.borrow_mut().pop(self.0));
        }
    }
    let _guard = PopGuard(key);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_context_is_stable() {
        assert_eq!(current_context(), ContextId::ROOT);
        assert_eq!(current_context_labels(), Vec::<&str>::new());
    }

    #[test]
    fn nesting_changes_and_restores_context() {
        let root = current_context();
        let a = enter_scope(scope!("a"), || {
            let in_a = current_context();
            assert_ne!(in_a, root);
            assert_eq!(current_context_labels(), vec!["a"]);
            let in_ab = enter_scope(scope!("b"), current_context);
            assert_ne!(in_ab, in_a);
            in_a
        });
        assert_eq!(current_context(), root, "context must restore after exit");
        // Re-entering the same scope reproduces the same context id.
        let a2 = enter_scope(scope!("a"), current_context);
        assert_ne!(
            a, a2,
            "distinct scope declarations differ even with equal labels"
        );
    }

    #[test]
    fn same_scope_same_context() {
        let s = scope!("shared");
        let c1 = enter_scope(s, current_context);
        let c2 = enter_scope(s, current_context);
        assert_eq!(c1, c2);
    }

    #[test]
    fn sibling_scopes_differ() {
        let c1 = enter_scope(scope!("x"), current_context);
        let c2 = enter_scope(scope!("y"), current_context);
        assert_ne!(c1, c2);
    }

    #[test]
    fn order_matters() {
        let sa = scope!("a");
        let sb = scope!("b");
        let ab = enter_scope(sa, || enter_scope(sb, current_context));
        let ba = enter_scope(sb, || enter_scope(sa, current_context));
        assert_ne!(ab, ba);
    }

    #[test]
    fn scope_pops_on_unwind() {
        let root = current_context();
        let r = std::panic::catch_unwind(|| {
            enter_scope(scope!("explodes"), || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(current_context(), root, "unwind must restore the context");
    }

    #[test]
    fn contexts_are_per_thread() {
        let outer = enter_scope(scope!("outer"), || {
            let t = std::thread::spawn(current_context);
            (current_context(), t.join().unwrap())
        });
        assert_ne!(outer.0, outer.1);
        assert_eq!(outer.1, ContextId::ROOT);
    }
}
