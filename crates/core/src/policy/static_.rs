//! The static policy (§4.2): fixed X and Y for all critical sections.
//!
//! "The static policy uses fixed values of X and Y for all critical section
//! executions. It makes up to X attempts using HTM (if available). If
//! unsuccessful it then makes up to Y attempts using the SWOpt path (if
//! available). It resorts to acquiring the lock if these attempts are also
//! unsuccessful."
//!
//! Naming matches the paper's figures: `StaticPolicy::new(10, 10)` with
//! both techniques enabled is `Static-All-10:10`; disable SWOpt at the
//! [`AleConfig`](crate::AleConfig) level to get `Static-HL-10`, etc.

use std::any::Any;

use ale_vtime::Rng;

use crate::granule::Granule;
use crate::meta::LockMeta;
use crate::policy::{AttemptPlan, ExecRecord, ModeCaps, Policy};

/// Fixed-parameter policy.
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    x: u32,
    y: u32,
    grouping: bool,
}

impl StaticPolicy {
    /// Up to `x` HTM attempts, then up to `y` SWOpt attempts, then Lock.
    pub fn new(x: u32, y: u32) -> Self {
        StaticPolicy {
            x,
            y,
            grouping: false,
        }
    }

    /// Enable the grouping mechanism under this static policy (off by
    /// default; the paper describes grouping as part of the adaptive
    /// policy, but the ablation harness wants it separable).
    pub fn with_grouping(mut self) -> Self {
        self.grouping = true;
        self
    }

    pub fn x(&self) -> u32 {
        self.x
    }

    pub fn y(&self) -> u32 {
        self.y
    }
}

impl Policy for StaticPolicy {
    fn name(&self) -> String {
        format!("Static-{}:{}", self.x, self.y)
    }

    fn make_lock_state(&self) -> Box<dyn Any + Send + Sync> {
        Box::new(())
    }

    fn make_granule_state(&self) -> Box<dyn Any + Send + Sync> {
        Box::new(())
    }

    fn plan(
        &self,
        _meta: &LockMeta,
        _granule: &Granule,
        caps: ModeCaps,
        _rng: &mut Rng,
    ) -> AttemptPlan {
        AttemptPlan {
            htm_attempts: if caps.htm { self.x } else { 0 },
            swopt_attempts: if caps.swopt { self.y } else { 0 },
            use_grouping: self.grouping,
            measure: false,
        }
    }

    fn on_complete(&self, _meta: &LockMeta, _granule: &Granule, _rec: &ExecRecord, _rng: &mut Rng) {
    }

    /// `plan` is a pure function of `(self, caps)` — no RNG, no ticks, no
    /// mutable state — and its caps-dependence is exactly `clamped`, so
    /// the subset property holds and nothing ever needs invalidating.
    fn plan_cacheable(&self) -> bool {
        true
    }

    fn describe_lock(&self, _meta: &LockMeta) -> String {
        format!("X={} Y={}", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> LockMeta {
        LockMeta::new("test", Box::new(()))
    }

    fn granule(meta: &LockMeta) -> std::sync::Arc<Granule> {
        meta.granules
            .lookup(crate::scope::current_context(), || Box::new(()))
    }

    #[test]
    fn plan_respects_caps() {
        let p = StaticPolicy::new(10, 7);
        let m = meta();
        let g = granule(&m);
        let mut rng = Rng::new(1);
        let full = p.plan(
            &m,
            &g,
            ModeCaps {
                htm: true,
                swopt: true,
            },
            &mut rng,
        );
        assert_eq!((full.htm_attempts, full.swopt_attempts), (10, 7));
        assert!(!full.measure);
        let none = p.plan(
            &m,
            &g,
            ModeCaps {
                htm: false,
                swopt: false,
            },
            &mut rng,
        );
        assert_eq!((none.htm_attempts, none.swopt_attempts), (0, 0));
    }

    #[test]
    fn name_and_describe() {
        let p = StaticPolicy::new(2, 3);
        assert_eq!(p.name(), "Static-2:3");
        assert_eq!(p.describe_lock(&meta()), "X=2 Y=3");
        assert!(
            !p.plan(
                &meta(),
                &granule(&meta()),
                ModeCaps {
                    htm: true,
                    swopt: true
                },
                &mut Rng::new(1)
            )
            .use_grouping
        );
        assert!(
            StaticPolicy::new(1, 1)
                .with_grouping()
                .plan(
                    &meta(),
                    &granule(&meta()),
                    ModeCaps {
                        htm: true,
                        swopt: true
                    },
                    &mut Rng::new(1)
                )
                .use_grouping
        );
    }
}
