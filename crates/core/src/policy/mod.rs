//! Pluggable policies (§4.2).
//!
//! "The ALE library separates common, policy-independent functionality from
//! a pluggable policy." The driver calls [`Policy::plan`] before each
//! critical-section execution to learn how many attempts to make in each
//! mode, and [`Policy::on_complete`] afterwards with what happened.
//! Per-lock and per-granule policy state is opaque to the library
//! ("their structure may be policy-dependent"): policies allocate it via
//! [`Policy::make_lock_state`] / [`Policy::make_granule_state`] and
//! downcast it back.

use std::any::Any;

use ale_vtime::Rng;

use crate::granule::Granule;
use crate::meta::LockMeta;
use crate::mode::ExecMode;

pub mod adaptive;
pub mod static_;

pub use adaptive::{AdaptivePolicy, GranuleLearning, LearningReport};
pub use static_::StaticPolicy;

/// Which techniques are usable for this particular execution (platform
/// support ∧ critical-section options ∧ nesting rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeCaps {
    pub htm: bool,
    pub swopt: bool,
}

/// The policy's instructions for one critical-section execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptPlan {
    /// X: maximum HTM attempts before moving on (0 = skip HTM).
    pub htm_attempts: u32,
    /// Y: maximum SWOpt attempts before taking the lock (0 = skip SWOpt).
    pub swopt_attempts: u32,
    /// Engage the grouping mechanism (defer conflicting executions to
    /// retrying SWOpt paths).
    pub use_grouping: bool,
    /// Measure timing for 100 % of events (learning phases) instead of the
    /// default ~3 % sampling.
    pub measure: bool,
}

impl AttemptPlan {
    /// Lock-only plan (what `plan` returns when nothing else is capable).
    pub fn lock_only() -> Self {
        AttemptPlan {
            htm_attempts: 0,
            swopt_attempts: 0,
            use_grouping: false,
            measure: false,
        }
    }

    /// Clamp the plan to the given capabilities.
    pub fn clamped(mut self, caps: ModeCaps) -> Self {
        if !caps.htm {
            self.htm_attempts = 0;
        }
        if !caps.swopt {
            self.swopt_attempts = 0;
        }
        self
    }
}

/// What actually happened during one critical-section execution.
#[derive(Debug, Clone, Default)]
pub struct ExecRecord {
    /// Mode in which the execution finally succeeded.
    pub mode: Option<ExecMode>,
    /// HTM attempts made (including the successful one, if any).
    pub htm_attempts: u32,
    /// How many of the failed HTM attempts were (estimated to be) caused by
    /// a concurrent lock acquisition — these are budgeted lightly (§4).
    pub lock_held_aborts: u32,
    /// Whether any HTM attempt died of capacity (retrying is futile).
    pub capacity_abort: bool,
    /// SWOpt attempts made (including the successful one, if any).
    pub swopt_attempts: u32,
    /// Whether HTM exhausted its budget and fell back.
    pub htm_gave_up: bool,
    /// Whether the abort-storm circuit breaker denied HTM for this
    /// execution. Such executions are not representative of HTM behaviour
    /// and the adaptive policy ignores them.
    pub breaker_tripped: bool,
    /// Whole-execution duration, when measured.
    pub exec_ns: Option<u64>,
    /// Total time burned in *failed* HTM attempts, when measured.
    pub htm_fail_ns: u64,
    /// Time from abandoning HTM to completion (the adaptive policy's
    /// "time taken after failing the maximum number of HTM attempts"
    /// lower-bound sample), when measured.
    pub fallback_ns: Option<u64>,
}

impl ExecRecord {
    /// A blank record, to be filled in as the execution progresses. The
    /// result must reach [`Policy::on_complete`]; a dropped record means a
    /// whole execution goes unobserved by the adaptive policy.
    #[must_use = "an unrecorded execution is invisible to the policy"]
    pub fn new() -> Self {
        Self::default()
    }

    /// A record for an execution that succeeded immediately in `mode` with
    /// no failed attempts (used by tests and simple fast paths).
    #[must_use = "an unrecorded execution is invisible to the policy"]
    pub fn succeeded_in(mode: ExecMode) -> Self {
        let mut rec = Self {
            mode: Some(mode),
            ..Self::default()
        };
        match mode {
            ExecMode::Htm => rec.htm_attempts = 1,
            ExecMode::SwOpt => rec.swopt_attempts = 1,
            ExecMode::Lock => {}
        }
        rec
    }
}

/// A mode-selection policy. Implementations must be cheap in `plan` — it
/// runs on every critical-section execution.
pub trait Policy: Send + Sync + 'static {
    /// Human-readable name for reports (e.g. `Static-All-10:10`).
    fn name(&self) -> String;

    /// Allocate per-lock policy state.
    fn make_lock_state(&self) -> Box<dyn Any + Send + Sync>;

    /// Allocate per-granule policy state.
    fn make_granule_state(&self) -> Box<dyn Any + Send + Sync>;

    /// Decide the attempt budgets for the next execution.
    fn plan(
        &self,
        meta: &LockMeta,
        granule: &Granule,
        caps: ModeCaps,
        rng: &mut Rng,
    ) -> AttemptPlan;

    /// Observe a completed execution.
    fn on_complete(&self, meta: &LockMeta, granule: &Granule, rec: &ExecRecord, rng: &mut Rng);

    /// May the driver cache [`plan`](Policy::plan)'s result in the
    /// granule's packed plan word and skip `plan` on the fast path?
    ///
    /// A policy may opt in only if all three hold:
    ///
    /// 1. `plan` is deterministic in (policy state, granule, caps) — no
    ///    RNG draws and no `tick`s, so a skipped call is invisible to the
    ///    virtual-time schedule;
    /// 2. for capability sets `B ⊆ A`:
    ///    `plan(A).clamped(B) == plan(B).clamped(B)` (the cached word
    ///    stores the unclamped plan and clamps per execution);
    /// 3. every state change that can alter `plan`'s result also calls
    ///    [`GranuleTable::invalidate_plans`](crate::granule::GranuleTable::invalidate_plans)
    ///    on the affected lock's granules (capability *side effects* — the
    ///    adaptive policy's sticky seen-caps marks — are instead covered
    ///    by the per-capability absorbed bits in the word itself).
    ///
    /// Defaults to `false`: a policy that never opts in never gets a valid
    /// plan word and runs exactly the pre-cache protocol.
    fn plan_cacheable(&self) -> bool {
        false
    }

    /// Forget all learned state for a lock (restart learning from scratch).
    /// Called by `Ale::reset_statistics`, e.g. after benchmark prefill.
    fn reset(&self, _meta: &LockMeta) {}

    /// Describe the policy's current decisions for a lock (reports).
    fn describe_lock(&self, _meta: &LockMeta) -> String {
        String::new()
    }

    /// Describe the policy's current decisions for a granule (reports).
    fn describe_granule(&self, _meta: &LockMeta, _granule: &Granule) -> String {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_clamp_to_caps() {
        let p = AttemptPlan {
            htm_attempts: 5,
            swopt_attempts: 7,
            use_grouping: true,
            measure: false,
        };
        let c = p.clamped(ModeCaps {
            htm: false,
            swopt: true,
        });
        assert_eq!(c.htm_attempts, 0);
        assert_eq!(c.swopt_attempts, 7);
        let c2 = p.clamped(ModeCaps {
            htm: true,
            swopt: false,
        });
        assert_eq!(c2.htm_attempts, 5);
        assert_eq!(c2.swopt_attempts, 0);
        let l = AttemptPlan::lock_only();
        assert_eq!((l.htm_attempts, l.swopt_attempts), (0, 0));
    }
}
