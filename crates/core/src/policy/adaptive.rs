//! The adaptive policy (§4.2): learns mode progressions and retry
//! parameters per granule from the library's statistics.
//!
//! Per lock, the policy walks through one **learning phase** per available
//! mode progression — `Lock`, `SWOpt+Lock`, `HTM+Lock`, `HTM+SWOpt+Lock` —
//! measuring each granule's average execution time. Phases transition when
//! *some* context completes a configured number of executions (not all:
//! rarely-used contexts must not stall learning).
//!
//! Progressions that include HTM comprise three **sub-phases** that learn
//! the X parameter (HTM attempt budget) per granule:
//!
//! 1. start with a large X and record the maximum attempts any successful
//!    execution needed; X₁ = max-seen + a small constant;
//! 2. run with X₁; build a histogram of attempts-to-success and count
//!    HTM give-ups, plus attempt-level timing; then estimate the expected
//!    execution time for every candidate X ≤ X₁ — interpolating the
//!    fallback (non-HTM) time linearly between a measured lower bound
//!    (time after failing X₁ attempts) and upper bound (the best non-HTM
//!    phase average) — and pick the minimiser;
//! 3. measure actual performance with the chosen X.
//!
//! After all progression phases a **custom phase** runs each granule with
//! its own best progression; the per-granule choices are kept only if the
//! lock-wide average beats every uniform progression, "because the
//! per-granule mode progression choices … are based on measurements taken
//! when all granules used the same mode progression."
//!
//! Y (the SWOpt budget) stays large throughout: with the grouping
//! mechanism, SWOpt "always succeeds with much fewer than Y attempts", and
//! the large value is only a livelock backstop.

use std::any::Any;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use ale_sync::TickMutex;
use ale_vtime::Rng;

use crate::granule::Granule;
use crate::meta::LockMeta;
use crate::mode::{ExecMode, Progression};
use crate::policy::{AttemptPlan, ExecRecord, ModeCaps, Policy};

/// Hard ceiling on X (histogram size).
pub const X_MAX: u32 = 32;

/// Tuning knobs; defaults follow the narrative in §4.2 and are deliberately
/// platform-independent (that is the point of the adaptive policy).
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Executions (by some granule) per non-HTM learning phase.
    pub phase_len: u64,
    /// Lengths of the three X-learning sub-phases.
    pub sub_lens: [u64; 3],
    /// Length of the custom measurement phase.
    pub custom_len: u64,
    /// The "large value" Y is set to (livelock backstop).
    pub y: u32,
    /// X used during sub-phase 1 ("start with X set to a large number").
    pub initial_x: u32,
    /// The "small constant" added to the observed maximum in sub-phase 1.
    pub x_slack: u32,
    /// Re-learning interval: after convergence, restart learning once some
    /// granule completes this many further executions. `None` (the paper's
    /// behaviour) learns once and stays. This implements the paper's
    /// stated future work — "adapt to workloads that change over time"
    /// (§6) — by periodically re-running the learning phases.
    pub relearn_after: Option<u64>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            phase_len: 600,
            sub_lens: [250, 400, 250],
            custom_len: 600,
            y: 64,
            initial_x: X_MAX,
            x_slack: 2,
            relearn_after: None,
        }
    }
}

/// Where a lock is in its learning lifecycle. Packed into one atomic word
/// so the per-execution `plan` never takes a lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Warmup while capabilities are being discovered (runs Lock-only;
    /// doubles as the LockOnly learning phase).
    Learn { prog: Progression, sub: u8 },
    /// Custom measurement phase: each granule runs its own best choice.
    Custom,
    /// Finalised: per-granule custom choices.
    FinalCustom,
    /// Finalised: one uniform progression for every granule.
    FinalUniform(Progression),
}

fn pack_stage(s: Stage) -> u64 {
    match s {
        Stage::Learn { prog, sub } => (prog.index() as u64) << 2 | (sub as u64) << 6,
        Stage::Custom => 1,
        Stage::FinalCustom => 2,
        Stage::FinalUniform(p) => 3 | (p.index() as u64) << 2,
    }
}

fn unpack_stage(w: u64) -> Stage {
    let prog = Progression::ALL_PROGRESSIONS[((w >> 2) & 0xF) as usize];
    match w & 0b11 {
        0 => Stage::Learn {
            prog,
            sub: ((w >> 6) & 0b11) as u8,
        },
        1 => Stage::Custom,
        2 => Stage::FinalCustom,
        _ => Stage::FinalUniform(prog),
    }
}

/// Per-lock adaptive state.
struct AdaptiveLock {
    stage: AtomicU64,
    /// Union of capabilities observed during the first (LockOnly) phase.
    seen_htm: AtomicU32,
    seen_swopt: AtomicU32,
    inner: TickMutex<LockLearn>,
}

#[derive(Default)]
struct LockLearn {
    /// Progressions left to learn after the current one, in paper order.
    remaining: Vec<Progression>,
    /// Lock-wide average execution time per finished progression phase.
    lock_avg: Vec<(Progression, f64)>,
    /// Lock-wide average of the custom phase.
    custom_avg: Option<f64>,
    /// Guards against double transitions.
    epoch: u64,
}

/// Per-granule adaptive state.
struct AdaptiveGranule {
    /// Executions completed in the current (sub-)phase.
    phase_execs: AtomicU64,
    /// Whole-execution time accumulated this (sub-)phase.
    sum_ns: AtomicU64,
    cnt: AtomicU64,
    /// Sub-phase 1: maximum attempts a successful HTM execution needed.
    max_attempts_seen: AtomicU32,
    /// Sub-phase 2: histogram of attempts-to-success (index = attempts).
    hist: Vec<AtomicU64>,
    /// Sub-phase 2: executions that exhausted the HTM budget.
    htm_give_ups: AtomicU64,
    /// Sub-phase 2: total ns across failed HTM attempts / their count.
    fail_ns: AtomicU64,
    fail_attempts: AtomicU64,
    /// Sub-phase 2: successful-attempt time (exec minus failed attempts).
    succ_ns: AtomicU64,
    succ_cnt: AtomicU64,
    /// Sub-phase 2: measured time after giving up on HTM (lower bound).
    fallback_ns: AtomicU64,
    fallback_cnt: AtomicU64,
    /// X to use in the current phase (hot; read by `plan`).
    phase_x: AtomicU32,
    /// Learned results per progression index.
    learned_avg_bits: [AtomicU64; 4], // f64 bits; MAX = "no data"
    learned_x: [AtomicU32; 4],
    /// This granule's choice for the custom/final-custom stages.
    custom_prog: AtomicU32,
}

impl AdaptiveGranule {
    fn new(initial_x: u32) -> Self {
        AdaptiveGranule {
            phase_execs: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            cnt: AtomicU64::new(0),
            max_attempts_seen: AtomicU32::new(0),
            hist: (0..=X_MAX as usize).map(|_| AtomicU64::new(0)).collect(),
            htm_give_ups: AtomicU64::new(0),
            fail_ns: AtomicU64::new(0),
            fail_attempts: AtomicU64::new(0),
            succ_ns: AtomicU64::new(0),
            succ_cnt: AtomicU64::new(0),
            fallback_ns: AtomicU64::new(0),
            fallback_cnt: AtomicU64::new(0),
            phase_x: AtomicU32::new(initial_x),
            learned_avg_bits: Default::default(),
            learned_x: Default::default(),
            custom_prog: AtomicU32::new(Progression::LockOnly.index() as u32),
        }
    }

    fn reset_phase(&self, initial_x_for_phase: u32) {
        self.phase_execs.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.cnt.store(0, Ordering::Relaxed);
        self.max_attempts_seen.store(0, Ordering::Relaxed);
        for h in &self.hist {
            h.store(0, Ordering::Relaxed);
        }
        self.htm_give_ups.store(0, Ordering::Relaxed);
        self.fail_ns.store(0, Ordering::Relaxed);
        self.fail_attempts.store(0, Ordering::Relaxed);
        self.succ_ns.store(0, Ordering::Relaxed);
        self.succ_cnt.store(0, Ordering::Relaxed);
        self.fallback_ns.store(0, Ordering::Relaxed);
        self.fallback_cnt.store(0, Ordering::Relaxed);
        self.phase_x.store(initial_x_for_phase, Ordering::Relaxed);
    }

    fn phase_avg(&self) -> Option<f64> {
        let c = self.cnt.load(Ordering::Relaxed);
        if c == 0 {
            return None;
        }
        Some(self.sum_ns.load(Ordering::Relaxed) as f64 / c as f64)
    }

    fn learned_avg(&self, p: Progression) -> Option<f64> {
        let bits = self.learned_avg_bits[p.index()].load(Ordering::Relaxed);
        if bits == 0 {
            None
        } else {
            Some(f64::from_bits(bits))
        }
    }

    fn set_learned(&self, p: Progression, avg: f64, x: u32) {
        self.learned_avg_bits[p.index()].store(avg.to_bits(), Ordering::Relaxed);
        self.learned_x[p.index()].store(x, Ordering::Relaxed);
    }

    /// The granule's best progression by learned average (ties to the
    /// simpler progression); defaults to LockOnly with no data.
    fn best_progression(&self) -> Progression {
        let mut best = Progression::LockOnly;
        let mut best_avg = f64::INFINITY;
        for p in Progression::ALL_PROGRESSIONS {
            if let Some(a) = self.learned_avg(p) {
                if a < best_avg {
                    best_avg = a;
                    best = p;
                }
            }
        }
        best
    }
}

/// Snapshot of what the adaptive policy has learned for one granule
/// (diagnostics; §3.4: the reports "have been invaluable in understanding
/// and improving behavior of adaptive policies").
#[derive(Debug, Clone)]
pub struct GranuleLearning {
    /// Context description (scope labels).
    pub context: String,
    /// Measured average execution time per progression (ns), where a
    /// learning phase has completed.
    pub avg_ns: [Option<f64>; 4],
    /// Learned X per progression.
    pub x: [u32; 4],
    /// The granule's current choice (custom/final stages).
    pub chosen: Progression,
    /// Attempts-to-success histogram from the most recent sub-phase 2
    /// (index = attempts; 0 unused).
    pub histogram: Vec<u64>,
}

/// Snapshot of a lock's learning state (see [`AdaptivePolicy::learning_report`]).
#[derive(Debug, Clone)]
pub struct LearningReport {
    /// Human description of the stage ("learning HL (sub-phase 2)", …).
    pub stage: String,
    /// Lock-wide average execution time per completed progression phase.
    pub lock_avg: Vec<(Progression, f64)>,
    /// Lock-wide average of the custom phase, if measured.
    pub custom_avg: Option<f64>,
    pub granules: Vec<GranuleLearning>,
}

impl std::fmt::Display for LearningReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "stage: {}", self.stage)?;
        for (p, avg) in &self.lock_avg {
            writeln!(f, "  phase {p}: lock-wide avg {avg:.0} ns")?;
        }
        if let Some(c) = self.custom_avg {
            writeln!(f, "  custom phase: lock-wide avg {c:.0} ns")?;
        }
        for g in &self.granules {
            writeln!(
                f,
                "  granule {}: chose {} (X={})",
                g.context,
                g.chosen,
                g.x[g.chosen.index()]
            )?;
            for p in Progression::ALL_PROGRESSIONS {
                if let Some(a) = g.avg_ns[p.index()] {
                    writeln!(f, "    {p}: avg {a:.0} ns (X={})", g.x[p.index()])?;
                }
            }
        }
        Ok(())
    }
}

/// The adaptive policy.
pub struct AdaptivePolicy {
    cfg: AdaptiveConfig,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptivePolicy {
    pub fn new() -> Self {
        AdaptivePolicy {
            cfg: AdaptiveConfig::default(),
        }
    }

    pub fn with_config(cfg: AdaptiveConfig) -> Self {
        AdaptivePolicy { cfg }
    }

    /// Restart learning every `executions` completions after convergence
    /// (the §6 future-work behaviour: adapt to changing workloads).
    pub fn with_relearning(mut self, executions: u64) -> Self {
        self.cfg.relearn_after = Some(executions);
        self
    }

    /// Diagnostics: what has been learned for `meta` so far. Panics if the
    /// lock was registered under a different policy.
    pub fn learning_report(&self, meta: &LockMeta) -> LearningReport {
        let state = self.lock_state(meta);
        let inner = state.inner.lock();
        let granules = meta
            .granules
            .all()
            .iter()
            .map(|g| {
                let ag = self.granule_state(g);
                let chosen =
                    Progression::ALL_PROGRESSIONS[ag.custom_prog.load(Ordering::Relaxed) as usize];
                GranuleLearning {
                    context: g.describe(),
                    avg_ns: std::array::from_fn(|i| {
                        ag.learned_avg(Progression::ALL_PROGRESSIONS[i])
                    }),
                    x: std::array::from_fn(|i| ag.learned_x[i].load(Ordering::Relaxed)),
                    chosen,
                    histogram: ag.hist.iter().map(|h| h.load(Ordering::Relaxed)).collect(),
                }
            })
            .collect();
        LearningReport {
            stage: self.describe_lock(meta),
            lock_avg: inner.lock_avg.clone(),
            custom_avg: inner.custom_avg,
            granules,
        }
    }

    fn lock_state<'a>(&self, meta: &'a LockMeta) -> &'a AdaptiveLock {
        meta.policy_state
            .downcast_ref::<AdaptiveLock>()
            .expect("lock registered under a different policy")
    }

    fn granule_state<'a>(&self, granule: &'a Granule) -> &'a AdaptiveGranule {
        granule
            .policy_state
            .downcast_ref::<AdaptiveGranule>()
            .expect("granule created under a different policy")
    }

    fn stage_target(&self, stage: Stage) -> u64 {
        match stage {
            Stage::Learn { prog, sub } if prog.uses_htm() => self.cfg.sub_lens[sub as usize],
            Stage::Learn { .. } => self.cfg.phase_len,
            Stage::Custom => self.cfg.custom_len,
            Stage::FinalCustom | Stage::FinalUniform(_) => {
                self.cfg.relearn_after.unwrap_or(u64::MAX)
            }
        }
    }

    /// §4.2's expected-execution-time model: choose X minimising the
    /// estimate built from the sub-phase-2 histogram and timing.
    fn choose_x(&self, g: &AdaptiveGranule, x1: u32, upper: f64) -> u32 {
        let succ_cnt = g.succ_cnt.load(Ordering::Relaxed);
        let give_ups = g.htm_give_ups.load(Ordering::Relaxed);
        let total = succ_cnt + give_ups;
        if total == 0 {
            return x1.max(1);
        }
        let t_fail = {
            let a = g.fail_attempts.load(Ordering::Relaxed);
            if a == 0 {
                0.0
            } else {
                g.fail_ns.load(Ordering::Relaxed) as f64 / a as f64
            }
        };
        let t_succ = if succ_cnt == 0 {
            upper
        } else {
            g.succ_ns.load(Ordering::Relaxed) as f64 / succ_cnt as f64
        };
        let lower = {
            let c = g.fallback_cnt.load(Ordering::Relaxed);
            if c == 0 {
                upper
            } else {
                g.fallback_ns.load(Ordering::Relaxed) as f64 / c as f64
            }
        };
        let hist: Vec<u64> = g.hist.iter().map(|h| h.load(Ordering::Relaxed)).collect();

        let mut best_x = 1;
        let mut best_est = f64::INFINITY;
        for x in 1..=x1.max(1) {
            // Successes within x attempts, at their empirical frequencies.
            let mut est = 0.0;
            let mut succ_within = 0u64;
            for (k, &n) in hist.iter().enumerate().take(x as usize + 1).skip(1) {
                est += n as f64 * ((k as f64 - 1.0) * t_fail + t_succ);
                succ_within += n;
            }
            // Everything else burns x failed attempts then falls back; the
            // fallback time interpolates linearly between the measured
            // bounds as x shrinks from x1 to 0.
            let fail_frac_time = lower + (upper - lower) * (x1 - x) as f64 / x1.max(1) as f64;
            let failures = total - succ_within.min(total);
            est += failures as f64 * (x as f64 * t_fail + fail_frac_time);
            est /= total as f64;
            if est < best_est {
                best_est = est;
                best_x = x;
            }
        }
        best_x
    }

    /// Try to advance the lock's learning state machine. Called when a
    /// granule hits the current stage's execution target.
    fn try_transition(&self, meta: &LockMeta, expected_stage_word: u64) {
        let state = self.lock_state(meta);
        let mut inner = state.inner.lock();
        if state.stage.load(Ordering::Acquire) != expected_stage_word {
            return; // someone else already transitioned
        }
        let stage = unpack_stage(expected_stage_word);
        let granules = meta.granules.all();

        // Helper: lock-wide weighted average of the current phase.
        let lock_wide_avg = |granules: &[std::sync::Arc<Granule>]| -> Option<f64> {
            let (mut s, mut c) = (0u128, 0u64);
            for g in granules {
                let ag = self.granule_state(g);
                s += ag.sum_ns.load(Ordering::Relaxed) as u128;
                c += ag.cnt.load(Ordering::Relaxed);
            }
            (c > 0).then(|| s as f64 / c as f64)
        };

        let next_stage = match stage {
            Stage::Learn { prog, sub } => {
                if prog.uses_htm() && sub == 0 {
                    // sub1 -> sub2: X₁ = max seen + slack, per granule.
                    for g in &granules {
                        let ag = self.granule_state(g);
                        let seen = ag.max_attempts_seen.load(Ordering::Relaxed);
                        let x1 = (seen + self.cfg.x_slack).clamp(1, X_MAX);
                        ag.reset_phase(x1);
                    }
                    Stage::Learn { prog, sub: 1 }
                } else if prog.uses_htm() && sub == 1 {
                    // sub2 -> sub3: pick X per granule via the cost model.
                    for g in &granules {
                        let ag = self.granule_state(g);
                        let x1 = ag.phase_x.load(Ordering::Relaxed);
                        let upper = self.upper_bound_ns(ag);
                        let x = self.choose_x(ag, x1, upper);
                        ag.reset_phase(x);
                    }
                    Stage::Learn { prog, sub: 2 }
                } else {
                    // A measurement (sub)phase finished: record results.
                    for g in &granules {
                        let ag = self.granule_state(g);
                        if let Some(avg) = ag.phase_avg() {
                            let x = ag.phase_x.load(Ordering::Relaxed);
                            ag.set_learned(prog, avg, x);
                        }
                    }
                    if let Some(avg) = lock_wide_avg(&granules) {
                        inner.lock_avg.push((prog, avg));
                    }
                    // First phase over: fix the remaining progression list
                    // from the capabilities seen so far.
                    if prog == Progression::LockOnly {
                        let htm = state.seen_htm.load(Ordering::Relaxed) != 0;
                        let swopt = state.seen_swopt.load(Ordering::Relaxed) != 0;
                        inner.remaining = Progression::available(htm, swopt)
                            .into_iter()
                            .filter(|&p| p != Progression::LockOnly)
                            .collect();
                    }
                    match inner.remaining.first().copied() {
                        Some(next) => {
                            inner.remaining.remove(0);
                            for g in &granules {
                                self.granule_state(g).reset_phase(self.cfg.initial_x);
                            }
                            Stage::Learn { prog: next, sub: 0 }
                        }
                        None => {
                            // All progressions learned: enter the custom
                            // phase with per-granule best choices.
                            let mut distinct = std::collections::HashSet::new();
                            for g in &granules {
                                let ag = self.granule_state(g);
                                let best = ag.best_progression();
                                ag.custom_prog.store(best.index() as u32, Ordering::Relaxed);
                                distinct.insert(best);
                                ag.reset_phase(ag.learned_x[best.index()].load(Ordering::Relaxed));
                            }
                            if distinct.len() <= 1 {
                                // Uniform anyway: finalise immediately.
                                self.finalise(&mut inner, &granules, None)
                            } else {
                                Stage::Custom
                            }
                        }
                    }
                }
            }
            Stage::Custom => {
                let custom = lock_wide_avg(&granules);
                inner.custom_avg = custom;
                self.finalise(&mut inner, &granules, custom)
            }
            s @ (Stage::FinalCustom | Stage::FinalUniform(_)) => s,
        };

        inner.epoch += 1;
        state.stage.store(pack_stage(next_stage), Ordering::Release);
        // The stage (and the per-granule phase_x/custom_prog written above)
        // feed `plan`, so every cached plan word is now stale. The sweep is
        // tick-free and must follow the stage store: a plan published from
        // pre-transition state lands before the sweep (cleared by it) or
        // races it and loses via the epoch check.
        meta.granules.invalidate_plans();
        if ale_trace::is_enabled() {
            ale_trace::emit(ale_trace::TraceEvent::phase_transition(
                ale_trace::label_id(meta.label()),
                expected_stage_word,
                pack_stage(next_stage),
            ));
        }
    }

    /// Upper bound for the §4.2 interpolation: the best measured non-HTM
    /// phase average for this granule (Lock or SWOpt+Lock), as the paper
    /// specifies.
    fn upper_bound_ns(&self, ag: &AdaptiveGranule) -> f64 {
        let lock = ag.learned_avg(Progression::LockOnly);
        let sl = ag.learned_avg(Progression::SwOptLock);
        match (lock, sl) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => 10_000.0, // no data yet: a loose default
        }
    }

    /// Decide the final configuration: per-granule custom choices iff the
    /// measured custom average beats every uniform progression.
    fn finalise(
        &self,
        inner: &mut LockLearn,
        granules: &[std::sync::Arc<Granule>],
        custom_avg: Option<f64>,
    ) -> Stage {
        let best_uniform = inner
            .lock_avg
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(p, a)| (p, a));
        match (custom_avg, best_uniform) {
            (Some(c), Some((_, u))) if c < u => Stage::FinalCustom,
            (_, Some((p, _))) => {
                // Uniform: every granule runs `p` with its learned X.
                for g in granules {
                    let ag = self.granule_state(g);
                    ag.custom_prog.store(p.index() as u32, Ordering::Relaxed);
                }
                Stage::FinalUniform(p)
            }
            (Some(_), None) => Stage::FinalCustom,
            (None, None) => Stage::FinalUniform(Progression::LockOnly),
        }
    }
}

impl Policy for AdaptivePolicy {
    fn name(&self) -> String {
        "Adaptive".to_string()
    }

    fn make_lock_state(&self) -> Box<dyn Any + Send + Sync> {
        Box::new(AdaptiveLock {
            stage: AtomicU64::new(pack_stage(Stage::Learn {
                prog: Progression::LockOnly,
                sub: 0,
            })),
            seen_htm: AtomicU32::new(0),
            seen_swopt: AtomicU32::new(0),
            inner: TickMutex::new(LockLearn::default()),
        })
    }

    fn make_granule_state(&self) -> Box<dyn Any + Send + Sync> {
        Box::new(AdaptiveGranule::new(self.cfg.initial_x))
    }

    fn plan(
        &self,
        meta: &LockMeta,
        granule: &Granule,
        caps: ModeCaps,
        _rng: &mut Rng,
    ) -> AttemptPlan {
        let state = self.lock_state(meta);
        // Capability discovery (used when the LockOnly phase ends).
        if caps.htm {
            state.seen_htm.store(1, Ordering::Relaxed);
        }
        if caps.swopt {
            state.seen_swopt.store(1, Ordering::Relaxed);
        }
        let ag = self.granule_state(granule);
        let stage = unpack_stage(state.stage.load(Ordering::Acquire));
        let (prog, x, measure) = match stage {
            Stage::Learn { prog, .. } => (prog, ag.phase_x.load(Ordering::Relaxed), true),
            Stage::Custom | Stage::FinalCustom => {
                let p =
                    Progression::ALL_PROGRESSIONS[ag.custom_prog.load(Ordering::Relaxed) as usize];
                (
                    p,
                    ag.learned_x[p.index()].load(Ordering::Relaxed),
                    stage == Stage::Custom,
                )
            }
            Stage::FinalUniform(p) => (p, ag.learned_x[p.index()].load(Ordering::Relaxed), false),
        };
        AttemptPlan {
            htm_attempts: if prog.uses_htm() { x.max(1) } else { 0 },
            swopt_attempts: if prog.uses_swopt() { self.cfg.y } else { 0 },
            use_grouping: prog.uses_swopt(),
            measure,
        }
    }

    fn on_complete(&self, meta: &LockMeta, granule: &Granule, rec: &ExecRecord, _rng: &mut Rng) {
        if rec.breaker_tripped {
            // The circuit breaker forced this execution to skip HTM; its
            // timings say nothing about the modes under comparison and
            // would poison the learned X values.
            return;
        }
        let state = self.lock_state(meta);
        let stage_word = state.stage.load(Ordering::Acquire);
        let stage = unpack_stage(stage_word);
        if matches!(stage, Stage::FinalCustom | Stage::FinalUniform(_)) {
            // Converged. With re-learning enabled, keep counting and
            // restart from scratch once the interval elapses (§6).
            if self.cfg.relearn_after.is_some() {
                let ag = self.granule_state(granule);
                let execs = ag.phase_execs.fetch_add(1, Ordering::AcqRel) + 1;
                if execs >= self.stage_target(stage)
                    && state.stage.load(Ordering::Acquire) == stage_word
                {
                    self.reset(meta);
                }
            }
            return;
        }
        let ag = self.granule_state(granule);

        if let Some(ns) = rec.exec_ns {
            ag.sum_ns.fetch_add(ns, Ordering::Relaxed);
            ag.cnt.fetch_add(1, Ordering::Relaxed);
            if rec.mode == Some(ExecMode::Htm) {
                let succ_attempt = ns.saturating_sub(rec.htm_fail_ns);
                ag.succ_ns.fetch_add(succ_attempt, Ordering::Relaxed);
                ag.succ_cnt.fetch_add(1, Ordering::Relaxed);
            }
        }
        if rec.htm_attempts > 0 {
            if rec.mode == Some(ExecMode::Htm) {
                ag.max_attempts_seen
                    .fetch_max(rec.htm_attempts, Ordering::Relaxed);
                let k = rec.htm_attempts.min(X_MAX) as usize;
                ag.hist[k].fetch_add(1, Ordering::Relaxed);
                let fails = rec.htm_attempts - 1;
                if fails > 0 {
                    ag.fail_ns.fetch_add(rec.htm_fail_ns, Ordering::Relaxed);
                    ag.fail_attempts.fetch_add(fails as u64, Ordering::Relaxed);
                }
            } else if rec.htm_gave_up {
                ag.htm_give_ups.fetch_add(1, Ordering::Relaxed);
                ag.fail_ns.fetch_add(rec.htm_fail_ns, Ordering::Relaxed);
                ag.fail_attempts
                    .fetch_add(rec.htm_attempts as u64, Ordering::Relaxed);
                if let Some(fb) = rec.fallback_ns {
                    ag.fallback_ns.fetch_add(fb, Ordering::Relaxed);
                    ag.fallback_cnt.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        let execs = ag.phase_execs.fetch_add(1, Ordering::AcqRel) + 1;
        if execs >= self.stage_target(stage) {
            self.try_transition(meta, stage_word);
        }
    }

    fn reset(&self, meta: &LockMeta) {
        let state = self.lock_state(meta);
        let from_word = state.stage.load(Ordering::Acquire);
        let mut inner = state.inner.lock();
        inner.remaining.clear();
        inner.lock_avg.clear();
        inner.custom_avg = None;
        inner.epoch += 1;
        state.seen_htm.store(0, Ordering::Relaxed);
        state.seen_swopt.store(0, Ordering::Relaxed);
        for g in meta.granules.all() {
            let ag = self.granule_state(&g);
            ag.reset_phase(self.cfg.initial_x);
            for (bits, x) in ag.learned_avg_bits.iter().zip(ag.learned_x.iter()) {
                bits.store(0, Ordering::Relaxed);
                x.store(0, Ordering::Relaxed);
            }
            ag.custom_prog
                .store(Progression::LockOnly.index() as u32, Ordering::Relaxed);
        }
        let fresh = Stage::Learn {
            prog: Progression::LockOnly,
            sub: 0,
        };
        state.stage.store(pack_stage(fresh), Ordering::Release);
        meta.granules.invalidate_plans();
        if ale_trace::is_enabled() {
            ale_trace::emit(ale_trace::TraceEvent::phase_transition(
                ale_trace::label_id(meta.label()),
                from_word,
                pack_stage(fresh),
            ));
        }
    }

    /// `plan` reads only atomics (stage word, `phase_x`, `custom_prog`,
    /// `learned_x`) with no RNG draws or ticks, ignores `caps` for its
    /// *output* (clamping is the driver's job, so the subset property holds
    /// trivially), and every writer of those atomics —
    /// [`try_transition`](Self::try_transition) and [`reset`](Policy::reset)
    /// — sweeps the lock's plan words. The sticky `seen_htm`/`seen_swopt`
    /// capability marks are the one side effect; the per-capability
    /// absorbed bits force a slow-path `plan` call (which records them)
    /// the first time each capability shows up.
    fn plan_cacheable(&self) -> bool {
        true
    }

    fn describe_lock(&self, meta: &LockMeta) -> String {
        let state = self.lock_state(meta);
        match unpack_stage(state.stage.load(Ordering::Acquire)) {
            Stage::Learn { prog, sub } => format!("learning {prog} (sub-phase {})", sub + 1),
            Stage::Custom => "measuring custom per-granule choices".to_string(),
            Stage::FinalCustom => "final: custom per-granule progressions".to_string(),
            Stage::FinalUniform(p) => format!("final: uniform {p}"),
        }
    }

    fn describe_granule(&self, _meta: &LockMeta, granule: &Granule) -> String {
        let ag = self.granule_state(granule);
        let p = Progression::ALL_PROGRESSIONS[ag.custom_prog.load(Ordering::Relaxed) as usize];
        let x = ag.learned_x[p.index()].load(Ordering::Relaxed);
        if p.uses_htm() {
            format!("{p} X={x}")
        } else {
            format!("{p}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_packing_roundtrips() {
        for s in [
            Stage::Learn {
                prog: Progression::LockOnly,
                sub: 0,
            },
            Stage::Learn {
                prog: Progression::HtmLock,
                sub: 2,
            },
            Stage::Learn {
                prog: Progression::All,
                sub: 1,
            },
            Stage::Custom,
            Stage::FinalCustom,
            Stage::FinalUniform(Progression::SwOptLock),
            Stage::FinalUniform(Progression::All),
        ] {
            assert_eq!(unpack_stage(pack_stage(s)), s, "{s:?}");
        }
    }

    #[test]
    fn choose_x_prefers_one_attempt_when_htm_always_wins_first_try() {
        let p = AdaptivePolicy::new();
        let g = AdaptiveGranule::new(X_MAX);
        // 100 successes, all on the first attempt; cheap successes.
        g.hist[1].store(100, Ordering::Relaxed);
        g.succ_cnt.store(100, Ordering::Relaxed);
        g.succ_ns.store(100 * 500, Ordering::Relaxed);
        let x = p.choose_x(&g, 10, 5_000.0);
        assert_eq!(x, 1, "no failures ever → one attempt suffices");
    }

    #[test]
    fn choose_x_extends_budget_when_retries_pay_off() {
        let p = AdaptivePolicy::new();
        let g = AdaptiveGranule::new(X_MAX);
        // Successes spread over 1..=4 attempts; fallback is very expensive.
        for (k, n) in [(1, 40u64), (2, 30), (3, 20), (4, 10)] {
            g.hist[k].store(n, Ordering::Relaxed);
        }
        g.succ_cnt.store(100, Ordering::Relaxed);
        g.succ_ns.store(100 * 500, Ordering::Relaxed);
        g.fail_ns.store(90 * 300, Ordering::Relaxed);
        g.fail_attempts.store(90, Ordering::Relaxed);
        g.fallback_ns.store(10 * 50_000, Ordering::Relaxed);
        g.fallback_cnt.store(10, Ordering::Relaxed);
        g.htm_give_ups.store(10, Ordering::Relaxed);
        let x = p.choose_x(&g, 8, 50_000.0);
        assert!(x >= 4, "expensive fallback must buy more attempts, got {x}");
    }

    #[test]
    fn choose_x_shrinks_budget_when_fallback_is_cheap() {
        let p = AdaptivePolicy::new();
        let g = AdaptiveGranule::new(X_MAX);
        // Nearly everything fails; the lock path is fast.
        g.hist[1].store(2, Ordering::Relaxed);
        g.succ_cnt.store(2, Ordering::Relaxed);
        g.succ_ns.store(2 * 400, Ordering::Relaxed);
        g.htm_give_ups.store(98, Ordering::Relaxed);
        g.fail_ns.store((98 * 8) * 600, Ordering::Relaxed);
        g.fail_attempts.store(98 * 8, Ordering::Relaxed);
        g.fallback_ns.store(98 * 800, Ordering::Relaxed);
        g.fallback_cnt.store(98, Ordering::Relaxed);
        let x = p.choose_x(&g, 8, 900.0);
        assert_eq!(
            x, 1,
            "hopeless HTM with a cheap fallback → minimal budget, got {x}"
        );
    }

    #[test]
    fn best_progression_picks_minimum() {
        let g = AdaptiveGranule::new(X_MAX);
        assert_eq!(
            g.best_progression(),
            Progression::LockOnly,
            "no data defaults"
        );
        g.set_learned(Progression::LockOnly, 1000.0, 0);
        g.set_learned(Progression::SwOptLock, 400.0, 0);
        g.set_learned(Progression::HtmLock, 600.0, 3);
        assert_eq!(g.best_progression(), Progression::SwOptLock);
        g.set_learned(Progression::All, 300.0, 2);
        assert_eq!(g.best_progression(), Progression::All);
    }

    #[test]
    fn upper_bound_prefers_best_non_htm_phase() {
        let p = AdaptivePolicy::new();
        let g = AdaptiveGranule::new(X_MAX);
        assert_eq!(p.upper_bound_ns(&g), 10_000.0, "loose default with no data");
        g.set_learned(Progression::LockOnly, 2_000.0, 0);
        assert_eq!(p.upper_bound_ns(&g), 2_000.0);
        g.set_learned(Progression::SwOptLock, 900.0, 0);
        assert_eq!(p.upper_bound_ns(&g), 900.0);
    }
}
