//! Per-thread nesting frames and held-lock tracking (§4.1).
//!
//! ALE-enabled critical sections must nest properly; the library keeps a
//! per-thread stack of frames recording the lock and execution mode of each
//! enclosing critical section *attempt*. The nesting rules implemented by
//! the driver ([`crate::cs`]) all read this state:
//!
//! * inside an HTM-mode execution, nested critical sections run inside the
//!   same hardware transaction (no frame is pushed — mirroring the paper's
//!   optimisation of writing nothing extra inside transactions);
//! * a nested critical section whose lock the thread already holds skips
//!   the acquisition (Lock mode) or the lock check (HTM mode);
//! * SWOpt is ineligible while the thread is in SWOpt mode for a critical
//!   section of a *different* lock.

use std::cell::RefCell;

use crate::mode::ExecMode;

/// How a held lock was acquired (readers-writer locks distinguish the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HeldKind {
    Excl,
    Shared,
}

thread_local! {
    static FRAMES: RefCell<Vec<(usize, ExecMode)>> = const { RefCell::new(Vec::new()) };
    static HELD: RefCell<Vec<(usize, HeldKind)>> = const { RefCell::new(Vec::new()) };
}

/// Is the innermost active execution on this thread in HTM mode?
/// (If so, every nested critical section is flattened into it.)
pub(crate) fn in_htm_execution() -> bool {
    FRAMES.with(|f| f.borrow().last().is_some_and(|&(_, m)| m == ExecMode::Htm))
}

/// Is this thread executing in SWOpt mode for a critical section protected
/// by a lock other than `lock_key`?
pub(crate) fn in_swopt_for_other_lock(lock_key: usize) -> bool {
    FRAMES.with(|f| {
        f.borrow()
            .iter()
            .any(|&(k, m)| m == ExecMode::SwOpt && k != lock_key)
    })
}

/// Current nesting depth of ALE frames on this thread.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn depth() -> usize {
    FRAMES.with(|f| f.borrow().len())
}

/// Run one execution attempt under a frame recording (lock, mode).
/// The frame pops even if `f` unwinds (HTM aborts unwind through here).
pub(crate) fn with_frame<R>(lock_key: usize, mode: ExecMode, f: impl FnOnce() -> R) -> R {
    FRAMES.with(|fr| fr.borrow_mut().push((lock_key, mode)));
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            FRAMES.with(|fr| {
                fr.borrow_mut().pop().expect("frame stack underflow");
            });
        }
    }
    let _guard = PopGuard;
    f()
}

/// Does this thread hold `lock_key` (acquired in Lock mode)?
pub(crate) fn held_kind(lock_key: usize) -> Option<HeldKind> {
    HELD.with(|h| {
        h.borrow()
            .iter()
            .rev()
            .find(|&&(k, _)| k == lock_key)
            .map(|&(_, kind)| kind)
    })
}

/// Record an acquisition. Paired with [`note_released`]; the driver keeps
/// the pairing even across unwinds via its own guards.
pub(crate) fn note_acquired(lock_key: usize, kind: HeldKind) {
    HELD.with(|h| h.borrow_mut().push((lock_key, kind)));
}

pub(crate) fn note_released(lock_key: usize) {
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        let top = h.pop().expect("released a lock that was never acquired");
        assert_eq!(top.0, lock_key, "locks must be released in LIFO order");
    });
}

/// Unwind-path variant of [`note_released`]: never panics, because a second
/// panic while already unwinding aborts the whole process. Removes the
/// innermost matching hold if present and silently tolerates bookkeeping
/// that the unwind has already torn down.
pub(crate) fn note_released_on_unwind(lock_key: usize) {
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        if let Some(pos) = h.iter().rposition(|&(k, _)| k == lock_key) {
            h.remove(pos);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_nest_and_answer_queries() {
        assert!(!in_htm_execution());
        assert_eq!(depth(), 0);
        with_frame(1, ExecMode::Lock, || {
            assert_eq!(depth(), 1);
            assert!(!in_htm_execution());
            with_frame(2, ExecMode::Htm, || {
                assert!(in_htm_execution());
                assert_eq!(depth(), 2);
            });
            assert!(!in_htm_execution());
        });
        assert_eq!(depth(), 0);
    }

    #[test]
    fn swopt_conflict_detection_is_per_lock() {
        with_frame(1, ExecMode::SwOpt, || {
            assert!(!in_swopt_for_other_lock(1), "same lock is allowed");
            assert!(in_swopt_for_other_lock(2), "different lock is not");
        });
        assert!(!in_swopt_for_other_lock(2));
    }

    #[test]
    fn held_locks_are_lifo_and_queryable() {
        assert_eq!(held_kind(7), None);
        note_acquired(7, HeldKind::Excl);
        note_acquired(8, HeldKind::Shared);
        assert_eq!(held_kind(7), Some(HeldKind::Excl));
        assert_eq!(held_kind(8), Some(HeldKind::Shared));
        note_released(8);
        note_released(7);
        assert_eq!(held_kind(7), None);
    }

    #[test]
    fn frame_pops_on_unwind() {
        let r = std::panic::catch_unwind(|| {
            with_frame(3, ExecMode::Htm, || panic!("abort-like unwind"));
        });
        assert!(r.is_err());
        assert_eq!(depth(), 0);
        assert!(!in_htm_execution());
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn out_of_order_release_is_rejected() {
        note_acquired(1, HeldKind::Excl);
        note_acquired(2, HeldKind::Excl);
        note_released(1);
    }
}
