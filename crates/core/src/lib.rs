//! # ale-core — the Adaptive Lock Elision library (SPAA 2014)
//!
//! A from-scratch Rust reproduction of the ALE library of Dice, Kogan, Lev,
//! Merrifield, and Moir: *Adaptive Integration of Hardware and Software
//! Lock Elision Techniques*, SPAA 2014.
//!
//! ALE executes each lock-based critical section in one of three modes —
//! **HTM** (Transactional Lock Elision), **SWOpt** (optimistic software
//! execution validated by explicit version numbers), or **Lock** — chosen
//! at runtime by a pluggable [`Policy`], per *(lock, context)* granule,
//! from fine-grained statistics the library collects.
//!
//! ## Mapping from the paper's C++ macros
//!
//! | Paper | Here |
//! |---|---|
//! | lock label + metadata declaration | [`Ale::new_lock`] returning [`AleLock`] |
//! | `BEGIN_CS` / `END_CS` | [`AleLock::cs`] with a closure body |
//! | `BEGIN_CS` SWOpt variant | [`CsOptions::with_swopt`] |
//! | `GET_EXEC_MODE` | [`CsCtx::mode`] |
//! | `COULD_SWOPT_BE_RUNNING` | [`CsCtx::could_swopt_be_running`] |
//! | `BEGIN_SCOPE("foo.CS1")` / `END_SCOPE` | [`with_scope`] |
//! | `BEGIN_CS_NAMED(cond-label)` | pass a different [`scope!`] per branch |
//! | `LockAPI` (acquire/release/is_locked) | [`ale_sync::RawLock`] / [`ale_sync::RawRwLock`] |
//!
//! ## Example
//!
//! ```
//! use ale_core::{scope, Ale, AleConfig, CsOptions, CsOutcome, ExecMode, StaticPolicy};
//! use ale_htm::HtmCell;
//! use ale_sync::SpinLock;
//! use ale_vtime::Platform;
//!
//! let ale = Ale::new(AleConfig::new(Platform::haswell()), StaticPolicy::new(3, 10));
//! let counter = HtmCell::new(0u64);
//! let lock = ale.new_lock("counter_lock", SpinLock::new());
//!
//! let v = lock.cs(scope!("increment"), CsOptions::new(), |cs| {
//!     // Runs in HTM mode (elided) or Lock mode, per policy.
//!     assert_ne!(cs.mode(), ExecMode::SwOpt, "no SWOpt path declared");
//!     let v = counter.get();
//!     counter.set(v + 1);
//!     CsOutcome::Done(v + 1)
//! });
//! assert_eq!(v, 1);
//! println!("{}", ale.report());
//! ```

use std::cell::RefCell;
use std::sync::Arc;

use ale_sync::{RawLock, RawRwLock, TickMutex};
use ale_vtime::{HtmProfile, Platform, Rng};

pub mod check_hooks;
pub mod cs;
pub mod frame;
pub mod granule;
pub mod grouping;
pub mod meta;
pub mod mode;
pub mod policy;
pub mod report;
pub mod scope;

pub use check_hooks::{clear_cs_observer, set_cs_observer, CsEvent};
pub use cs::{CsCtx, CsOptions, CsOutcome, CsProtocolError, ABORT_NESTED_NO_HTM, ABORT_PROTOCOL};
pub use granule::{Granule, GranuleStats, StatSink};
pub use grouping::Grouping;
pub use meta::LockMeta;
pub use mode::{ExecMode, Progression};
pub use policy::{AdaptivePolicy, AttemptPlan, ExecRecord, ModeCaps, Policy, StaticPolicy};
pub use report::{GranuleReport, LockReport, Report};
pub use scope::{current_context, ContextId, ScopeId};

use crate::cs::LockOps;
use crate::frame::HeldKind;

/// Library-wide configuration.
#[derive(Debug, Clone)]
pub struct AleConfig {
    /// The (simulated or real) platform; supplies the HTM profile.
    pub platform: Platform,
    /// Master switch for HTM mode ("enabling HTM mode … is as simple as
    /// using appropriate compilation flags", §3.1).
    pub enable_htm: bool,
    /// Master switch for SWOpt mode.
    pub enable_swopt: bool,
    /// Master switch for the grouping mechanism (ablation A2).
    pub grouping: bool,
    /// Force `CsCtx::could_swopt_be_running` to answer `true` in every
    /// mode, disabling the §3.3 version-bump elision (ablation A1).
    pub force_version_bump: bool,
    /// Probability (per mille) that a potentially-conflicting execution
    /// respects the grouping indicator and defers. 1000 (default) is the
    /// paper's behaviour; lower values implement its §4.2 suggestion that
    /// "concurrency could be increased by respecting the SNZI
    /// probabilistically, which would still ensure that potentially
    /// conflicting executions will eventually defer".
    pub grouping_defer_permille: u64,
    /// Seed for all library-internal randomness (sampling, HTM failure
    /// model); figures fix it for reproducibility.
    pub seed: u64,
    /// Per-granule abort-storm circuit breaker configuration. `None`
    /// (default) disables the breaker; the paper's figures run without it.
    pub breaker: Option<ale_htm::BreakerConfig>,
    /// Stall-watchdog budget for Lock-mode acquisitions, in (virtual)
    /// nanoseconds. When non-zero the driver acquires with a deadline and
    /// emits a [`CsEvent::LockStall`] each time the budget expires (it
    /// keeps waiting — the watchdog reports, it does not break mutual
    /// exclusion). 0 (default) disables the watchdog.
    pub stall_watchdog_ns: u64,
    /// Trace configuration. `None` (default) leaves the process-wide trace
    /// gate untouched; `Some` installs the configuration when the library
    /// instance is created (see [`ale_trace::configure`]). With tracing
    /// disabled every emit site costs one branch and runs are bit-identical
    /// to an uninstrumented build.
    pub trace: Option<ale_trace::TraceConfig>,
}

impl AleConfig {
    /// Everything enabled on the given platform.
    pub fn new(platform: Platform) -> Self {
        AleConfig {
            platform,
            enable_htm: true,
            enable_swopt: true,
            grouping: true,
            force_version_bump: false,
            grouping_defer_permille: 1000,
            seed: 0xA1E_5EED,
            breaker: None,
            stall_watchdog_ns: 0,
            trace: None,
        }
    }

    pub fn without_htm(mut self) -> Self {
        self.enable_htm = false;
        self
    }

    pub fn without_swopt(mut self) -> Self {
        self.enable_swopt = false;
        self
    }

    pub fn without_grouping(mut self) -> Self {
        self.grouping = false;
        self
    }

    /// Disable the §3.3 version-bump elision (ablation A1).
    pub fn with_forced_version_bump(mut self) -> Self {
        self.force_version_bump = true;
        self
    }

    /// Respect the grouping indicator only with the given probability
    /// (per mille) — the paper's probabilistic-SNZI suggestion (§4.2).
    pub fn with_probabilistic_grouping(mut self, permille: u64) -> Self {
        self.grouping_defer_permille = permille.min(1000);
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Give every granule an abort-storm circuit breaker.
    pub fn with_breaker(mut self, cfg: ale_htm::BreakerConfig) -> Self {
        self.breaker = Some(cfg);
        self
    }

    /// [`AleConfig::with_breaker`] with the default thresholds.
    pub fn with_default_breaker(self) -> Self {
        self.with_breaker(ale_htm::BreakerConfig::default())
    }

    /// Enable the Lock-mode stall watchdog with the given budget.
    pub fn with_stall_watchdog(mut self, budget_ns: u64) -> Self {
        self.stall_watchdog_ns = budget_ns;
        self
    }

    /// Install a trace configuration when the library instance is created.
    pub fn with_trace(mut self, cfg: ale_trace::TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }
}

/// Panic payload raised when a critical section is entered under a
/// poisoned lock (a previous Lock-mode execution panicked while holding
/// it). Recover by catching the unwind, restoring the protected data's
/// invariants, and calling `clear_poison` on the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockPoison {
    /// The poisoned lock's registration label.
    pub lock: &'static str,
}

impl std::fmt::Display for LockPoison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ALE lock '{}' is poisoned by a panicked critical section",
            self.lock
        )
    }
}

/// Install (once) a panic hook that keeps ALE control-flow unwinds quiet:
/// the engine-level payloads silenced by
/// [`ale_htm::init_panic_hook`], plus [`LockPoison`] and
/// [`cs::CsProtocolError`] — both are raised to be *caught* by the caller,
/// and a backtrace per occurrence would drown harness output.
pub fn init_panic_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        ale_htm::init_panic_hook();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.downcast_ref::<LockPoison>().is_none()
                && p.downcast_ref::<cs::CsProtocolError>().is_none()
            {
                prev(info);
            }
        }));
    });
}

/// An instance of the ALE library: configuration, policy, and the registry
/// of ALE-enabled locks (for reporting).
pub struct Ale {
    config: AleConfig,
    htm_profile: Option<HtmProfile>,
    policy: Arc<dyn Policy>,
    locks: TickMutex<Vec<Arc<LockMeta>>>,
}

thread_local! {
    static THREAD_RNG: RefCell<Option<Rng>> = const { RefCell::new(None) };
}

impl Ale {
    /// Create a library instance with the given policy.
    pub fn new(config: AleConfig, policy: impl Policy) -> Arc<Ale> {
        if let Some(t) = &config.trace {
            ale_trace::configure(t);
        }
        let htm_profile = if config.enable_htm {
            config.platform.htm.clone()
        } else {
            None
        };
        // Startup capability probe: if the platform claims HTM but cannot
        // commit even an empty transaction, degrade to SWOpt+Lock instead
        // of burning a retry budget on every critical section.
        let htm_profile = htm_profile.filter(|p| {
            let mut rng = Rng::new(config.seed ^ 0x4854_4D50_524F_4245);
            ale_htm::htm_supported(p, &mut rng)
        });
        Arc::new(Ale {
            config,
            htm_profile,
            policy: Arc::new(policy),
            locks: TickMutex::new(Vec::new()),
        })
    }

    /// Register a mutual-exclusion lock with ALE (declares + initialises
    /// the lock metadata, §3.1).
    pub fn new_lock<L: RawLock>(self: &Arc<Self>, label: &'static str, lock: L) -> AleLock<L> {
        let meta = Arc::new(self.make_meta(label));
        self.locks.lock().push(Arc::clone(&meta));
        AleLock {
            ale: Arc::clone(self),
            meta,
            lock,
        }
    }

    /// Register a readers-writer lock with ALE.
    pub fn new_rw_lock<L: RawRwLock>(
        self: &Arc<Self>,
        label: &'static str,
        lock: L,
    ) -> AleRwLock<L> {
        let meta = Arc::new(self.make_meta(label));
        self.locks.lock().push(Arc::clone(&meta));
        AleRwLock {
            ale: Arc::clone(self),
            meta,
            lock,
        }
    }

    /// Lock metadata sized for this platform: the active-SWOpt indicator
    /// gets ~one stripe per 8 hardware threads (clamped 4..=16), balancing
    /// SWOpt registration contention against HTM elision-scan cost.
    fn make_meta(&self, label: &'static str) -> LockMeta {
        let stripes = (self.config.platform.logical_threads() as usize / 8).clamp(4, 16);
        LockMeta::with_grouping_stripes_and_breaker(
            label,
            self.policy.make_lock_state(),
            stripes,
            self.config.breaker.clone(),
        )
    }

    /// The library's statistics/profiling report (§3.4).
    pub fn report(&self) -> Report {
        report::build(self, &self.locks.lock())
    }

    /// Clear all collected statistics and restart policy learning from
    /// scratch for every registered lock. Benchmarks call this after
    /// prefilling data structures so setup traffic (single-threaded,
    /// uncontended) does not pollute what the policy learns.
    pub fn reset_statistics(&self) {
        for meta in self.locks.lock().iter() {
            for g in meta.granules.all() {
                g.stats.reset();
            }
            self.policy.reset(meta);
        }
    }

    /// All registered lock metadata (report internals, tests).
    pub fn lock_metas(&self) -> Vec<Arc<LockMeta>> {
        self.locks.lock().clone()
    }

    pub fn config(&self) -> &AleConfig {
        &self.config
    }

    pub(crate) fn policy(&self) -> &dyn Policy {
        &*self.policy
    }

    /// Policy name + configuration for report headers.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    pub(crate) fn htm_enabled(&self) -> bool {
        self.htm_profile.is_some()
    }

    pub(crate) fn swopt_enabled(&self) -> bool {
        self.config.enable_swopt
    }

    pub(crate) fn grouping_enabled(&self) -> bool {
        self.config.grouping
    }

    pub(crate) fn htm_profile(&self) -> Option<&HtmProfile> {
        self.htm_profile.as_ref()
    }

    /// Fork a short-lived random stream for one critical-section execution
    /// from the per-thread master stream (deterministic under simulation).
    pub(crate) fn fork_thread_rng(&self) -> Rng {
        let seed = self.config.seed;
        THREAD_RNG.with(|slot| {
            let mut slot = slot.borrow_mut();
            let master = slot.get_or_insert_with(|| {
                let lane = ale_vtime::lane_id().map(|l| l as u64).unwrap_or_else(|| {
                    use std::hash::{Hash, Hasher};
                    let mut h = std::hash::DefaultHasher::new();
                    std::thread::current().id().hash(&mut h);
                    h.finish()
                });
                Rng::new(seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            });
            master.fork(0xC5)
        })
    }
}

impl std::fmt::Debug for Ale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ale")
            .field("policy", &self.policy.name())
            .field("platform", &self.config.platform.kind.name())
            .field("htm", &self.htm_enabled())
            .field("swopt", &self.swopt_enabled())
            .finish()
    }
}

/// Run `f` inside an explicit scope (the paper's `BEGIN_SCOPE`/`END_SCOPE`,
/// §3.4) so critical sections inside `f` get a distinct context.
pub fn with_scope<R>(scope: &'static ScopeId, f: impl FnOnce() -> R) -> R {
    scope::enter_scope(scope, f)
}

// ---------------------------------------------------------------------------
// Mutual-exclusion lock wrapper
// ---------------------------------------------------------------------------

/// An ALE-enabled mutual-exclusion lock.
pub struct AleLock<L: RawLock> {
    ale: Arc<Ale>,
    meta: Arc<LockMeta>,
    lock: L,
}

struct MutexOps<'a, L: RawLock>(&'a L);

impl<L: RawLock> LockOps for MutexOps<'_, L> {
    fn acquire(&self) -> HeldKind {
        self.0.acquire();
        HeldKind::Excl
    }
    fn acquire_for(&self, budget_ns: u64) -> Option<HeldKind> {
        self.0.try_acquire_for(budget_ns).then_some(HeldKind::Excl)
    }
    fn release(&self) {
        self.0.release();
    }
    // ale-lint: htm-body — the in-transaction lock-subscription check;
    // runs inside every elided section and must stay alloc/IO/park-free.
    fn is_conflicting_locked(&self) -> bool {
        self.0.is_locked()
    }
    fn required_hold(&self) -> HeldKind {
        HeldKind::Excl
    }
}

impl<L: RawLock> AleLock<L> {
    /// Execute a critical section (the `BEGIN_CS … END_CS` bracket). The
    /// body runs in the mode the policy chose — query it via
    /// [`CsCtx::mode`] — and may return [`CsOutcome::SwOptFail`] from SWOpt
    /// mode to request a retry.
    pub fn cs<T>(
        &self,
        scope: &'static ScopeId,
        opts: CsOptions,
        mut body: impl FnMut(&CsCtx<'_>) -> CsOutcome<T>,
    ) -> T {
        scope::enter_scope(scope, || {
            cs::run_cs(
                &self.ale,
                &self.meta,
                &MutexOps(&self.lock),
                opts,
                &mut body,
            )
        })
    }

    /// Sugar for critical sections without a SWOpt path: the body returns
    /// its value directly.
    pub fn cs_plain<T>(
        &self,
        scope: &'static ScopeId,
        opts: CsOptions,
        mut body: impl FnMut(&CsCtx<'_>) -> T,
    ) -> T {
        let opts = CsOptions {
            swopt: false,
            ..opts
        };
        self.cs(scope, opts, |ctx| CsOutcome::Done(body(ctx)))
    }

    /// This lock's ALE metadata (granule statistics etc.).
    pub fn meta(&self) -> &Arc<LockMeta> {
        &self.meta
    }

    /// The underlying lock (e.g. for uninstrumented baseline runs).
    pub fn raw(&self) -> &L {
        &self.lock
    }

    /// The owning library instance.
    pub fn ale(&self) -> &Arc<Ale> {
        &self.ale
    }

    /// Did a Lock-mode critical section panic while holding this lock?
    /// While poisoned, entering a critical section raises [`LockPoison`].
    pub fn is_poisoned(&self) -> bool {
        self.meta.is_poisoned()
    }

    /// Explicit recovery from a poisoned state: the caller asserts the
    /// protected data's invariants hold again.
    pub fn clear_poison(&self) {
        self.meta.clear_poison();
    }
}

// ---------------------------------------------------------------------------
// Readers-writer lock wrapper
// ---------------------------------------------------------------------------

/// An ALE-enabled readers-writer lock (the Kyoto Cabinet experiments'
/// outer lock).
pub struct AleRwLock<L: RawRwLock> {
    ale: Arc<Ale>,
    meta: Arc<LockMeta>,
    lock: L,
}

struct SharedOps<'a, L: RawRwLock>(&'a L);

impl<L: RawRwLock> LockOps for SharedOps<'_, L> {
    fn acquire(&self) -> HeldKind {
        self.0.acquire_shared();
        HeldKind::Shared
    }
    fn acquire_for(&self, budget_ns: u64) -> Option<HeldKind> {
        self.0
            .try_acquire_shared_for(budget_ns)
            .then_some(HeldKind::Shared)
    }
    fn release(&self) {
        self.0.release_shared();
    }
    // ale-lint: htm-body — in-transaction subscription check (see above).
    fn is_conflicting_locked(&self) -> bool {
        // An elided *reader* conflicts only with writers.
        self.0.is_excl_locked()
    }
    fn required_hold(&self) -> HeldKind {
        HeldKind::Shared
    }
}

struct ExclOps<'a, L: RawRwLock>(&'a L);

impl<L: RawRwLock> LockOps for ExclOps<'_, L> {
    fn acquire(&self) -> HeldKind {
        self.0.acquire_excl();
        HeldKind::Excl
    }
    fn acquire_for(&self, budget_ns: u64) -> Option<HeldKind> {
        self.0
            .try_acquire_excl_for(budget_ns)
            .then_some(HeldKind::Excl)
    }
    fn release(&self) {
        self.0.release_excl();
    }
    // ale-lint: htm-body — in-transaction subscription check (see above).
    fn is_conflicting_locked(&self) -> bool {
        // An elided *writer* conflicts with any holder.
        self.0.is_any_locked()
    }
    fn required_hold(&self) -> HeldKind {
        HeldKind::Excl
    }
}

impl<L: RawRwLock> AleRwLock<L> {
    /// Execute a critical section that would acquire the lock **shared**.
    pub fn shared_cs<T>(
        &self,
        scope: &'static ScopeId,
        opts: CsOptions,
        mut body: impl FnMut(&CsCtx<'_>) -> CsOutcome<T>,
    ) -> T {
        scope::enter_scope(scope, || {
            cs::run_cs(
                &self.ale,
                &self.meta,
                &SharedOps(&self.lock),
                opts,
                &mut body,
            )
        })
    }

    /// Execute a critical section that would acquire the lock **exclusive**.
    pub fn excl_cs<T>(
        &self,
        scope: &'static ScopeId,
        opts: CsOptions,
        mut body: impl FnMut(&CsCtx<'_>) -> CsOutcome<T>,
    ) -> T {
        scope::enter_scope(scope, || {
            cs::run_cs(&self.ale, &self.meta, &ExclOps(&self.lock), opts, &mut body)
        })
    }

    pub fn meta(&self) -> &Arc<LockMeta> {
        &self.meta
    }

    pub fn raw(&self) -> &L {
        &self.lock
    }

    pub fn ale(&self) -> &Arc<Ale> {
        &self.ale
    }

    /// See [`AleLock::is_poisoned`].
    pub fn is_poisoned(&self) -> bool {
        self.meta.is_poisoned()
    }

    /// See [`AleLock::clear_poison`].
    pub fn clear_poison(&self) {
        self.meta.clear_poison();
    }
}
