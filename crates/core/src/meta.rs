//! Per-lock metadata.
//!
//! "Each ALE-enabled lock has associated metadata, which is allocated and
//! initialized once" (§4). The C++ library hides the metadata behind a
//! label macro; here it is an [`Arc<LockMeta>`] owned by the
//! [`AleLock`](crate::AleLock) wrapper and registered with the
//! [`Ale`](crate::Ale) instance for reporting.

use std::any::Any;

use crate::granule::GranuleTable;
use crate::grouping::Grouping;

/// Metadata for one ALE-enabled lock: its granules (per-context stats),
/// the grouping indicators, and opaque per-lock policy state.
pub struct LockMeta {
    label: &'static str,
    pub granules: GranuleTable,
    pub grouping: Grouping,
    /// Created by `Policy::make_lock_state`; downcast by the policy.
    pub policy_state: Box<dyn Any + Send + Sync>,
}

impl LockMeta {
    pub fn new(label: &'static str, policy_state: Box<dyn Any + Send + Sync>) -> Self {
        Self::with_grouping_stripes(label, policy_state, 8)
    }

    /// As [`LockMeta::new`], with a platform-sized active-SWOpt indicator.
    pub fn with_grouping_stripes(
        label: &'static str,
        policy_state: Box<dyn Any + Send + Sync>,
        stripes: usize,
    ) -> Self {
        LockMeta {
            label,
            granules: GranuleTable::new(),
            grouping: Grouping::with_stripes(stripes),
            policy_state,
        }
    }

    /// The label given at registration (the paper's `md_tblLock`-style
    /// lock label).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Stable identity for nesting bookkeeping.
    pub fn key(&self) -> usize {
        self as *const LockMeta as usize
    }
}

impl std::fmt::Debug for LockMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockMeta")
            .field("label", &self.label)
            .field("granules", &self.granules.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_identity_and_label() {
        let a = LockMeta::new("a", Box::new(()));
        let b = LockMeta::new("b", Box::new(()));
        assert_eq!(a.label(), "a");
        assert_ne!(a.key(), b.key());
        assert!(format!("{a:?}").contains("\"a\""));
    }
}
