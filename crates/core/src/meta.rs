//! Per-lock metadata.
//!
//! "Each ALE-enabled lock has associated metadata, which is allocated and
//! initialized once" (§4). The C++ library hides the metadata behind a
//! label macro; here it is an [`Arc<LockMeta>`] owned by the
//! [`AleLock`](crate::AleLock) wrapper and registered with the
//! [`Ale`](crate::Ale) instance for reporting.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};

use ale_htm::BreakerConfig;

use crate::granule::GranuleTable;
use crate::grouping::Grouping;

/// Metadata for one ALE-enabled lock: its granules (per-context stats),
/// the grouping indicators, and opaque per-lock policy state.
pub struct LockMeta {
    label: &'static str,
    pub granules: GranuleTable,
    pub grouping: Grouping,
    /// Created by `Policy::make_lock_state`; downcast by the policy.
    pub policy_state: Box<dyn Any + Send + Sync>,
    /// Set when a Lock-mode critical section panicked while holding the
    /// lock. Entering a critical section under a poisoned lock raises a
    /// typed [`LockPoison`](crate::LockPoison) panic until cleared.
    poisoned: AtomicBool,
}

impl LockMeta {
    pub fn new(label: &'static str, policy_state: Box<dyn Any + Send + Sync>) -> Self {
        Self::with_grouping_stripes(label, policy_state, 8)
    }

    /// As [`LockMeta::new`], with a platform-sized active-SWOpt indicator.
    pub fn with_grouping_stripes(
        label: &'static str,
        policy_state: Box<dyn Any + Send + Sync>,
        stripes: usize,
    ) -> Self {
        Self::with_grouping_stripes_and_breaker(label, policy_state, stripes, None)
    }

    /// As [`LockMeta::with_grouping_stripes`], additionally giving every
    /// granule of this lock an abort-storm circuit breaker.
    pub fn with_grouping_stripes_and_breaker(
        label: &'static str,
        policy_state: Box<dyn Any + Send + Sync>,
        stripes: usize,
        breaker: Option<BreakerConfig>,
    ) -> Self {
        LockMeta {
            label,
            granules: GranuleTable::with_breaker_config(breaker),
            grouping: Grouping::with_stripes(stripes),
            policy_state,
            poisoned: AtomicBool::new(false),
        }
    }

    /// The label given at registration (the paper's `md_tblLock`-style
    /// lock label).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Stable identity for nesting bookkeeping.
    pub fn key(&self) -> usize {
        self as *const LockMeta as usize
    }

    /// Did a Lock-mode critical section panic while holding this lock?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Mark the lock poisoned (the unwind path does this *before*
    /// releasing, so a racing entrant either blocks on the lock or sees the
    /// flag).
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        if ale_trace::is_enabled() {
            ale_trace::emit(ale_trace::TraceEvent::lock_poison(ale_trace::label_id(
                self.label,
            )));
        }
    }

    /// Explicit recovery: the caller asserts the protected data is
    /// consistent again and re-enables critical sections on this lock.
    pub fn clear_poison(&self) {
        self.poisoned.store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for LockMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockMeta")
            .field("label", &self.label)
            .field("granules", &self.granules.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_identity_and_label() {
        let a = LockMeta::new("a", Box::new(()));
        let b = LockMeta::new("b", Box::new(()));
        assert_eq!(a.label(), "a");
        assert_ne!(a.key(), b.key());
        assert!(format!("{a:?}").contains("\"a\""));
    }

    #[test]
    fn poison_flag_round_trips() {
        let m = LockMeta::new("p", Box::new(()));
        assert!(!m.is_poisoned());
        m.poison();
        assert!(m.is_poisoned());
        m.clear_poison();
        assert!(!m.is_poisoned());
    }
}
