//! The critical-section driver (§4): the policy-independent engine that
//! executes one ALE-enabled critical section in HTM, SWOpt, or Lock mode.
//!
//! "Each time a critical section is attempted, the library invokes the
//! policy to determine the mode in which it should be executed … and
//! executes appropriate critical section preamble code accordingly. For
//! Lock mode, it acquires the lock. For HTM mode, it first waits for the
//! lock to be free, then begins a hardware transaction, and then checks
//! that the lock is not held … For SWOpt execution, the library returns to
//! user code without acquiring the lock."
//!
//! The body closure receives a [`CsCtx`] (the `GET_EXEC_MODE` analogue) and
//! returns a [`CsOutcome`]: `Done(value)`, or `SwOptFail` when a SWOpt
//! execution detected interference and wants the driver to retry (§3.2's
//! loop around `GetImp<true>`).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use ale_htm::{AbortCode, BreakerTransition};
use ale_sync::Backoff;
use ale_vtime::{now, Rng};

use crate::check_hooks::{emit, CsEvent};
use crate::frame::{self, HeldKind};
use crate::granule::{Granule, StatSink};
use crate::meta::LockMeta;
use crate::mode::ExecMode;
use crate::policy::{ExecRecord, ModeCaps};
use crate::Ale;

/// Explicit-abort code for "a nested critical section does not allow HTM"
/// (§4.1: the enclosing hardware transaction must abort).
pub const ABORT_NESTED_NO_HTM: u8 = 0xFE;

/// Explicit-abort code for a mode-protocol violation detected inside a
/// hardware transaction (a body signalled a SWOpt outcome while flattened
/// into an enclosing HTM execution). The enclosing driver stops retrying
/// HTM and falls back to a mode where the body's answer is meaningful.
pub const ABORT_PROTOCOL: u8 = 0xFC;

/// A mode-protocol violation: the body returned a SWOpt outcome
/// ([`CsOutcome::SwOptFail`] / [`CsOutcome::SwOptSelfAbort`]) from a mode
/// where that answer is meaningless. Debug builds still assert (the old
/// fail-fast behaviour); release builds recover — HTM executions fall back
/// (per the `SwOptFail` no-harmful-side-effects contract re-running is
/// safe), and Lock-mode executions release the lock, then raise this type
/// as a typed panic payload since no value exists to return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsProtocolError {
    /// A SWOpt outcome was signalled by a body running in HTM mode.
    SwOptOutcomeInHtm,
    /// A SWOpt outcome was signalled by a body running in Lock mode.
    SwOptOutcomeInLock,
}

impl std::fmt::Display for CsProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsProtocolError::SwOptOutcomeInHtm => {
                write!(f, "SWOpt failure signalled while in HTM mode")
            }
            CsProtocolError::SwOptOutcomeInLock => {
                write!(f, "a Lock-mode execution cannot fail")
            }
        }
    }
}

impl std::error::Error for CsProtocolError {}

/// How much budget a "real" HTM abort consumes relative to a lock-held
/// abort ("the library accounts for such aborts in a much lighter way than
/// for others", §4).
const LOCK_HELD_WEIGHT: u32 = 4;

/// Per-critical-section options (the choice of `BEGIN_CS` variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsOptions {
    /// HTM mode is allowed for this critical section.
    pub htm: bool,
    /// A SWOpt path exists (the `BEGIN_CS` "SWOpt variant").
    pub swopt: bool,
    /// The critical section may execute a conflicting region, i.e. it can
    /// interfere with SWOpt readers. Drives the grouping mechanism's
    /// deferral. Pure readers should clear this.
    pub conflicting: bool,
}

impl Default for CsOptions {
    fn default() -> Self {
        CsOptions {
            htm: true,
            swopt: false,
            conflicting: true,
        }
    }
}

impl CsOptions {
    /// Defaults: HTM allowed, no SWOpt path, may conflict.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a SWOpt path.
    pub fn with_swopt(mut self) -> Self {
        self.swopt = true;
        self
    }

    /// Forbid HTM for this critical section.
    pub fn without_htm(mut self) -> Self {
        self.htm = false;
        self
    }

    /// Declare that this critical section never interferes with SWOpt
    /// readers (it has no conflicting region).
    pub fn non_conflicting(mut self) -> Self {
        self.conflicting = false;
        self
    }
}

/// Result of one body invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsOutcome<T> {
    /// The critical section completed with this value.
    Done(T),
    /// (SWOpt mode only.) Interference was detected; the attempt had no
    /// harmful side effects and the driver should retry per policy.
    SwOptFail,
    /// (SWOpt mode only.) The "self abort" idiom (§3.3): the body reached a
    /// conflicting region it cannot perform optimistically; retry the
    /// critical section *without* the SWOpt path.
    SwOptSelfAbort,
}

/// Execution context handed to the body (the `GET_EXEC_MODE` /
/// `COULD_SWOPT_BE_RUNNING` surface).
pub struct CsCtx<'a> {
    mode: ExecMode,
    meta: &'a LockMeta,
    force_bump: bool,
}

impl CsCtx<'_> {
    /// Which mode this attempt is executing in.
    #[inline]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// In SWOpt mode, sugar for `self.mode() == ExecMode::SwOpt`.
    #[inline]
    pub fn is_swopt(&self) -> bool {
        self.mode == ExecMode::SwOpt
    }

    /// The `COULD_SWOPT_BE_RUNNING` query (§3.3): may a SWOpt execution of
    /// a critical section under this lock be running right now?
    ///
    /// * **HTM mode**: reads the striped indicator *transactionally*, so
    ///   eliding the version bump on a `false` answer is sound — a SWOpt
    ///   path starting later aborts this transaction.
    /// * **Lock mode**: always `true`. A Lock-mode execution cannot
    ///   subscribe, so it must bump its version unconditionally.
    /// * **SWOpt mode**: trivially `true`.
    pub fn could_swopt_be_running(&self) -> bool {
        if self.force_bump {
            return true;
        }
        match self.mode {
            ExecMode::Htm => self.meta.grouping.could_swopt_be_running(),
            ExecMode::Lock | ExecMode::SwOpt => true,
        }
    }
}

/// Internal adapter over the concrete lock flavour (mutex, RW-shared,
/// RW-exclusive); the driver is generic over this.
pub(crate) trait LockOps {
    /// Acquire; returns how the hold should be recorded.
    fn acquire(&self) -> HeldKind;
    /// Deadline acquisition for the stall watchdog: `None` when the budget
    /// expired without acquiring.
    fn acquire_for(&self, budget_ns: u64) -> Option<HeldKind>;
    fn release(&self);
    /// Is the lock held in a way that conflicts with eliding this critical
    /// section? Reads through `HtmCell::get`, so inside a transaction it
    /// subscribes and outside it is a consistent plain read.
    fn is_conflicting_locked(&self) -> bool;
    /// The hold kind this critical section needs for re-entrancy checks.
    fn required_hold(&self) -> HeldKind;
}

/// Probabilistic SNZI respect (§4.2): defer with the configured
/// probability; 1000‰ is the paper's always-defer behaviour.
fn defer_now(ale: &Ale, rng: &mut Rng) -> bool {
    let p = ale.config().grouping_defer_permille;
    p >= 1000 || rng.gen_ratio(p, 1000)
}

/// Trace hook: one `ModeDecision` record per completed execution. The
/// enabled-check keeps label interning (a mutex) off the disabled path; the
/// `mut-trace-drop-event` self-test mutation skips SWOpt completions so
/// ale-check can prove the trace-digest oracle notices a dropped emit.
#[inline]
fn trace_mode_decision(meta: &LockMeta, mode: ExecMode, why: u8, attempts: u64) {
    if !ale_trace::is_enabled() {
        return;
    }
    if cfg!(feature = "mut-trace-drop-event") && mode == ExecMode::SwOpt {
        return;
    }
    ale_trace::emit(ale_trace::TraceEvent::mode_decision(
        ale_trace::label_id(meta.label()),
        mode.index() as u8,
        why,
        attempts,
    ));
}

/// Can an existing hold satisfy a nested requirement?
fn hold_satisfies(held: HeldKind, required: HeldKind) -> bool {
    match (held, required) {
        (HeldKind::Excl, _) => true,
        (HeldKind::Shared, HeldKind::Shared) => true,
        (HeldKind::Shared, HeldKind::Excl) => false,
    }
}

/// Flush-on-drop guard for the statistics sink: in batched (real-mode)
/// executions the shared counters see at most one `add` per nonzero field
/// when the critical section exits — normally or by panic — instead of
/// one CAS per event mid-section. In direct (simulated) executions every
/// event was already published at record time and the drop is a no-op, so
/// the guard's position in the unwind is invisible to the simulator.
struct StatFlushGuard<'a> {
    sink: StatSink<'a>,
}

impl Drop for StatFlushGuard<'_> {
    fn drop(&mut self) {
        self.sink.flush();
    }
}

/// Release-on-drop guard so Lock mode unwinds cleanly.
struct ReleaseGuard<'a, O: LockOps + ?Sized> {
    ops: &'a O,
    lock_key: usize,
}

impl<O: LockOps + ?Sized> Drop for ReleaseGuard<'_, O> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // A panicking note_released here would double-panic and abort
            // the process; use the tolerant variant on the unwind path.
            frame::note_released_on_unwind(self.lock_key);
        } else {
            frame::note_released(self.lock_key);
        }
        self.ops.release();
    }
}

/// Execute one ALE critical section. The caller has already entered the
/// scope (so `current_context` includes it).
pub(crate) fn run_cs<T, O: LockOps + ?Sized>(
    ale: &Ale,
    meta: &Arc<LockMeta>,
    ops: &O,
    opts: CsOptions,
    body: &mut dyn FnMut(&CsCtx<'_>) -> CsOutcome<T>,
) -> T {
    let lock_key = meta.key();

    if meta.is_poisoned() {
        // A previous Lock-mode execution panicked while holding this lock;
        // refuse with a typed, catchable payload until explicit recovery.
        std::panic::panic_any(crate::LockPoison { lock: meta.label() });
    }

    // --- Flattened nesting inside an HTM execution (§4.1) ---------------
    if frame::in_htm_execution() {
        if !opts.htm {
            ale_htm::explicit_abort(ABORT_NESTED_NO_HTM);
        }
        let held_ok =
            frame::held_kind(lock_key).is_some_and(|h| hold_satisfies(h, ops.required_hold()));
        if !held_ok && ops.is_conflicting_locked() {
            // Transactional read: we are now subscribed; abort since held.
            ale_htm::explicit_abort(AbortCode::LOCK_HELD);
        }
        return match body(&CsCtx {
            mode: ExecMode::Htm,
            meta,
            force_bump: ale.config().force_version_bump,
        }) {
            CsOutcome::Done(v) => v,
            CsOutcome::SwOptFail | CsOutcome::SwOptSelfAbort => {
                // Mode-protocol violation while flattened into an enclosing
                // hardware transaction: abort it so the enclosing driver
                // falls back to a mode where the body's answer makes sense.
                debug_assert!(false, "{}", CsProtocolError::SwOptOutcomeInHtm);
                ale_htm::explicit_abort(ABORT_PROTOCOL)
            }
        };
    }

    let context = crate::scope::current_context();
    let granule = meta
        .granules
        .lookup(context, || ale.policy().make_granule_state());
    let mut rng = ale.fork_thread_rng();

    let held = frame::held_kind(lock_key);
    let reentrant = held.is_some_and(|h| hold_satisfies(h, ops.required_hold()));
    // A shared holder opening an exclusive critical section on the same
    // lock is a lock upgrade: unsupported (like the paper's library, ALE
    // requires proper nesting) and guaranteed to deadlock — fail loudly.
    assert!(
        !(held == Some(HeldKind::Shared) && ops.required_hold() == HeldKind::Excl),
        "improper nesting: exclusive critical section on a lock this thread          holds shared (lock upgrade is not supported)"
    );

    let caps = ModeCaps {
        htm: opts.htm && ale.htm_enabled(),
        swopt: opts.swopt
            && ale.swopt_enabled()
            && !reentrant
            && !frame::in_swopt_for_other_lock(lock_key),
    };
    // One-branch mode decision: a valid plan word whose absorbed bits
    // cover `caps` decides the whole execution with a single load+branch.
    // Misses (cold granule, phase transition, breaker edge, new
    // capability) take the slow path — run the policy, republish. Both
    // policies' `plan` is tick- and RNG-free, so hit and miss schedule
    // identically under the simulator.
    let plan = match granule.plan_cache.cached(caps) {
        Some(p) => p,
        None => {
            let epoch = ale
                .policy()
                .plan_cacheable()
                .then(|| granule.plan_cache.begin_publish());
            let fresh = ale.policy().plan(meta, &granule, caps, &mut rng);
            if let Some(e) = epoch {
                granule.plan_cache.publish(fresh, caps, e);
            }
            fresh.clamped(caps)
        }
    };
    let use_grouping = plan.use_grouping && ale.grouping_enabled();

    // Measure 100 % during learning, ~3 % otherwise.
    let measure = plan.measure || rng.next_u32() & 31 == 0;
    let exec_start = measure.then(now);

    let mut rec = ExecRecord::new();
    let mut flush = StatFlushGuard {
        sink: StatSink::new(&granule.stats),
    };
    let value = run_protocol(
        ale,
        meta,
        ops,
        opts,
        body,
        &granule,
        &mut rng,
        plan,
        use_grouping,
        reentrant,
        measure,
        lock_key,
        &mut rec,
        &mut flush.sink,
    );

    flush.sink.record_execution(&mut rng);
    drop(flush);
    if let Some(start) = exec_start {
        let total = now().saturating_sub(start);
        granule.stats.exec_time.add_duration(total);
        rec.exec_ns = Some(total);
    }
    ale.policy().on_complete(meta, &granule, &rec, &mut rng);
    value
}

#[allow(clippy::too_many_arguments)]
fn run_protocol<T, O: LockOps + ?Sized>(
    ale: &Ale,
    meta: &Arc<LockMeta>,
    ops: &O,
    opts: CsOptions,
    body: &mut dyn FnMut(&CsCtx<'_>) -> CsOutcome<T>,
    granule: &Granule,
    rng: &mut Rng,
    plan: crate::policy::AttemptPlan,
    use_grouping: bool,
    reentrant: bool,
    measure: bool,
    lock_key: usize,
    rec: &mut ExecRecord,
    sink: &mut StatSink<'_>,
) -> T {
    // --------------------------- HTM mode ------------------------------
    let breaker = granule.breaker.as_ref();
    let htm_denied = plan.htm_attempts > 0 && breaker.is_some_and(|b| !b.allow());
    if htm_denied {
        // The circuit is open after an abort storm: go straight to the
        // fallback modes; once the cool-down expires a later execution
        // flips the circuit half-open and the cohort probes HTM again.
        rec.breaker_tripped = true;
    }
    if plan.htm_attempts > 0 && !htm_denied {
        let mut budget = plan.htm_attempts.saturating_mul(LOCK_HELD_WEIGHT);
        let mut backoff = Backoff::with_max_exp(8);
        let profile = ale
            .htm_profile()
            .expect("plan.htm_attempts > 0 without HTM");
        while budget > 0 {
            // Preamble: wait for the lock to be free (unless we hold it —
            // then the check is skipped entirely, §4.1).
            if !reentrant {
                let mut wait = Backoff::with_max_exp(8);
                while ops.is_conflicting_locked() {
                    wait.spin();
                }
            }
            if opts.conflicting && use_grouping && defer_now(ale, rng) {
                meta.grouping.wait_for_swopt_retries();
            }

            rec.htm_attempts += 1;
            sink.record_attempt(ExecMode::Htm, rng);
            emit(CsEvent::Attempt {
                lock: meta.label(),
                mode: ExecMode::Htm,
            });
            let t0 = measure.then(now);
            let force_bump = ale.config().force_version_bump;
            let attempted = catch_unwind(AssertUnwindSafe(|| {
                // The frame-recording push can reallocate its thread-local
                // Vec; in the emulated HTM that is harmless, and on real
                // hardware the stack is warmed past nesting depth 2 within
                // the first few sections, so steady-state bodies never grow
                // it. Accepted, not a hygiene bug.
                // ale-lint: allow(htm-body-hygiene-transitive)
                ale_htm::attempt(profile, rng, || {
                    // Self-test mutation (`mut-lazy-subscription`): skipping
                    // the in-transaction lock subscription is the classic
                    // unsafe-TLE bug (Dice et al.) — ale-check's oracles
                    // must catch it.
                    if !cfg!(feature = "mut-lazy-subscription")
                        && !reentrant
                        && ops.is_conflicting_locked()
                    {
                        // Subscribed and held: abort, possibly retry later.
                        ale_htm::explicit_abort(AbortCode::LOCK_HELD);
                    }
                    frame::with_frame(lock_key, ExecMode::Htm, || {
                        body(&CsCtx {
                            mode: ExecMode::Htm,
                            meta,
                            force_bump,
                        })
                    })
                })
            }));
            let result = match attempted {
                Ok(r) => r,
                Err(payload) => {
                    // The body panicked. The engine has already torn the
                    // transaction down: speculative writes (including any
                    // buffered region bumps) are discarded, so no region is
                    // left open and no parity is broken. Tell the breaker
                    // (a panicking probe is still a failed attempt) and
                    // re-raise.
                    if let Some(b) = breaker {
                        b.record_abort(false, rng);
                    }
                    emit(CsEvent::Panicked {
                        lock: meta.label(),
                        mode: ExecMode::Htm,
                    });
                    resume_unwind(payload);
                }
            };
            match result {
                Ok(CsOutcome::Done(v)) => {
                    if let Some(b) = breaker {
                        if b.record_commit() == BreakerTransition::Restored {
                            // Breaker edge: force a replan (harmless — the
                            // plan itself never reads breaker state, but the
                            // ISSUE contract says edges repack the word).
                            granule.plan_cache.invalidate();
                            emit(CsEvent::BreakerRestore { lock: meta.label() });
                        }
                    }
                    sink.record_success(ExecMode::Htm, rng);
                    if let Some(t0) = t0 {
                        granule.stats.success_time[ExecMode::Htm.index()]
                            .add_duration(now().saturating_sub(t0));
                    }
                    rec.mode = Some(ExecMode::Htm);
                    emit(CsEvent::Complete {
                        lock: meta.label(),
                        mode: ExecMode::Htm,
                    });
                    trace_mode_decision(
                        meta,
                        ExecMode::Htm,
                        ale_trace::reason::HTM_COMMIT,
                        rec.htm_attempts as u64,
                    );
                    return v;
                }
                Ok(CsOutcome::SwOptFail | CsOutcome::SwOptSelfAbort) => {
                    // Mode-protocol violation: the transaction committed,
                    // yet the body claimed a SWOpt outcome. `SwOptFail`
                    // promises the attempt had no harmful side effects, so
                    // abandoning HTM and re-running via the fallback path
                    // is safe.
                    debug_assert!(false, "{}", CsProtocolError::SwOptOutcomeInHtm);
                    emit(CsEvent::ProtocolError {
                        lock: meta.label(),
                        error: CsProtocolError::SwOptOutcomeInHtm,
                    });
                    break;
                }
                Err(status) => {
                    emit(CsEvent::HtmAbort {
                        lock: meta.label(),
                        code: status.code,
                    });
                    if ale_trace::is_enabled() {
                        ale_trace::emit(ale_trace::TraceEvent::htm_abort(
                            ale_trace::label_id(meta.label()),
                            status.code.class(),
                            status.code.detail(),
                            status.may_retry,
                            rec.htm_attempts as u64,
                        ));
                    }
                    if let Some(t0) = t0 {
                        rec.htm_fail_ns += now().saturating_sub(t0);
                    }
                    // Classify the abort; lock-held aborts are budgeted
                    // lightly to avoid the cascade effect (§4).
                    let lock_held = status.code.is_lock_held()
                        || (status.code == AbortCode::Conflict && ops.is_conflicting_locked());
                    if lock_held {
                        sink.record_lock_held_abort(rng);
                        rec.lock_held_aborts += 1;
                        budget = budget.saturating_sub(1);
                    } else {
                        match status.code {
                            AbortCode::Capacity => {
                                sink.record_capacity_abort(rng);
                                rec.capacity_abort = true;
                                budget = 0; // retrying cannot help
                            }
                            AbortCode::Explicit(ABORT_NESTED_NO_HTM) => {
                                budget = 0; // a nested CS forbids HTM
                            }
                            AbortCode::Explicit(ABORT_PROTOCOL) => {
                                // A flattened nested critical section hit a
                                // mode-protocol violation: retrying in HTM
                                // would just hit it again.
                                emit(CsEvent::ProtocolError {
                                    lock: meta.label(),
                                    error: CsProtocolError::SwOptOutcomeInHtm,
                                });
                                budget = 0;
                            }
                            AbortCode::Explicit(AbortCode::TX_UNFRIENDLY) => {
                                // The body needs something transactions
                                // cannot do (an internal mutex, allocation
                                // fallback): no point retrying in HTM.
                                budget = 0;
                            }
                            AbortCode::Conflict => {
                                sink.record_conflict_abort(rng);
                                budget = budget.saturating_sub(LOCK_HELD_WEIGHT);
                            }
                            _ => {
                                sink.record_spurious_abort(rng);
                                budget = budget.saturating_sub(LOCK_HELD_WEIGHT);
                            }
                        }
                    }
                    // Feed the breaker: conflict/capacity aborts that are
                    // not attributable to a lock acquisition are what a
                    // storm is made of.
                    if let Some(b) = breaker {
                        let storm = !lock_held
                            && matches!(status.code, AbortCode::Conflict | AbortCode::Capacity);
                        if b.record_abort(storm, rng) == BreakerTransition::Tripped {
                            granule.plan_cache.invalidate();
                            emit(CsEvent::BreakerTrip { lock: meta.label() });
                        }
                        // An Open breaker ends this execution's HTM
                        // attempts: whether a fresh trip or a failed probe
                        // cohort, go straight to the fallback — a commit
                        // while the circuit is open would count nowhere
                        // and never restore HTM.
                        if b.state() == ale_htm::BreakerState::Open {
                            budget = 0;
                        }
                    }
                    backoff.spin();
                }
            }
        }
        rec.htm_gave_up = true;
    }
    let fallback_start = (measure && rec.htm_gave_up).then(now);
    let finish = |rec: &mut ExecRecord| {
        if let Some(fs) = fallback_start {
            rec.fallback_ns = Some(now().saturating_sub(fs));
        }
    };

    // -------------------------- SWOpt mode -----------------------------
    if plan.swopt_attempts > 0 {
        // Register as an active SWOpt executor for the whole execution so
        // COULD_SWOPT_BE_RUNNING covers us (§3.3).
        let _active = meta.grouping.swopt_active();
        let mut retry_guard = None;
        let mut backoff = Backoff::with_max_exp(6);
        for _ in 0..plan.swopt_attempts {
            rec.swopt_attempts += 1;
            sink.record_attempt(ExecMode::SwOpt, rng);
            emit(CsEvent::Attempt {
                lock: meta.label(),
                mode: ExecMode::SwOpt,
            });
            let t0 = measure.then(now);
            let force_bump = ale.config().force_version_bump;
            let region_mark = ale_sync::open_region_count();
            let outcome = match catch_unwind(AssertUnwindSafe(|| {
                frame::with_frame(lock_key, ExecMode::SwOpt, || {
                    body(&CsCtx {
                        mode: ExecMode::SwOpt,
                        meta,
                        force_bump,
                    })
                })
            })) {
                Ok(o) => o,
                Err(payload) => {
                    // No lock is held in SWOpt mode, so there is nothing to
                    // poison — but a body that reached a conflicting region
                    // (erroneously, or via self-abort-style code that then
                    // panicked) must not leave odd versions behind.
                    close_regions_after_panic(region_mark);
                    emit(CsEvent::Panicked {
                        lock: meta.label(),
                        mode: ExecMode::SwOpt,
                    });
                    resume_unwind(payload);
                }
            };
            match outcome {
                CsOutcome::Done(v) => {
                    sink.record_success(ExecMode::SwOpt, rng);
                    if let Some(t0) = t0 {
                        granule.stats.success_time[ExecMode::SwOpt.index()]
                            .add_duration(now().saturating_sub(t0));
                    }
                    rec.mode = Some(ExecMode::SwOpt);
                    emit(CsEvent::Complete {
                        lock: meta.label(),
                        mode: ExecMode::SwOpt,
                    });
                    trace_mode_decision(
                        meta,
                        ExecMode::SwOpt,
                        ale_trace::reason::SWOPT_COMMIT,
                        (rec.htm_attempts + rec.swopt_attempts) as u64,
                    );
                    finish(rec);
                    return v;
                }
                CsOutcome::SwOptFail => {
                    sink.record_swopt_fail(rng);
                    emit(CsEvent::SwOptFail { lock: meta.label() });
                    if use_grouping && retry_guard.is_none() {
                        // Announce "SWOpt retrying" so conflicting
                        // executions defer to us (§4.2 grouping).
                        retry_guard = Some(meta.grouping.swopt_retrying());
                    }
                    backoff.spin();
                }
                CsOutcome::SwOptSelfAbort => {
                    // Self abort (§3.3): stop optimistic attempts and fall
                    // through to Lock mode immediately.
                    sink.record_swopt_fail(rng);
                    emit(CsEvent::SwOptFail { lock: meta.label() });
                    break;
                }
            }
        }
    }

    // --------------------------- Lock mode -----------------------------
    if opts.conflicting && use_grouping && defer_now(ale, rng) {
        meta.grouping.wait_for_swopt_retries();
    }
    sink.record_attempt(ExecMode::Lock, rng);
    emit(CsEvent::Attempt {
        lock: meta.label(),
        mode: ExecMode::Lock,
    });
    let t0 = measure.then(now);
    let force_bump = ale.config().force_version_bump;
    let outcome = if reentrant {
        // We already hold a satisfying lock: run without re-acquiring. On a
        // panic, close this level's regions and re-raise; the enclosing
        // Lock-mode execution poisons and releases.
        let region_mark = ale_sync::open_region_count();
        match catch_unwind(AssertUnwindSafe(|| {
            frame::with_frame(lock_key, ExecMode::Lock, || {
                body(&CsCtx {
                    mode: ExecMode::Lock,
                    meta,
                    force_bump,
                })
            })
        })) {
            Ok(o) => o,
            Err(payload) => {
                close_regions_after_panic(region_mark);
                emit(CsEvent::Panicked {
                    lock: meta.label(),
                    mode: ExecMode::Lock,
                });
                resume_unwind(payload);
            }
        }
    } else {
        let kind = acquire_with_watchdog(ale, meta, ops);
        frame::note_acquired(lock_key, kind);
        let _release = ReleaseGuard { ops, lock_key };
        let region_mark = ale_sync::open_region_count();
        match catch_unwind(AssertUnwindSafe(|| {
            frame::with_frame(lock_key, ExecMode::Lock, || {
                body(&CsCtx {
                    mode: ExecMode::Lock,
                    meta,
                    force_bump,
                })
            })
        })) {
            Ok(o) => o,
            Err(payload) => {
                // Order matters: restore seqlock parity while still holding
                // the lock, poison *before* releasing (the ReleaseGuard
                // drops as the panic leaves this scope, so a racing entrant
                // either blocks on the lock or sees the poison flag), then
                // re-raise the original payload.
                close_regions_after_panic(region_mark);
                meta.poison();
                emit(CsEvent::Panicked {
                    lock: meta.label(),
                    mode: ExecMode::Lock,
                });
                emit(CsEvent::Poisoned { lock: meta.label() });
                resume_unwind(payload);
            }
        }
    };
    match outcome {
        CsOutcome::Done(v) => {
            sink.record_success(ExecMode::Lock, rng);
            if let Some(t0) = t0 {
                granule.stats.success_time[ExecMode::Lock.index()]
                    .add_duration(now().saturating_sub(t0));
            }
            rec.mode = Some(ExecMode::Lock);
            emit(CsEvent::Complete {
                lock: meta.label(),
                mode: ExecMode::Lock,
            });
            let why = if reentrant {
                ale_trace::reason::LOCK_REENTRANT
            } else if rec.htm_attempts + rec.swopt_attempts > 0 || rec.breaker_tripped {
                ale_trace::reason::LOCK_FALLBACK
            } else {
                ale_trace::reason::LOCK_PLANNED
            };
            trace_mode_decision(
                meta,
                ExecMode::Lock,
                why,
                (rec.htm_attempts + rec.swopt_attempts + 1) as u64,
            );
            finish(rec);
            v
        }
        CsOutcome::SwOptFail | CsOutcome::SwOptSelfAbort => {
            // The body ran to completion under the lock (released by now)
            // yet claimed a SWOpt outcome. No value exists to return, so
            // raise the typed error as a catchable panic payload. The lock
            // is NOT poisoned: the body did not unwind, so the protected
            // data saw a complete execution.
            debug_assert!(false, "{}", CsProtocolError::SwOptOutcomeInLock);
            emit(CsEvent::ProtocolError {
                lock: meta.label(),
                error: CsProtocolError::SwOptOutcomeInLock,
            });
            std::panic::panic_any(CsProtocolError::SwOptOutcomeInLock)
        }
    }
}

/// Restore seqlock parity after a panicking body: close every conflicting
/// region this critical section opened and left open (outermost mark
/// captured before the body ran). The `mut-leak-region-on-panic` self-test
/// mutation skips the repair — ale-check's oracles must then observe the
/// stuck-odd version / leaked region.
fn close_regions_after_panic(mark: usize) {
    if !cfg!(feature = "mut-leak-region-on-panic") {
        ale_sync::close_open_regions(mark);
    }
}

/// Lock-mode acquisition under the optional stall watchdog: with a
/// non-zero budget, acquire with a deadline and emit a
/// [`CsEvent::LockStall`] at every expiry, then keep waiting — the
/// watchdog reports stalls, it does not break mutual exclusion.
fn acquire_with_watchdog<O: LockOps + ?Sized>(ale: &Ale, meta: &LockMeta, ops: &O) -> HeldKind {
    let budget = ale.config().stall_watchdog_ns;
    if budget == 0 {
        return ops.acquire();
    }
    let start = now();
    let mut expiries = 0u64;
    loop {
        if let Some(kind) = ops.acquire_for(budget) {
            if expiries > 0 && ale_trace::is_enabled() {
                // A previously stalled acquisition eventually succeeded.
                ale_trace::emit(ale_trace::TraceEvent::stall_clear(
                    ale_trace::label_id(meta.label()),
                    expiries.min(u8::MAX as u64) as u8,
                    now().saturating_sub(start),
                ));
            }
            return kind;
        }
        expiries += 1;
        emit(CsEvent::LockStall {
            lock: meta.label(),
            waited_ns: now().saturating_sub(start),
        });
    }
}
