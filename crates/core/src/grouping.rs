//! The SWOpt grouping mechanism and the `COULD_SWOPT_BE_RUNNING` indicator
//! (§3.3, §4.2).
//!
//! Two per-lock facilities live here:
//!
//! 1. **Retry grouping.** A SWOpt path only fails when a critical section
//!    under the same lock runs a *conflicting region* in HTM or Lock mode.
//!    So when SWOpt executions are retrying (tracked by a [`Snzi`]),
//!    executions that could conflict defer until the indicator clears —
//!    letting all SWOpt retries complete in parallel. The Y retry budget
//!    stays large only as a livelock backstop; with grouping, SWOpt
//!    "always succeeds with much fewer than Y attempts" (§4.2).
//!
//! 2. **Active-SWOpt indicator.** `COULD_SWOPT_BE_RUNNING` lets HTM-mode
//!    executions skip the version bump for their conflicting regions when
//!    no SWOpt path can be running, avoiding needless HTM-vs-HTM conflicts
//!    on the version word (§3.3). Soundness requires more than a
//!    conservative hint here: the indicator is a set of **striped
//!    [`HtmCell`]s** that the transaction reads *transactionally* —
//!    a SWOpt path starting after the check invalidates the transaction,
//!    which then re-executes and sees the indicator set. (Lock-mode
//!    executions cannot subscribe, so they never elide; the driver's
//!    `could_swopt_be_running` answers `true` in Lock mode.)

use ale_htm::HtmCell;
use ale_sync::{Backoff, Snzi, SnziGuard};
use ale_vtime::tick;

/// Default stripes for the active-SWOpt indicator (used by
/// [`Grouping::new`]; ALE sizes it per platform via
/// [`Grouping::with_stripes`]). SWOpt executions CAS their stripe twice
/// per execution, so wide machines need many stripes (4 measurably cap
/// T2-2's 128 threads); HTM elision checks scan *all* stripes, so narrow
/// machines want few.
const DEFAULT_ACTIVE_STRIPES: usize = 8;

/// SNZI depth for the retry indicator.
const RETRY_SNZI_LEVELS: u32 = 3;

/// Per-lock grouping state.
pub struct Grouping {
    retry_snzi: Snzi,
    active: Vec<HtmCell<u64>>,
}

impl Default for Grouping {
    fn default() -> Self {
        Self::new()
    }
}

impl Grouping {
    pub fn new() -> Self {
        Self::with_stripes(DEFAULT_ACTIVE_STRIPES)
    }

    /// A grouping whose active-SWOpt indicator has `stripes` cells
    /// (rounded up to 1). ALE passes ~`logical_threads / 8`, clamped to
    /// 4..=16, trading registration contention against elision-scan cost.
    pub fn with_stripes(stripes: usize) -> Self {
        Grouping {
            retry_snzi: Snzi::new(RETRY_SNZI_LEVELS),
            active: (0..stripes.max(1)).map(|_| HtmCell::new(0)).collect(),
        }
    }

    fn stripe(&self) -> &HtmCell<u64> {
        let id = ale_vtime::lane_id().unwrap_or_else(|| {
            use std::hash::{Hash, Hasher};
            let mut h = std::hash::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish() as usize
        });
        &self.active[id % self.active.len()]
    }

    /// Mark this thread as executing a SWOpt attempt. Must be held across
    /// all attempts of one execution; drops cleanly on unwind.
    pub fn swopt_active(&self) -> ActiveGuard<'_> {
        let cell = self.stripe();
        loop {
            let v = cell.get();
            if cell.compare_exchange(v, v + 1).is_ok() {
                break;
            }
        }
        ActiveGuard { cell }
    }

    /// Register this SWOpt execution as *retrying* (it detected
    /// interference at least once). Conflicting executions defer while any
    /// of these are outstanding.
    pub fn swopt_retrying(&self) -> SnziGuard<'_> {
        self.retry_snzi.arrive()
    }

    /// Are any SWOpt executions currently retrying?
    pub fn has_retrying_swopt(&self) -> bool {
        self.retry_snzi.query()
    }

    /// Defer until no SWOpt execution is retrying (called before HTM/Lock
    /// mode attempts of critical sections with conflicting regions).
    ///
    /// The poll granularity stays fine (small backoff cap): retries last
    /// about one optimistic read, so a coarse exponential wait would make
    /// deferring executions oversleep far past the point the indicator
    /// clears, wiping out the grouping win.
    pub fn wait_for_swopt_retries(&self) {
        let mut backoff = Backoff::with_max_exp(2);
        while self.retry_snzi.query() {
            backoff.spin();
        }
    }

    /// The `COULD_SWOPT_BE_RUNNING` read. Inside a hardware transaction
    /// every stripe read is tracked, making bump-elision sound (see module
    /// docs); outside it is a consistent snapshot-free scan (conservative).
    pub fn could_swopt_be_running(&self) -> bool {
        for cell in &self.active {
            tick(ale_vtime::Event::SharedLoad);
            if cell.get() != 0 {
                return true;
            }
        }
        false
    }
}

impl std::fmt::Debug for Grouping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Grouping")
            .field("retrying", &self.has_retrying_swopt())
            .field("could_swopt_be_running", &self.could_swopt_be_running())
            .finish()
    }
}

/// RAII guard for one thread's active-SWOpt registration.
pub struct ActiveGuard<'a> {
    cell: &'a HtmCell<u64>,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        loop {
            let v = self.cell.get();
            debug_assert!(v > 0, "active-SWOpt stripe underflow");
            if self.cell.compare_exchange(v, v - 1).is_ok() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_indicator_tracks_guards() {
        let g = Grouping::new();
        assert!(!g.could_swopt_be_running());
        let a = g.swopt_active();
        assert!(g.could_swopt_be_running());
        let b = g.swopt_active();
        drop(a);
        assert!(g.could_swopt_be_running());
        drop(b);
        assert!(!g.could_swopt_be_running());
    }

    #[test]
    fn retry_indicator_and_wait() {
        let g = Grouping::new();
        assert!(!g.has_retrying_swopt());
        let r = g.swopt_retrying();
        assert!(g.has_retrying_swopt());
        drop(r);
        assert!(!g.has_retrying_swopt());
        g.wait_for_swopt_retries(); // must not block when clear
    }

    #[test]
    fn transaction_subscribes_to_active_indicator() {
        use ale_htm::{attempt, AbortCode};
        use ale_vtime::{Platform, Rng};
        let g = Grouping::new();
        let p = Platform::testbed().htm.unwrap();
        let mut rng = Rng::new(4);
        // Tx checks the indicator (clear), then a SWOpt execution starts on
        // another thread; the tx must abort rather than commit an elision
        // decision that the new SWOpt reader contradicts.
        let r: Result<bool, _> = attempt(&p, &mut rng, || {
            let clear = !g.could_swopt_be_running();
            assert!(clear);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let guard = g.swopt_active();
                    std::mem::forget(guard); // stays active past the scope
                });
            });
            g.could_swopt_be_running()
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        assert!(g.could_swopt_be_running());
    }

    #[test]
    fn waiters_proceed_after_retries_finish() {
        use ale_vtime::{Platform, Sim};
        use std::sync::atomic::{AtomicU64, Ordering};
        let g = Grouping::new();
        let order = AtomicU64::new(0);
        Sim::new(Platform::testbed(), 2).run(|lane| {
            if lane.id() == 0 {
                let _r = g.swopt_retrying();
                ale_vtime::tick(ale_vtime::Event::LocalWork(10_000));
                order
                    .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                    .ok();
            } else {
                ale_vtime::tick(ale_vtime::Event::LocalWork(500));
                g.wait_for_swopt_retries();
                order
                    .compare_exchange(0, 2, Ordering::SeqCst, Ordering::SeqCst)
                    .ok();
            }
        });
        assert_eq!(
            order.load(Ordering::SeqCst),
            1,
            "the conflicting execution must defer to the retrying SWOpt"
        );
    }

    #[test]
    fn stripes_absorb_concurrent_activity() {
        let g = Grouping::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let g = &g;
                s.spawn(move || {
                    for _ in 0..1000 {
                        let guard = g.swopt_active();
                        std::hint::black_box(&guard);
                    }
                });
            }
        });
        assert!(!g.could_swopt_be_running(), "all guards dropped");
    }
}
