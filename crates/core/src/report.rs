//! Statistics and profiling reports (§3.4).
//!
//! "Even without using HTM or SWOpt modes, these reports provide insights
//! into application behavior on a given platform or workload … The reports
//! have also been invaluable in understanding and improving behavior of
//! adaptive policies."
//!
//! [`Report`] is a plain data snapshot (render it with `Display`, or walk
//! it programmatically — the benchmark harness extracts per-granule mode
//! breakdowns from it to reproduce the paper's inline statistics).

use std::sync::Arc;

use crate::meta::LockMeta;
use crate::mode::ExecMode;
use crate::Ale;

/// Snapshot of one granule's statistics.
#[derive(Debug, Clone)]
pub struct GranuleReport {
    /// Human description of the context (scope labels, outermost first).
    pub context: String,
    pub executions: u64,
    /// Per mode (HTM/SWOpt/Lock): attempts, successes, avg success ns.
    pub attempts: [u64; 3],
    pub successes: [u64; 3],
    pub avg_success_ns: [Option<u64>; 3],
    /// Sampled time recorded per mode ("how much time was spent in each
    /// mode", §3.4). Comparable across modes of one granule.
    pub sampled_time_ns: [u64; 3],
    pub lock_held_aborts: u64,
    pub conflict_aborts: u64,
    pub capacity_aborts: u64,
    pub spurious_aborts: u64,
    pub swopt_fails: u64,
    pub avg_exec_ns: Option<u64>,
    /// The policy's current decision for this granule.
    pub policy: String,
}

impl GranuleReport {
    /// Fraction of executions that completed in `mode`.
    pub fn mode_share(&self, mode: ExecMode) -> f64 {
        if self.executions == 0 {
            return 0.0;
        }
        self.successes[mode.index()] as f64 / self.executions as f64
    }

    /// HTM attempt success ratio, if HTM was attempted.
    pub fn htm_success_ratio(&self) -> Option<f64> {
        let a = self.attempts[ExecMode::Htm.index()];
        (a > 0).then(|| self.successes[ExecMode::Htm.index()] as f64 / a as f64)
    }

    /// Fraction of this granule's sampled time spent in `mode` (§3.4).
    pub fn time_share(&self, mode: ExecMode) -> Option<f64> {
        let total: u64 = self.sampled_time_ns.iter().sum();
        (total > 0).then(|| self.sampled_time_ns[mode.index()] as f64 / total as f64)
    }
}

/// Snapshot of one lock's statistics.
#[derive(Debug, Clone)]
pub struct LockReport {
    pub label: &'static str,
    /// The policy's current per-lock decision description.
    pub policy: String,
    pub granules: Vec<GranuleReport>,
}

impl LockReport {
    pub fn total_executions(&self) -> u64 {
        self.granules.iter().map(|g| g.executions).sum()
    }
}

/// Snapshot of a whole [`Ale`] instance.
#[derive(Debug, Clone)]
pub struct Report {
    pub policy: String,
    pub locks: Vec<LockReport>,
}

pub(crate) fn build(ale: &Ale, metas: &[Arc<LockMeta>]) -> Report {
    let policy = ale.policy();
    let locks = metas
        .iter()
        .map(|meta| {
            let granules = meta
                .granules
                .all()
                .iter()
                .map(|g| {
                    let s = &g.stats;
                    GranuleReport {
                        context: g.describe(),
                        executions: s.executions.read(),
                        attempts: std::array::from_fn(|i| s.attempts[i].read()),
                        successes: std::array::from_fn(|i| s.successes[i].read()),
                        avg_success_ns: std::array::from_fn(|i| s.success_time[i].avg_ns(1)),
                        sampled_time_ns: std::array::from_fn(|i| s.success_time[i].total_ns()),
                        lock_held_aborts: s.lock_held_aborts.read(),
                        conflict_aborts: s.conflict_aborts.read(),
                        capacity_aborts: s.capacity_aborts.read(),
                        spurious_aborts: s.spurious_aborts.read(),
                        swopt_fails: s.swopt_fails.read(),
                        avg_exec_ns: s.exec_time.avg_ns(1),
                        policy: policy.describe_granule(meta, g),
                    }
                })
                .collect();
            LockReport {
                label: meta.label(),
                policy: policy.describe_lock(meta),
                granules,
            }
        })
        .collect();
    Report {
        policy: ale.policy_name(),
        locks,
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== ALE report (policy: {}) ===", self.policy)?;
        for lock in &self.locks {
            writeln!(
                f,
                "lock `{}` — {} executions{}",
                lock.label,
                lock.total_executions(),
                if lock.policy.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", lock.policy)
                }
            )?;
            for g in &lock.granules {
                writeln!(f, "  context: {}", g.context)?;
                if !g.policy.is_empty() {
                    writeln!(f, "    policy: {}", g.policy)?;
                }
                writeln!(f, "    executions: {}", g.executions)?;
                for mode in ExecMode::ALL {
                    let i = mode.index();
                    if g.attempts[i] == 0 {
                        continue;
                    }
                    let avg = g.avg_success_ns[i]
                        .map(|n| format!("{n} ns"))
                        .unwrap_or_else(|| "-".into());
                    let share = g
                        .time_share(mode)
                        .map(|sh| format!("{:.0} %", sh * 100.0))
                        .unwrap_or_else(|| "-".into());
                    writeln!(
                        f,
                        "    {:<6} attempts: {:<8} successes: {:<8} avg: {:<10} time share: {}",
                        mode.name(),
                        g.attempts[i],
                        g.successes[i],
                        avg,
                        share
                    )?;
                }
                let aborts =
                    g.lock_held_aborts + g.conflict_aborts + g.capacity_aborts + g.spurious_aborts;
                if aborts > 0 {
                    writeln!(
                        f,
                        "    HTM aborts — lock-held: {} conflict: {} capacity: {} spurious: {}",
                        g.lock_held_aborts, g.conflict_aborts, g.capacity_aborts, g.spurious_aborts
                    )?;
                }
                if g.swopt_fails > 0 {
                    writeln!(f, "    SWOpt interference retries: {}", g.swopt_fails)?;
                }
            }
        }
        Ok(())
    }
}

impl Report {
    /// Flat CSV rendering (one row per granule), for the figure harness.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "lock,context,executions,htm_attempts,htm_successes,swopt_attempts,\
             swopt_successes,lock_attempts,lock_successes,lock_held_aborts,\
             conflict_aborts,capacity_aborts,spurious_aborts,swopt_fails\n",
        );
        for lock in &self.locks {
            for g in &lock.granules {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                    lock.label,
                    g.context.replace(',', ";"),
                    g.executions,
                    g.attempts[0],
                    g.successes[0],
                    g.attempts[1],
                    g.successes[1],
                    g.attempts[2],
                    g.successes[2],
                    g.lock_held_aborts,
                    g.conflict_aborts,
                    g.capacity_aborts,
                    g.spurious_aborts,
                    g.swopt_fails,
                ));
            }
        }
        out
    }

    /// Find a lock's report by label.
    pub fn lock(&self, label: &str) -> Option<&LockReport> {
        self.locks.iter().find(|l| l.label == label)
    }
}
