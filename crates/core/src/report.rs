//! Statistics and profiling reports (§3.4).
//!
//! "Even without using HTM or SWOpt modes, these reports provide insights
//! into application behavior on a given platform or workload … The reports
//! have also been invaluable in understanding and improving behavior of
//! adaptive policies."
//!
//! [`Report`] is a plain data snapshot (render it with `Display`, or walk
//! it programmatically — the benchmark harness extracts per-granule mode
//! breakdowns from it to reproduce the paper's inline statistics).

use std::sync::Arc;

use crate::meta::LockMeta;
use crate::mode::ExecMode;
use crate::Ale;

/// Minimum samples [`SampledTime`](ale_sync::SampledTime) must hold before
/// a mean is believed; below this `avg_success_ns` stays `None` and the
/// `Display` rendering says "warming up" instead of fabricating a number.
pub const MIN_AVG_SAMPLES: u64 = 1;

/// Snapshot of one granule's statistics.
#[derive(Debug, Clone)]
pub struct GranuleReport {
    /// Human description of the context (scope labels, outermost first).
    pub context: String,
    pub executions: u64,
    /// Per mode (HTM/SWOpt/Lock): attempts, successes, avg success ns.
    pub attempts: [u64; 3],
    pub successes: [u64; 3],
    /// `None` until [`MIN_AVG_SAMPLES`] timing samples exist for the mode
    /// (exporters must skip it rather than render NaN).
    pub avg_success_ns: [Option<u64>; 3],
    /// Timing samples recorded per mode (how warmed-up each average is).
    pub time_samples: [u64; 3],
    /// Sampled time recorded per mode ("how much time was spent in each
    /// mode", §3.4). Comparable across modes of one granule.
    pub sampled_time_ns: [u64; 3],
    pub lock_held_aborts: u64,
    pub conflict_aborts: u64,
    pub capacity_aborts: u64,
    pub spurious_aborts: u64,
    pub swopt_fails: u64,
    pub avg_exec_ns: Option<u64>,
    /// The policy's current decision for this granule.
    pub policy: String,
}

impl GranuleReport {
    /// Fraction of executions that completed in `mode`.
    pub fn mode_share(&self, mode: ExecMode) -> f64 {
        if self.executions == 0 {
            return 0.0;
        }
        self.successes[mode.index()] as f64 / self.executions as f64
    }

    /// HTM attempt success ratio, if HTM was attempted.
    pub fn htm_success_ratio(&self) -> Option<f64> {
        let a = self.attempts[ExecMode::Htm.index()];
        (a > 0).then(|| self.successes[ExecMode::Htm.index()] as f64 / a as f64)
    }

    /// Fraction of this granule's sampled time spent in `mode` (§3.4).
    pub fn time_share(&self, mode: ExecMode) -> Option<f64> {
        let total: u64 = self.sampled_time_ns.iter().sum();
        (total > 0).then(|| self.sampled_time_ns[mode.index()] as f64 / total as f64)
    }
}

/// Snapshot of one lock's statistics.
#[derive(Debug, Clone)]
pub struct LockReport {
    pub label: &'static str,
    /// The policy's current per-lock decision description.
    pub policy: String,
    pub granules: Vec<GranuleReport>,
}

impl LockReport {
    pub fn total_executions(&self) -> u64 {
        self.granules.iter().map(|g| g.executions).sum()
    }
}

/// Snapshot of a whole [`Ale`] instance.
#[derive(Debug, Clone)]
pub struct Report {
    pub policy: String,
    pub locks: Vec<LockReport>,
}

pub(crate) fn build(ale: &Ale, metas: &[Arc<LockMeta>]) -> Report {
    let policy = ale.policy();
    let locks = metas
        .iter()
        .map(|meta| {
            let granules = meta
                .granules
                .all()
                .iter()
                .map(|g| {
                    let s = &g.stats;
                    GranuleReport {
                        context: g.describe(),
                        executions: s.executions.read(),
                        attempts: std::array::from_fn(|i| s.attempts[i].read()),
                        successes: std::array::from_fn(|i| s.successes[i].read()),
                        avg_success_ns: std::array::from_fn(|i| {
                            s.success_time[i].avg_ns(MIN_AVG_SAMPLES)
                        }),
                        time_samples: std::array::from_fn(|i| s.success_time[i].samples()),
                        sampled_time_ns: std::array::from_fn(|i| s.success_time[i].total_ns()),
                        lock_held_aborts: s.lock_held_aborts.read(),
                        conflict_aborts: s.conflict_aborts.read(),
                        capacity_aborts: s.capacity_aborts.read(),
                        spurious_aborts: s.spurious_aborts.read(),
                        swopt_fails: s.swopt_fails.read(),
                        avg_exec_ns: s.exec_time.avg_ns(1),
                        policy: policy.describe_granule(meta, g),
                    }
                })
                .collect();
            LockReport {
                label: meta.label(),
                policy: policy.describe_lock(meta),
                granules,
            }
        })
        .collect();
    Report {
        policy: ale.policy_name(),
        locks,
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== ALE report (policy: {}) ===", self.policy)?;
        for lock in &self.locks {
            writeln!(
                f,
                "lock `{}` — {} executions{}",
                lock.label,
                lock.total_executions(),
                if lock.policy.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", lock.policy)
                }
            )?;
            for g in &lock.granules {
                writeln!(f, "  context: {}", g.context)?;
                if !g.policy.is_empty() {
                    writeln!(f, "    policy: {}", g.policy)?;
                }
                writeln!(f, "    executions: {}", g.executions)?;
                for mode in ExecMode::ALL {
                    let i = mode.index();
                    if g.attempts[i] == 0 {
                        continue;
                    }
                    let avg = g.avg_success_ns[i]
                        .map(|n| format!("{n} ns"))
                        .unwrap_or_else(|| format!("warming up (n<{MIN_AVG_SAMPLES})"));
                    let share = g
                        .time_share(mode)
                        .map(|sh| format!("{:.0} %", sh * 100.0))
                        .unwrap_or_else(|| "-".into());
                    writeln!(
                        f,
                        "    {:<6} attempts: {:<8} successes: {:<8} avg: {:<10} time share: {}",
                        mode.name(),
                        g.attempts[i],
                        g.successes[i],
                        avg,
                        share
                    )?;
                }
                let aborts =
                    g.lock_held_aborts + g.conflict_aborts + g.capacity_aborts + g.spurious_aborts;
                if aborts > 0 {
                    writeln!(
                        f,
                        "    HTM aborts — lock-held: {} conflict: {} capacity: {} spurious: {}",
                        g.lock_held_aborts, g.conflict_aborts, g.capacity_aborts, g.spurious_aborts
                    )?;
                }
                if g.swopt_fails > 0 {
                    writeln!(f, "    SWOpt interference retries: {}", g.swopt_fails)?;
                }
            }
        }
        Ok(())
    }
}

impl Report {
    /// Flat CSV rendering (one row per granule), for the figure harness.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "lock,context,executions,htm_attempts,htm_successes,swopt_attempts,\
             swopt_successes,lock_attempts,lock_successes,lock_held_aborts,\
             conflict_aborts,capacity_aborts,spurious_aborts,swopt_fails\n",
        );
        for lock in &self.locks {
            for g in &lock.granules {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                    lock.label,
                    g.context.replace(',', ";"),
                    g.executions,
                    g.attempts[0],
                    g.successes[0],
                    g.attempts[1],
                    g.successes[1],
                    g.attempts[2],
                    g.successes[2],
                    g.lock_held_aborts,
                    g.conflict_aborts,
                    g.capacity_aborts,
                    g.spurious_aborts,
                    g.swopt_fails,
                ));
            }
        }
        out
    }

    /// Find a lock's report by label.
    pub fn lock(&self, label: &str) -> Option<&LockReport> {
        self.locks.iter().find(|l| l.label == label)
    }

    /// Prometheus text-exposition snapshot of the per-granule metrics.
    ///
    /// Metric names and label sets are a stable surface (guarded by a
    /// golden-snapshot test); extend only by adding new families. The
    /// output is NaN-free by construction: averages below
    /// [`MIN_AVG_SAMPLES`] are absent rather than rendered as NaN.
    pub fn to_prometheus(&self) -> String {
        let mut w = ale_trace::PromWriter::new();
        let each = |f: &mut dyn FnMut(&LockReport, &GranuleReport)| {
            for lock in &self.locks {
                for g in &lock.granules {
                    f(lock, g);
                }
            }
        };

        w.family(
            "ale_granule_executions_total",
            "Completed critical-section executions per granule.",
            "counter",
        );
        each(&mut |l, g| {
            w.sample(
                "ale_granule_executions_total",
                &[("lock", l.label), ("context", &g.context)],
                g.executions as f64,
            );
        });

        w.family(
            "ale_granule_attempts_total",
            "Execution attempts per granule and mode.",
            "counter",
        );
        each(&mut |l, g| {
            for mode in ExecMode::ALL {
                w.sample(
                    "ale_granule_attempts_total",
                    &[
                        ("lock", l.label),
                        ("context", &g.context),
                        ("mode", mode.name()),
                    ],
                    g.attempts[mode.index()] as f64,
                );
            }
        });

        w.family(
            "ale_granule_successes_total",
            "Successful executions per granule and mode.",
            "counter",
        );
        each(&mut |l, g| {
            for mode in ExecMode::ALL {
                w.sample(
                    "ale_granule_successes_total",
                    &[
                        ("lock", l.label),
                        ("context", &g.context),
                        ("mode", mode.name()),
                    ],
                    g.successes[mode.index()] as f64,
                );
            }
        });

        w.family(
            "ale_granule_avg_success_ns",
            "Mean successful-execution time per granule and mode \
             (absent until warmed up).",
            "gauge",
        );
        each(&mut |l, g| {
            for mode in ExecMode::ALL {
                if let Some(ns) = g.avg_success_ns[mode.index()] {
                    w.sample(
                        "ale_granule_avg_success_ns",
                        &[
                            ("lock", l.label),
                            ("context", &g.context),
                            ("mode", mode.name()),
                        ],
                        ns as f64,
                    );
                }
            }
        });

        w.family(
            "ale_granule_sampled_time_ns_total",
            "Sampled time spent in successful executions per granule and mode.",
            "counter",
        );
        each(&mut |l, g| {
            for mode in ExecMode::ALL {
                w.sample(
                    "ale_granule_sampled_time_ns_total",
                    &[
                        ("lock", l.label),
                        ("context", &g.context),
                        ("mode", mode.name()),
                    ],
                    g.sampled_time_ns[mode.index()] as f64,
                );
            }
        });

        w.family(
            "ale_granule_htm_aborts_total",
            "HTM aborts per granule by classification.",
            "counter",
        );
        each(&mut |l, g| {
            for (class, count) in [
                ("lock_held", g.lock_held_aborts),
                ("conflict", g.conflict_aborts),
                ("capacity", g.capacity_aborts),
                ("spurious", g.spurious_aborts),
            ] {
                w.sample(
                    "ale_granule_htm_aborts_total",
                    &[("lock", l.label), ("context", &g.context), ("class", class)],
                    count as f64,
                );
            }
        });

        w.family(
            "ale_granule_swopt_fails_total",
            "SWOpt attempts that detected interference and retried.",
            "counter",
        );
        each(&mut |l, g| {
            w.sample(
                "ale_granule_swopt_fails_total",
                &[("lock", l.label), ("context", &g.context)],
                g.swopt_fails as f64,
            );
        });

        w.family(
            "ale_granule_avg_exec_ns",
            "Mean whole-execution time per granule, including failed \
             attempts (absent until warmed up).",
            "gauge",
        );
        each(&mut |l, g| {
            if let Some(ns) = g.avg_exec_ns {
                w.sample(
                    "ale_granule_avg_exec_ns",
                    &[("lock", l.label), ("context", &g.context)],
                    ns as f64,
                );
            }
        });

        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A report with one warmed-up mode (Lock) and one cold mode (HTM,
    /// attempts recorded but no timing samples yet).
    fn demo_report() -> Report {
        Report {
            policy: "static(3, 10)".to_string(),
            locks: vec![LockReport {
                label: "demo_lock",
                policy: String::new(),
                granules: vec![GranuleReport {
                    context: "insert".to_string(),
                    executions: 8,
                    attempts: [5, 0, 3],
                    successes: [0, 0, 3],
                    avg_success_ns: [None, None, Some(120)],
                    time_samples: [0, 0, 3],
                    sampled_time_ns: [0, 0, 360],
                    lock_held_aborts: 2,
                    conflict_aborts: 3,
                    capacity_aborts: 0,
                    spurious_aborts: 0,
                    swopt_fails: 0,
                    avg_exec_ns: None,
                    policy: String::new(),
                }],
            }],
        }
    }

    #[test]
    fn display_says_warming_up_instead_of_blank() {
        let text = demo_report().to_string();
        assert!(
            text.contains(&format!("warming up (n<{MIN_AVG_SAMPLES})")),
            "cold HTM average must render as warming up:\n{text}"
        );
        assert!(
            text.contains("120 ns"),
            "warm Lock average renders:\n{text}"
        );
        assert!(!text.contains("avg: -"), "the old blank rendering is gone");
    }

    #[test]
    fn prometheus_output_is_nan_free_and_skips_cold_averages() {
        let text = demo_report().to_prometheus();
        assert!(!text.contains("NaN"), "NaN-free contract:\n{text}");
        assert!(text.contains(
            "ale_granule_avg_success_ns{lock=\"demo_lock\",context=\"insert\",mode=\"Lock\"} 120\n"
        ));
        assert!(
            !text.contains("mode=\"HTM\"} NaN")
                && !text
                    .contains("avg_success_ns{lock=\"demo_lock\",context=\"insert\",mode=\"HTM\"}"),
            "cold averages are absent, not zero or NaN:\n{text}"
        );
        assert!(text.contains(
            "ale_granule_htm_aborts_total{lock=\"demo_lock\",context=\"insert\",class=\"conflict\"} 3\n"
        ));
        assert!(text.contains("# TYPE ale_granule_executions_total counter\n"));
    }
}
