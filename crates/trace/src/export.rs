//! Exporters over a drained event stream: the deterministic merge order,
//! an FNV-1a digest (the ale-check oracle surface), a serde-less JSONL
//! dump, and the Prometheus-style text-format building blocks used by
//! `ale-core`'s report snapshot.

use crate::event::TraceEvent;
use crate::intern::label_name;

/// Sort `events` into the canonical merged order: `(vtime, lane, seq)`.
///
/// Under the virtual-time simulator this is a *total* order — each lane
/// owns one ring whose `seq` is monotone, and vtime ties across lanes are
/// broken by the lane id — so two same-seed runs produce byte-identical
/// merged streams (the determinism contract of DESIGN.md §11).
pub fn merge(events: &mut [TraceEvent]) {
    events.sort_by_key(|e| (e.vtime, e.lane, e.seq));
}

/// FNV-1a, the same parameters as ale-check's digest (kept local so the
/// trace crate stays at the bottom of the dependency stack).
pub struct Fnv(u64);

impl Fnv {
    pub fn new() -> Fnv {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// Digest of a merged stream plus its drop count: folds every event's
/// canonical encoding, then the drop counter, so a skipped emit *or* a
/// silently shrunk ring both change the digest.
pub fn digest(events: &[TraceEvent], dropped: u64) -> u64 {
    let mut h = Fnv::new();
    for e in events {
        h.write(&e.encode());
    }
    h.write_u64(dropped);
    h.finish()
}

/// Escape `s` for inclusion in a JSON string literal (quotes, backslash,
/// control characters; everything else passes through as UTF-8).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render one event as a single JSON object (no trailing newline).
pub fn to_json(e: &TraceEvent) -> String {
    let kind = e.kind().map(|k| k.name()).unwrap_or("invalid").to_string();
    format!(
        "{{\"vt\":{},\"lane\":{},\"seq\":{},\"kind\":\"{}\",\"label\":\"{}\",\
         \"a\":{},\"b\":{},\"c\":{},\"payload\":{}}}",
        e.vtime,
        e.lane,
        e.seq,
        escape_json(&kind),
        escape_json(&label_name(e.label)),
        e.a,
        e.b,
        e.c,
        e.payload
    )
}

/// Render a merged stream as JSONL (one object per line, each terminated
/// with `\n`).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&to_json(e));
        out.push('\n');
    }
    out
}

/// Builder for the Prometheus text exposition format.
///
/// Guarantees NaN-free output: non-finite sample values are skipped (the
/// caller models "no data yet" by not emitting the sample at all — see
/// `GranuleReport::avg_success_ns`).
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

/// Escape a label *value* per the text exposition format.
fn escape_prom_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl PromWriter {
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    /// Emit the `# HELP` / `# TYPE` preamble for a metric family.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Emit one sample. Non-finite values are dropped (NaN-free contract).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !value.is_finite() {
            return;
        }
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out
                    .push_str(&format!("{k}=\"{}\"", escape_prom_label(v)));
            }
            self.out.push('}');
        }
        self.out.push_str(&format!(" {value}\n"));
    }

    pub fn finish(self) -> String {
        self.out
    }
}

/// Break a merged stream's mode mix down by scenario: one
/// `ale_scenario_mode_total{scenario,mode}` counter per observed
/// (scenario tag, mode) pair, in deterministic (tag, mode) order.
///
/// Events emitted outside any [`set_scenario`](crate::scenario::set_scenario)
/// window report as `scenario="untagged"`.
pub fn scenario_mode_mix(events: &[TraceEvent]) -> String {
    use crate::event::EventKind;
    let mut counts: std::collections::BTreeMap<(u8, u8), u64> = std::collections::BTreeMap::new();
    for e in events {
        if e.kind() == Some(EventKind::ModeDecision) {
            *counts.entry((e.c, e.a)).or_insert(0) += 1;
        }
    }
    let mut w = PromWriter::new();
    w.family(
        "ale_scenario_mode_total",
        "Critical-section completions by scenario and mode.",
        "counter",
    );
    for ((tag, mode), n) in &counts {
        let name = crate::scenario::scenario_name(*tag);
        let scenario = if name.is_empty() { "untagged" } else { &name };
        let mode = match mode {
            0 => "htm",
            1 => "swopt",
            2 => "lock",
            _ => "unknown",
        };
        w.sample(
            "ale_scenario_mode_total",
            &[("scenario", scenario), ("mode", mode)],
            *n as f64,
        );
    }
    w.finish()
}

/// Break a merged stream's mode mix down by *shard*: one
/// `ale_shard_mode_total{shard,mode}` counter per observed (shard index,
/// mode) pair, in deterministic (shard, mode) order.
///
/// Shards are recognised by their lock labels — `AleShardedMap` labels
/// shard `i`'s lock `shard<ii>` (two digits, `shard00`..`shard31`) — so
/// the export needs no side channel: the intern table already carries the
/// shard identity. Events on non-shard locks are ignored; under Zipf skew
/// the per-shard counters make the hot shard's mode collapse (e.g. the
/// StormBreaker demoting `shard03` to Lock while cold shards keep
/// eliding) directly visible on a dashboard.
pub fn shard_mode_mix(events: &[TraceEvent]) -> String {
    use crate::event::EventKind;
    let mut counts: std::collections::BTreeMap<(u8, u8), u64> = std::collections::BTreeMap::new();
    for e in events {
        if e.kind() != Some(EventKind::ModeDecision) {
            continue;
        }
        let label = label_name(e.label);
        let Some(idx) = label.strip_prefix("shard") else {
            continue;
        };
        let Ok(shard) = idx.parse::<u8>() else {
            continue;
        };
        *counts.entry((shard, e.a)).or_insert(0) += 1;
    }
    let mut w = PromWriter::new();
    w.family(
        "ale_shard_mode_total",
        "Critical-section completions by shard and mode.",
        "counter",
    );
    for ((shard, mode), n) in &counts {
        let mode = match mode {
            0 => "htm",
            1 => "swopt",
            2 => "lock",
            _ => "unknown",
        };
        w.sample(
            "ale_shard_mode_total",
            &[("shard", &shard.to_string()), ("mode", mode)],
            *n as f64,
        );
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_vtime_then_lane_then_seq() {
        let mk = |vt: u64, lane: u16, seq: u32| {
            let mut e = TraceEvent::lock_poison(0);
            e.vtime = vt;
            e.lane = lane;
            e.seq = seq;
            e
        };
        let mut evs = vec![mk(5, 1, 0), mk(5, 0, 2), mk(3, 2, 9), mk(5, 0, 1)];
        merge(&mut evs);
        let order: Vec<(u64, u16, u32)> = evs.iter().map(|e| (e.vtime, e.lane, e.seq)).collect();
        assert_eq!(order, vec![(3, 2, 9), (5, 0, 1), (5, 0, 2), (5, 1, 0)]);
    }

    #[test]
    fn digest_is_sensitive_to_events_and_drops() {
        let e = TraceEvent::mode_decision(1, 0, 0, 7);
        let base = digest(&[e], 0);
        assert_ne!(base, digest(&[], 0));
        assert_ne!(base, digest(&[e], 1));
        assert_eq!(base, digest(&[e], 0));
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc\r"), "a\\nb\\tc\\r");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("ünïcode"), "ünïcode");
    }

    #[test]
    fn jsonl_renders_one_object_per_line() {
        let mut e = TraceEvent::htm_abort(0, 0, 0xFF, true, 2);
        e.vtime = 42;
        let text = to_jsonl(&[e, e]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], lines[1]);
        assert!(lines[0].starts_with("{\"vt\":42,"));
        assert!(lines[0].contains("\"kind\":\"htm_abort\""));
        assert!(lines[0].contains("\"c\":1"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn prom_writer_formats_and_skips_non_finite() {
        let mut w = PromWriter::new();
        w.family("ale_demo_total", "A demo counter.", "counter");
        w.sample("ale_demo_total", &[("lock", "a\"b")], 3.0);
        w.sample("ale_demo_total", &[("lock", "nan")], f64::NAN);
        w.sample("ale_demo_gauge", &[], 0.5);
        let text = w.finish();
        assert!(text.contains("# HELP ale_demo_total A demo counter.\n"));
        assert!(text.contains("# TYPE ale_demo_total counter\n"));
        assert!(text.contains("ale_demo_total{lock=\"a\\\"b\"} 3\n"));
        assert!(text.contains("ale_demo_gauge 0.5\n"));
        assert!(!text.contains("NaN"));
    }
}
