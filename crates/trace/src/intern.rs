//! Label interning: trace records carry a `u16` id instead of a string.
//!
//! Ids are assigned in first-use order. Under the deterministic simulator
//! first use is itself deterministic, and the table is *never cleared* —
//! re-running the same workload in one process resolves every label to the
//! id it already has — so same-seed runs agree on ids, streams, and
//! digests. Id 0 is reserved for the empty ("unlabelled") string.
//!
//! Interning takes a mutex, so it belongs on emit's already-cold path (or
//! better, at site setup); the disabled-trace fast path never gets here.

use std::sync::{Mutex, OnceLock};

fn table() -> &'static Mutex<Vec<String>> {
    static TABLE: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(vec![String::new()]))
}

/// The id for `name`, interning it on first use. A table overflow (more
/// than `u16::MAX` distinct labels) degrades to the unlabelled id 0.
pub fn label_id(name: &str) -> u16 {
    if name.is_empty() {
        return 0;
    }
    let mut t = table().lock().unwrap();
    if let Some(i) = t.iter().position(|s| s == name) {
        return i as u16;
    }
    if t.len() > u16::MAX as usize {
        return 0;
    }
    t.push(name.to_string());
    (t.len() - 1) as u16
}

/// The label behind `id` (empty string for id 0 or an unknown id).
pub fn label_name(id: u16) -> String {
    table()
        .lock()
        .unwrap()
        .get(id as usize)
        .cloned()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_reserved() {
        assert_eq!(label_id(""), 0);
        assert_eq!(label_name(0), "");
        let a = label_id("trace-intern-test-a");
        let b = label_id("trace-intern-test-b");
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(label_id("trace-intern-test-a"), a);
        assert_eq!(label_name(a), "trace-intern-test-a");
        assert_eq!(label_name(u16::MAX), "");
    }
}
