//! # ale-trace — always-on observability for the ALE runtime
//!
//! The paper calls its per-granule statistics "invaluable in understanding
//! and improving behavior of adaptive policies" (§3.4); this crate extends
//! that discipline from after-the-fact counters to a live event stream,
//! with the same low-interference rules the BFP counters follow:
//!
//! * **Emit sites cost one branch when disabled.** [`emit`] is a relaxed
//!   atomic load plus a predictable branch; the cold half (sampling,
//!   timestamping, the ring write) is out-of-line. With tracing disabled
//!   (the default) the instrumented runtime is bit-identical to the
//!   uninstrumented one — no ticks, no RNG draws, no allocation.
//! * **Recording is per-thread and lock-free.** Each emitting thread owns
//!   a bounded SPSC [`Ring`] of fixed-size binary [`TraceEvent`] records;
//!   a full ring drops the newest record and counts the drop.
//! * **The merged stream is deterministic.** [`drain`] orders events by
//!   `(vtime, lane, seq)` — a total order under the virtual-time
//!   simulator — so same-seed runs produce byte-identical JSONL and equal
//!   FNV digests, which ale-check uses as an oracle surface.
//!
//! Two exporters sit on top: a JSONL event dump ([`export::to_jsonl`]) and
//! the Prometheus text-format building blocks ([`export::PromWriter`])
//! behind `ale-core`'s `Report::to_prometheus`.

pub mod event;
pub mod export;
mod intern;
pub mod ring;
pub mod scenario;

pub use event::{reason, EventKind, TraceEvent};
pub use export::{
    digest, escape_json, scenario_mode_mix, shard_mode_mix, to_json, to_jsonl, Fnv, PromWriter,
};
pub use intern::{label_id, label_name};
pub use ring::Ring;
pub use scenario::{clear_scenario, scenario_name, scenario_tag, set_scenario};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ale_vtime::{lane_id, now, tick, Event};

/// Default per-thread ring capacity (records).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// The `lane` value stamped on events emitted outside a simulated lane
/// (e.g. a harness thread doing setup or verification). Off-lane threads
/// have no virtual clock — `ale_vtime::now()` falls back to a real,
/// nondeterministic wall clock there — so their events carry `vtime 0` and
/// this sentinel lane, sorting to the head of the merged stream in emit
/// order. That keeps same-seed streams byte-identical as long as at most
/// one off-lane thread emits (true for every harness in this workspace).
pub const OFF_LANE: u16 = u16::MAX;

/// Modelled cost of one accepted record under virtual time: a handful of
/// stores into a thread-local line. The slot is L1-resident (the producer
/// owns the ring) and the head publish is a single release store, so the
/// real-hardware analogue is single-digit nanoseconds. Charged only when a
/// record is actually considered (enabled path), so disabled runs take no
/// ticks.
const EMIT_COST_NS: u64 = 8;

/// Tracing configuration, carried by `AleConfig::with_trace`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch; `false` leaves every emit site at one branch.
    pub enabled: bool,
    /// Per-thread ring capacity in records (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Keep every `2^sample_shift`-th record per thread (0 = keep all,
    /// which the determinism oracle requires).
    pub sample_shift: u32,
}

impl TraceConfig {
    /// The default: tracing off, emit sites cost one branch.
    pub fn disabled() -> TraceConfig {
        TraceConfig {
            enabled: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
            sample_shift: 0,
        }
    }

    /// Tracing on, full sampling, default ring capacity.
    pub fn enabled() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ..TraceConfig::disabled()
        }
    }

    pub fn with_ring_capacity(mut self, records: usize) -> TraceConfig {
        self.ring_capacity = records;
        self
    }

    pub fn with_sample_shift(mut self, shift: u32) -> TraceConfig {
        self.sample_shift = shift;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped by [`configure`]; stale thread-local rings re-register lazily.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static SAMPLE_SHIFT: AtomicU32 = AtomicU32::new(0);

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct LocalRing {
    epoch: u64,
    ring: Arc<Ring>,
    sample_ctr: u64,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalRing>> = const { RefCell::new(None) };
}

/// Is tracing globally enabled?
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record one event. The disabled path is a relaxed load and a branch;
/// everything else (sampling, lane/vtime stamping, the ring write, and a
/// small modelled time charge) lives in the cold half.
#[inline]
pub fn emit(ev: TraceEvent) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    emit_slow(ev);
}

#[cold]
fn emit_slow(mut ev: TraceEvent) {
    let epoch = EPOCH.load(Ordering::Acquire);
    let recorded = LOCAL.with(|slot| {
        let mut s = slot.borrow_mut();
        let stale = match s.as_ref() {
            Some(l) => l.epoch != epoch,
            None => true,
        };
        if stale {
            let mut reg = registry().lock().unwrap();
            let ring = Arc::new(Ring::with_capacity(
                RING_CAP.load(Ordering::Relaxed),
                reg.len() as u16,
            ));
            reg.push(Arc::clone(&ring));
            *s = Some(LocalRing {
                epoch,
                ring,
                sample_ctr: 0,
            });
        }
        let local = s.as_mut().expect("local ring just installed");
        let shift = SAMPLE_SHIFT.load(Ordering::Relaxed);
        if shift != 0 {
            let keep = local.sample_ctr & ((1u64 << shift.min(63)) - 1) == 0;
            local.sample_ctr += 1;
            if !keep {
                return false;
            }
        }
        match lane_id() {
            Some(l) => {
                ev.lane = l.min(OFF_LANE as usize - 1) as u16;
                ev.vtime = now();
            }
            None => {
                // No virtual clock off-lane; see [`OFF_LANE`].
                ev.lane = OFF_LANE;
                ev.vtime = 0;
            }
        }
        local.ring.push(ev);
        true
    });
    if recorded {
        tick(Event::Raw(EMIT_COST_NS));
    }
}

/// Install `cfg` process-wide: drops all registered rings, invalidates
/// thread-local rings (they re-register on next emit), and flips the gate.
/// Call between runs, not while traced threads are executing.
pub fn configure(cfg: &TraceConfig) {
    ENABLED.store(false, Ordering::Release);
    let mut reg = registry().lock().unwrap();
    reg.clear();
    RING_CAP.store(cfg.ring_capacity, Ordering::Relaxed);
    SAMPLE_SHIFT.store(cfg.sample_shift, Ordering::Relaxed);
    EPOCH.fetch_add(1, Ordering::Release);
    drop(reg);
    if cfg.enabled {
        ENABLED.store(true, Ordering::Release);
    }
}

/// Disable tracing and discard any buffered events.
pub fn reset() {
    configure(&TraceConfig::disabled());
}

/// A drained, merged event stream.
#[derive(Debug, Clone, Default)]
pub struct Drained {
    /// All buffered events, in the canonical `(vtime, lane, seq)` order.
    pub events: Vec<TraceEvent>,
    /// Total records dropped by full rings (cumulative per configure()).
    pub dropped: u64,
}

impl Drained {
    /// FNV digest of the stream (events + drop count).
    pub fn digest(&self) -> u64 {
        export::digest(&self.events, self.dropped)
    }

    /// JSONL rendering of the stream.
    pub fn to_jsonl(&self) -> String {
        export::to_jsonl(&self.events)
    }
}

/// Collect every ring's buffered events into one merged stream. Safe to
/// call while producers run (each ring's protocol allows it), but the
/// deterministic-digest contract only holds when producers have quiesced.
pub fn drain() -> Drained {
    let reg = registry().lock().unwrap();
    let mut events = Vec::new();
    let mut dropped = 0;
    for r in reg.iter() {
        r.drain_into(&mut events);
        dropped += r.drops();
    }
    drop(reg);
    export::merge(&mut events);
    Drained { events, dropped }
}

/// Trace state is process-global; tests that reconfigure it must not
/// overlap (mirrors `ale-sync`'s watchdog guard).
pub fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emit_records_nothing() {
        let _g = test_serial();
        reset();
        emit(TraceEvent::lock_poison(0));
        assert!(drain().events.is_empty());
        assert!(!is_enabled());
    }

    #[test]
    fn enabled_emit_round_trips() {
        let _g = test_serial();
        configure(&TraceConfig::enabled());
        emit(TraceEvent::mode_decision(label_id("test-lock"), 2, 3, 1));
        emit(TraceEvent::lock_poison(label_id("test-lock")));
        let d = drain();
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].kind(), Some(EventKind::ModeDecision));
        assert_eq!(d.events[1].kind(), Some(EventKind::LockPoison));
        assert_eq!(d.dropped, 0);
        let jsonl = d.to_jsonl();
        assert!(jsonl.contains("\"label\":\"test-lock\""));
        reset();
    }

    #[test]
    fn configure_discards_prior_events() {
        let _g = test_serial();
        configure(&TraceConfig::enabled());
        emit(TraceEvent::lock_poison(0));
        configure(&TraceConfig::enabled());
        assert!(drain().events.is_empty());
        // The thread-local ring from before the reconfigure is stale; the
        // next emit must land in a fresh registered ring.
        emit(TraceEvent::lock_poison(0));
        assert_eq!(drain().events.len(), 1);
        reset();
    }

    #[test]
    fn sampling_keeps_every_nth() {
        let _g = test_serial();
        configure(&TraceConfig::enabled().with_sample_shift(2));
        for i in 0..8 {
            emit(TraceEvent::mode_decision(0, 0, 0, i));
        }
        let d = drain();
        assert_eq!(d.events.len(), 2, "shift 2 keeps every 4th record");
        assert_eq!(d.events[0].payload, 0);
        assert_eq!(d.events[1].payload, 4);
        reset();
    }

    #[test]
    fn ring_capacity_is_honoured_and_drops_counted() {
        let _g = test_serial();
        configure(&TraceConfig::enabled().with_ring_capacity(8));
        for i in 0..12 {
            emit(TraceEvent::mode_decision(0, 0, 0, i));
        }
        let d = drain();
        assert_eq!(d.events.len(), 8);
        assert_eq!(d.dropped, 4);
        reset();
    }
}
