//! Scenario tagging: a process-global workload label stamped into every
//! [`ModeDecision`](crate::EventKind::ModeDecision) event.
//!
//! The checker runs named scenario workloads (ttl cache, bounded queue,
//! transfers, …) back to back in one process; without a tag the exported
//! mode mix collapses them into one blob. A harness calls
//! [`set_scenario`] before driving a workload and [`clear_scenario`]
//! after; while set, [`TraceEvent::mode_decision`](crate::TraceEvent)
//! stamps the tag into the event's previously-unused `c` byte, so
//! [`scenario_mode_mix`](crate::export::scenario_mode_mix) can break the
//! mode distribution down per scenario.
//!
//! Tags use a dedicated intern table (distinct from the label table: tags
//! must fit one byte). Like label ids they are assigned in first-use order
//! and never cleared, so same-seed runs agree on tags — the `c` byte is on
//! the digest surface, and this keeps it deterministic. Tag 0 is reserved
//! for "untagged"; an overflow past 255 scenarios degrades to 0.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

static CURRENT: AtomicU32 = AtomicU32::new(0);

fn table() -> &'static Mutex<Vec<String>> {
    static TABLE: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(vec![String::new()]))
}

fn tag_for(name: &str) -> u8 {
    if name.is_empty() {
        return 0;
    }
    let mut t = table().lock().unwrap();
    if let Some(i) = t.iter().position(|s| s == name) {
        return i as u8;
    }
    if t.len() > u8::MAX as usize {
        return 0;
    }
    t.push(name.to_string());
    (t.len() - 1) as u8
}

/// Tag subsequent `ModeDecision` events with `name` (interned on first
/// use). An empty name is equivalent to [`clear_scenario`].
pub fn set_scenario(name: &str) {
    CURRENT.store(tag_for(name) as u32, Ordering::Release);
}

/// Stop tagging: subsequent events carry tag 0 ("untagged").
pub fn clear_scenario() {
    CURRENT.store(0, Ordering::Release);
}

/// The tag stamped into events emitted now (0 = untagged).
pub fn scenario_tag() -> u8 {
    CURRENT.load(Ordering::Acquire) as u8
}

/// The scenario behind `tag` (empty string for 0 or an unknown tag).
pub fn scenario_name(tag: u8) -> String {
    table()
        .lock()
        .unwrap()
        .get(tag as usize)
        .cloned()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable_and_reserved() {
        let _g = crate::test_serial();
        assert_eq!(scenario_name(0), "");
        set_scenario("scenario-test-a");
        let a = scenario_tag();
        assert_ne!(a, 0);
        assert_eq!(scenario_name(a), "scenario-test-a");
        set_scenario("scenario-test-b");
        let b = scenario_tag();
        assert_ne!(b, a);
        set_scenario("scenario-test-a");
        assert_eq!(scenario_tag(), a, "re-use resolves to the same tag");
        clear_scenario();
        assert_eq!(scenario_tag(), 0);
    }

    #[test]
    fn mode_decision_carries_the_current_tag() {
        let _g = crate::test_serial();
        set_scenario("scenario-test-stamp");
        let tag = scenario_tag();
        let ev = crate::TraceEvent::mode_decision(1, 0, 0, 1);
        clear_scenario();
        assert_eq!(ev.c, tag);
        assert_eq!(crate::TraceEvent::mode_decision(1, 0, 0, 1).c, 0);
    }
}
